//! First-order optimizers: SGD with momentum (the paper trains with SGD,
//! citing Robbins–Monro) and Adam as a commonly-used alternative.
//!
//! Optimizers keep their state vectors in the same flat order as
//! `PolicyValueNet::params()`, so a step is just a zip over three lists.

use tensor::Tensor;

/// A first-order optimizer over a flat parameter list.
pub trait Optimizer {
    /// Apply one update. `params` and `grads` must align with the layout the
    /// optimizer was constructed with.
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Change the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and decoupled L2
/// weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Create an SGD optimizer for parameters shaped like `params`.
    pub fn new(params: &[&Tensor], lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum in [0,1)");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: params.iter().map(|p| Tensor::zeros(p.dims())).collect(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), self.velocity.len(), "param layout changed");
        assert_eq!(params.len(), grads.len());
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            debug_assert_eq!(p.dims(), g.dims());
            let (pd, gd, vd) = (p.data_mut(), g.data(), v.data_mut());
            for i in 0..pd.len() {
                // v ← μv + (g + λp);  p ← p − lr·v
                let eff_grad = gd[i] + self.weight_decay * pd[i];
                vd[i] = self.momentum * vd[i] + eff_grad;
                pd[i] -= self.lr * vd[i];
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Create an Adam optimizer with the usual defaults for betas/eps.
    pub fn new(params: &[&Tensor], lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: params.iter().map(|p| Tensor::zeros(p.dims())).collect(),
            v: params.iter().map(|p| Tensor::zeros(p.dims())).collect(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), self.m.len(), "param layout changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(grads)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            let (pd, gd) = (p.data_mut(), g.data());
            let (md, vd) = (m.data_mut(), v.data_mut());
            for i in 0..pd.len() {
                let grad = gd[i] + self.weight_decay * pd[i];
                md[i] = self.beta1 * md[i] + (1.0 - self.beta1) * grad;
                vd[i] = self.beta2 * vd[i] + (1.0 - self.beta2) * grad * grad;
                let mhat = md[i] / bc1;
                let vhat = vd[i] / bc2;
                pd[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// RMSProp (Tieleman & Hinton): per-coordinate learning rates from an
/// exponential moving average of squared gradients.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    alpha: f32,
    eps: f32,
    weight_decay: f32,
    sq: Vec<Tensor>,
}

impl RmsProp {
    /// Create an RMSProp optimizer with the usual default smoothing (0.99).
    pub fn new(params: &[&Tensor], lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        RmsProp {
            lr,
            alpha: 0.99,
            eps: 1e-8,
            weight_decay,
            sq: params.iter().map(|p| Tensor::zeros(p.dims())).collect(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), self.sq.len(), "param layout changed");
        assert_eq!(params.len(), grads.len());
        for ((p, g), s) in params.iter_mut().zip(grads).zip(&mut self.sq) {
            let (pd, gd, sd) = (p.data_mut(), g.data(), s.data_mut());
            for i in 0..pd.len() {
                let grad = gd[i] + self.weight_decay * pd[i];
                sd[i] = self.alpha * sd[i] + (1.0 - self.alpha) * grad * grad;
                pd[i] -= self.lr * grad / (sd[i].sqrt() + self.eps);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Clip the *global* L2 norm of a gradient set to `max_norm` (the standard
/// `clip_grad_norm_` recipe). Returns the pre-clip norm so callers can log
/// gradient explosions.
pub fn clip_grad_norm(grads: &mut [&mut Tensor], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total_sq: f32 = grads
        .iter()
        .map(|g| g.data().iter().map(|v| v * v).sum::<f32>())
        .sum();
    let norm = total_sq.sqrt();
    if norm > max_norm && norm.is_finite() {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            g.scale(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl: f(x) = ½‖x − c‖², ∇f = x − c.
    fn quad_grad(x: &Tensor, c: &Tensor) -> Tensor {
        let mut g = x.clone();
        g.axpy(-1.0, c);
        g
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut x = Tensor::full(&[4], 5.0);
        let c = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[4]);
        let mut opt = Sgd::new(&[&x], 0.1, 0.0, 0.0);
        for _ in 0..200 {
            let g = quad_grad(&x, &c);
            opt.step(&mut [&mut x], &[&g]);
        }
        for (xv, cv) in x.data().iter().zip(c.data()) {
            assert!((xv - cv).abs() < 1e-3, "{xv} vs {cv}");
        }
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let c = Tensor::zeros(&[1]);
        let run = |mom: f32| -> f32 {
            let mut x = Tensor::full(&[1], 10.0);
            let mut opt = Sgd::new(&[&x], 0.01, mom, 0.0);
            for _ in 0..100 {
                let g = quad_grad(&x, &c);
                opt.step(&mut [&mut x], &[&g]);
            }
            x.data()[0].abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should be closer to optimum");
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut x = Tensor::full(&[1], 1.0);
        let zero_grad = Tensor::zeros(&[1]);
        let mut opt = Sgd::new(&[&x], 0.1, 0.0, 0.5);
        for _ in 0..10 {
            opt.step(&mut [&mut x], &[&zero_grad]);
        }
        assert!(x.data()[0] < 1.0 && x.data()[0] > 0.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut x = Tensor::full(&[3], -4.0);
        let c = Tensor::from_vec(vec![0.3, 1.0, -1.0], &[3]);
        let mut opt = Adam::new(&[&x], 0.05, 0.0);
        for _ in 0..500 {
            let g = quad_grad(&x, &c);
            opt.step(&mut [&mut x], &[&g]);
        }
        for (xv, cv) in x.data().iter().zip(c.data()) {
            assert!((xv - cv).abs() < 1e-2, "{xv} vs {cv}");
        }
    }

    #[test]
    fn lr_get_set() {
        let x = Tensor::zeros(&[1]);
        let mut s = Sgd::new(&[&x], 0.1, 0.0, 0.0);
        assert_eq!(s.lr(), 0.1);
        s.set_lr(0.01);
        assert_eq!(s.lr(), 0.01);
        let mut a = Adam::new(&[&x], 0.2, 0.0);
        a.set_lr(0.3);
        assert_eq!(a.lr(), 0.3);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn sgd_rejects_nonpositive_lr() {
        let x = Tensor::zeros(&[1]);
        let _ = Sgd::new(&[&x], 0.0, 0.0, 0.0);
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        let mut x = Tensor::full(&[3], 6.0);
        let c = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]);
        let mut opt = RmsProp::new(&[&x], 0.05, 0.0);
        for _ in 0..800 {
            let g = quad_grad(&x, &c);
            opt.step(&mut [&mut x], &[&g]);
        }
        for (xv, cv) in x.data().iter().zip(c.data()) {
            assert!((xv - cv).abs() < 5e-2, "{xv} vs {cv}");
        }
    }

    #[test]
    fn rmsprop_normalizes_badly_scaled_gradients() {
        // Two coordinates with gradient magnitudes differing by 1000×:
        // RMSProp's per-coordinate scaling moves both at comparable speed.
        let mut x = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let mut opt = RmsProp::new(&[&x], 0.01, 0.0);
        for _ in 0..50 {
            let g = Tensor::from_vec(vec![1000.0 * x.data()[0], 0.001 * x.data()[1]], &[2]);
            opt.step(&mut [&mut x], &[&g]);
        }
        let moved0 = 1.0 - x.data()[0];
        let moved1 = 1.0 - x.data()[1];
        assert!(
            moved0 > 0.2 && moved1 > 0.2,
            "both should move: {moved0} {moved1}"
        );
        assert!(moved0 / moved1 < 5.0, "movement should be comparable");
    }

    #[test]
    fn clip_leaves_small_gradients_untouched() {
        let mut g = Tensor::from_vec(vec![0.3, -0.4], &[2]); // norm 0.5
        let norm = clip_grad_norm(&mut [&mut g], 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(g.data(), &[0.3, -0.4]);
    }

    #[test]
    fn clip_rescales_large_gradients_to_max_norm() {
        let mut g1 = Tensor::from_vec(vec![3.0], &[1]);
        let mut g2 = Tensor::from_vec(vec![4.0], &[1]); // global norm 5
        let norm = clip_grad_norm(&mut [&mut g1, &mut g2], 1.0);
        assert!((norm - 5.0).abs() < 1e-5);
        let new_norm = (g1.data()[0].powi(2) + g2.data()[0].powi(2)).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-5);
        // Direction preserved.
        assert!((g1.data()[0] / g2.data()[0] - 0.75).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "max_norm")]
    fn clip_rejects_nonpositive_max() {
        let mut g = Tensor::zeros(&[1]);
        let _ = clip_grad_norm(&mut [&mut g], 0.0);
    }
}
