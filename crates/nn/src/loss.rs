//! The AlphaZero training loss (paper Eq. 2) and its gradient.
//!
//! `l = Σ_t (v_θ(s_t) − r)² − π_t · log p_θ(s_t)`
//!
//! We use the batch *mean* rather than the sum so the loss magnitude (and
//! learning rate) is batch-size independent, as every practical AlphaZero
//! implementation does.

use tensor::ops::log_softmax_inplace;
use tensor::Tensor;

/// Decomposition of the loss for logging (Figure 7 plots `total`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossParts {
    /// Mean squared value error `(v − r)²`.
    pub value: f32,
    /// Mean policy cross-entropy `−π · log p`.
    pub policy: f32,
    /// `value + policy`.
    pub total: f32,
}

/// Compute the loss only (no gradients).
///
/// * `logits`: `[b, A]` pre-softmax policy outputs.
/// * `values`: `[b, 1]` tanh value outputs.
/// * `target_pi`: `[b, A]` visit-count distributions from MCTS.
/// * `target_r`: `[b, 1]` game outcomes from the mover's perspective.
pub fn alphazero_loss(
    logits: &Tensor,
    values: &Tensor,
    target_pi: &Tensor,
    target_r: &Tensor,
) -> LossParts {
    let (parts, _, _) = loss_impl(logits, values, target_pi, target_r, false);
    parts
}

/// Compute the loss *and* the gradients w.r.t. logits and values.
///
/// Returns `(parts, d loss/d logits, d loss/d values)`, already scaled by
/// `1/batch` for the mean reduction.
pub fn alphazero_loss_backward(
    logits: &Tensor,
    values: &Tensor,
    target_pi: &Tensor,
    target_r: &Tensor,
) -> (LossParts, Tensor, Tensor) {
    let (parts, gl, gv) = loss_impl(logits, values, target_pi, target_r, true);
    (parts, gl.expect("grad"), gv.expect("grad"))
}

fn loss_impl(
    logits: &Tensor,
    values: &Tensor,
    target_pi: &Tensor,
    target_r: &Tensor,
    want_grads: bool,
) -> (LossParts, Option<Tensor>, Option<Tensor>) {
    let b = logits.dims()[0];
    let a = logits.dims()[1];
    assert_eq!(values.dims(), &[b, 1], "values shape");
    assert_eq!(target_pi.dims(), &[b, a], "target pi shape");
    assert_eq!(target_r.dims(), &[b, 1], "target r shape");
    assert!(b > 0, "empty batch");

    let inv_b = 1.0 / b as f32;
    let mut value_loss = 0.0f64;
    let mut policy_loss = 0.0f64;
    let mut grad_logits = want_grads.then(|| Tensor::zeros(&[b, a]));
    let mut grad_values = want_grads.then(|| Tensor::zeros(&[b, 1]));

    let mut logp = vec![0.0f32; a];
    for r in 0..b {
        // Value term: (v − z)².
        let v = values.data()[r];
        let z = target_r.data()[r];
        value_loss += ((v - z) * (v - z)) as f64;
        if let Some(gv) = grad_values.as_mut() {
            gv.data_mut()[r] = 2.0 * (v - z) * inv_b;
        }

        // Policy term: −π · log softmax(logits).
        logp.copy_from_slice(logits.row(r));
        log_softmax_inplace(&mut logp);
        let pi_row = target_pi.row(r);
        let mut ce = 0.0f32;
        for (&p, &lp) in pi_row.iter().zip(&logp) {
            ce -= p * lp;
        }
        policy_loss += ce as f64;
        if let Some(gl) = grad_logits.as_mut() {
            // d(−π·log softmax)/d logits = softmax(logits)·Σπ − π.
            let pi_sum: f32 = pi_row.iter().sum();
            let grow = &mut gl.data_mut()[r * a..(r + 1) * a];
            for ((g, &lp), &p) in grow.iter_mut().zip(&logp).zip(pi_row) {
                *g = (lp.exp() * pi_sum - p) * inv_b;
            }
        }
    }

    let parts = LossParts {
        value: (value_loss / b as f64) as f32,
        policy: (policy_loss / b as f64) as f32,
        total: ((value_loss + policy_loss) / b as f64) as f32,
    };
    (parts, grad_logits, grad_values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_pi(b: usize, a: usize) -> Tensor {
        Tensor::full(&[b, a], 1.0 / a as f32)
    }

    #[test]
    fn perfect_value_prediction_zeroes_value_term() {
        let logits = Tensor::zeros(&[2, 4]);
        let values = Tensor::from_vec(vec![1.0, -1.0], &[2, 1]);
        let r = values.clone();
        let parts = alphazero_loss(&logits, &values, &uniform_pi(2, 4), &r);
        assert_eq!(parts.value, 0.0);
        assert!(parts.policy > 0.0);
        assert_eq!(parts.total, parts.policy);
    }

    #[test]
    fn uniform_policy_cross_entropy_is_log_a() {
        // logits all equal → softmax uniform → CE with uniform π = ln(A).
        let logits = Tensor::zeros(&[1, 8]);
        let values = Tensor::zeros(&[1, 1]);
        let r = Tensor::zeros(&[1, 1]);
        let parts = alphazero_loss(&logits, &values, &uniform_pi(1, 8), &r);
        assert!((parts.policy - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn loss_decreases_when_logits_match_targets() {
        // Concentrated targets: matching logits must score lower CE.
        let mut pi = Tensor::zeros(&[1, 4]);
        pi.data_mut()[2] = 1.0;
        let v = Tensor::zeros(&[1, 1]);
        let r = Tensor::zeros(&[1, 1]);
        let bad = alphazero_loss(&Tensor::zeros(&[1, 4]), &v, &pi, &r);
        let mut good_logits = Tensor::zeros(&[1, 4]);
        good_logits.data_mut()[2] = 5.0;
        let good = alphazero_loss(&good_logits, &v, &pi, &r);
        assert!(good.policy < bad.policy);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let b = 3;
        let a = 5;
        let logits = tensor::init::uniform(&mut rng, &[b, a], -1.0, 1.0);
        let values = tensor::init::uniform(&mut rng, &[b, 1], -0.9, 0.9);
        let mut pi = tensor::init::uniform(&mut rng, &[b, a], 0.0, 1.0);
        for r in 0..b {
            let s: f32 = pi.row(r).iter().sum();
            for x in &mut pi.data_mut()[r * a..(r + 1) * a] {
                *x /= s;
            }
        }
        let targ = tensor::init::uniform(&mut rng, &[b, 1], -1.0, 1.0);

        let (_, gl, gv) = alphazero_loss_backward(&logits, &values, &pi, &targ);

        let eps = 1e-3;
        let mut lp = logits.clone();
        for idx in [0usize, 7, b * a - 1] {
            let orig = lp.data()[idx];
            lp.data_mut()[idx] = orig + eps;
            let up = alphazero_loss(&lp, &values, &pi, &targ).total;
            lp.data_mut()[idx] = orig - eps;
            let dn = alphazero_loss(&lp, &values, &pi, &targ).total;
            lp.data_mut()[idx] = orig;
            let fd = (up - dn) / (2.0 * eps);
            assert!(
                (fd - gl.data()[idx]).abs() < 1e-3,
                "logit grad {idx}: fd {fd} vs {}",
                gl.data()[idx]
            );
        }
        let mut vp = values.clone();
        for idx in 0..b {
            let orig = vp.data()[idx];
            vp.data_mut()[idx] = orig + eps;
            let up = alphazero_loss(&logits, &vp, &pi, &targ).total;
            vp.data_mut()[idx] = orig - eps;
            let dn = alphazero_loss(&logits, &vp, &pi, &targ).total;
            vp.data_mut()[idx] = orig;
            let fd = (up - dn) / (2.0 * eps);
            assert!(
                (fd - gv.data()[idx]).abs() < 1e-3,
                "value grad {idx}: fd {fd} vs {}",
                gv.data()[idx]
            );
        }
    }

    #[test]
    fn mean_reduction_batch_invariance() {
        // Duplicating the batch must not change the mean loss.
        let logits = Tensor::from_vec(vec![0.1, 0.9, -0.3, 0.0], &[1, 4]);
        let values = Tensor::from_vec(vec![0.2], &[1, 1]);
        let pi = uniform_pi(1, 4);
        let r = Tensor::from_vec(vec![-0.5], &[1, 1]);
        let single = alphazero_loss(&logits, &values, &pi, &r);

        let logits2 = Tensor::from_vec([logits.data(), logits.data()].concat(), &[2, 4]);
        let values2 = Tensor::from_vec(vec![0.2, 0.2], &[2, 1]);
        let pi2 = uniform_pi(2, 4);
        let r2 = Tensor::from_vec(vec![-0.5, -0.5], &[2, 1]);
        let double = alphazero_loss(&logits2, &values2, &pi2, &r2);
        assert!((single.total - double.total).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let _ = alphazero_loss(
            &Tensor::zeros(&[0, 4]),
            &Tensor::zeros(&[0, 1]),
            &Tensor::zeros(&[0, 4]),
            &Tensor::zeros(&[0, 1]),
        );
    }
}
