//! Network layers with explicit, allocation-conscious forward/backward.
//!
//! Layers are a closed enum ([`LayerKind`]) rather than trait objects: the
//! set is small and fixed, enum dispatch is faster, and serialization stays
//! trivial. Each layer exposes:
//!
//! * `forward(&self, x) -> y` — pure, `&self`, thread-safe (used by parallel
//!   inference workers);
//! * `backward(&self, x, grad_y, grads) -> grad_x` — consumes the *input*
//!   activation cached by the caller during the forward pass, accumulating
//!   parameter gradients into `grads`.

use crate::norm::BatchNorm2d;
use crate::residual::ResidualBlock;
use serde::{Deserialize, Serialize};
use tensor::conv::{conv2d_backward, conv2d_forward, conv2d_forward_ref, Conv2dSpec};
use tensor::ops::{gemm, gemm_ep, Epilogue};
use tensor::{Tensor, Workspace};

/// A 2-D convolution layer with bias.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// `[out_c, in_c, kh, kw]`
    pub weight: Tensor,
    /// `[out_c]`
    pub bias: Tensor,
    pub in_c: usize,
    pub out_c: usize,
    pub kh: usize,
    pub kw: usize,
    pub stride: usize,
    pub pad: usize,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new<R: rand::Rng + ?Sized>(
        rng: &mut R,
        in_c: usize,
        out_c: usize,
        k: usize,
        pad: usize,
    ) -> Self {
        let fan_in = in_c * k * k;
        Conv2d {
            weight: tensor::init::he_normal(rng, &[out_c, in_c, k, k], fan_in),
            bias: Tensor::zeros(&[out_c]),
            in_c,
            out_c,
            kh: k,
            kw: k,
            stride: 1,
            pad,
        }
    }

    fn spec(&self, in_h: usize, in_w: usize) -> Conv2dSpec {
        Conv2dSpec {
            in_c: self.in_c,
            out_c: self.out_c,
            in_h,
            in_w,
            kh: self.kh,
            kw: self.kw,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// Pure convolution forward over an NCHW batch. Scratch comes from the
    /// calling thread's shared [`Workspace`], so repeated calls allocate
    /// only the output tensor.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (b, _, h, w) = dims4(x);
        let spec = self.spec(h, w);
        let mut out = Tensor::zeros(&[b, self.out_c, spec.out_h(), spec.out_w()]);
        Workspace::with_thread(|ws| {
            conv2d_forward(
                &spec,
                x,
                &self.weight,
                Some(&self.bias),
                false,
                &mut out,
                ws,
            );
        });
        out
    }

    /// Workspace forward: the output buffer is leased from `ws` (release it
    /// with `ws.release(t.into_vec())` when done) and, with `relu`, the
    /// activation is fused into the convolution GEMM's output loop.
    pub fn forward_ws(&self, x: &Tensor, relu: bool, ws: &mut Workspace) -> Tensor {
        let (b, _, h, w) = dims4(x);
        let spec = self.spec(h, w);
        let dims = [b, self.out_c, spec.out_h(), spec.out_w()];
        let buf = ws.lease(dims.iter().product());
        let mut out = Tensor::from_vec(buf, &dims);
        conv2d_forward(&spec, x, &self.weight, Some(&self.bias), relu, &mut out, ws);
        out
    }

    /// Pre-rewrite forward (per-image im2col + baseline GEMM). Retained for
    /// numerical-parity tests and before/after benchmarks.
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        let (b, _, h, w) = dims4(x);
        let spec = self.spec(h, w);
        let mut out = Tensor::zeros(&[b, self.out_c, spec.out_h(), spec.out_w()]);
        conv2d_forward_ref(&spec, x, &self.weight, Some(&self.bias), &mut out);
        out
    }

    /// Convolution backward: accumulates `dW` into `gw` and `db` into `gb`,
    /// returns `dL/dx`. Scratch comes from the thread's shared workspace.
    pub fn backward(
        &self,
        x: &Tensor,
        grad_out: &Tensor,
        gw: &mut Tensor,
        gb: &mut Tensor,
    ) -> Tensor {
        let (_, _, h, w) = dims4(x);
        let spec = self.spec(h, w);
        let mut gi = Tensor::zeros(x.dims());
        Workspace::with_thread(|ws| {
            conv2d_backward(&spec, x, &self.weight, grad_out, &mut gi, gw, Some(gb), ws);
        });
        gi
    }
}

/// A fully-connected layer: `y = x·Wᵀ + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// `[out, in]`
    pub weight: Tensor,
    /// `[out]`
    pub bias: Tensor,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// Xavier-initialized linear layer.
    pub fn new<R: rand::Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        Linear {
            weight: tensor::init::xavier_uniform(rng, &[out_dim, in_dim], in_dim, out_dim),
            bias: Tensor::zeros(&[out_dim]),
            in_dim,
            out_dim,
        }
    }

    /// Pure linear forward: `y = x·Wᵀ + b` (bias fused into the GEMM's
    /// output loop).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let b = x.dims()[0];
        assert_eq!(x.dims(), &[b, self.in_dim], "linear input shape");
        let mut out = Tensor::zeros(&[b, self.out_dim]);
        self.gemm_into(x, false, out.data_mut());
        out
    }

    /// Workspace forward: output leased from `ws`; with `relu` the
    /// activation is fused into the GEMM epilogue.
    pub fn forward_ws(&self, x: &Tensor, relu: bool, ws: &mut Workspace) -> Tensor {
        let b = x.dims()[0];
        assert_eq!(x.dims(), &[b, self.in_dim], "linear input shape");
        let buf = ws.lease(b * self.out_dim);
        let mut out = Tensor::from_vec(buf, &[b, self.out_dim]);
        self.gemm_into(x, relu, out.data_mut());
        out
    }

    fn gemm_into(&self, x: &Tensor, relu: bool, out: &mut [f32]) {
        let b = x.dims()[0];
        // y[b, o] = x[b, i] * W[o, i]ᵀ + bias[o]
        gemm_ep(
            false,
            true,
            b,
            self.out_dim,
            self.in_dim,
            1.0,
            x.data(),
            self.weight.data(),
            0.0,
            out,
            Epilogue {
                bias_row: None,
                bias_col: Some(self.bias.data()),
                relu,
            },
        );
    }

    /// Pre-rewrite forward (baseline GEMM, separate bias pass). Retained
    /// for numerical-parity tests and before/after benchmarks.
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        let b = x.dims()[0];
        assert_eq!(x.dims(), &[b, self.in_dim], "linear input shape");
        let mut out = Tensor::zeros(&[b, self.out_dim]);
        tensor::ops::baseline::gemm(
            false,
            true,
            b,
            self.out_dim,
            self.in_dim,
            1.0,
            x.data(),
            self.weight.data(),
            0.0,
            out.data_mut(),
        );
        for r in 0..b {
            let row = &mut out.data_mut()[r * self.out_dim..(r + 1) * self.out_dim];
            for (v, &bv) in row.iter_mut().zip(self.bias.data()) {
                *v += bv;
            }
        }
        out
    }

    /// Linear backward: accumulates `dW`/`db`, returns `dL/dx`.
    pub fn backward(
        &self,
        x: &Tensor,
        grad_out: &Tensor,
        gw: &mut Tensor,
        gb: &mut Tensor,
    ) -> Tensor {
        let b = x.dims()[0];
        // dW[o, i] += dyᵀ[o, b] · x[b, i]
        gemm(
            true,
            false,
            self.out_dim,
            self.in_dim,
            b,
            1.0,
            grad_out.data(),
            x.data(),
            1.0,
            gw.data_mut(),
        );
        // db[o] += Σ_b dy[b, o]
        for r in 0..b {
            let row = &grad_out.data()[r * self.out_dim..(r + 1) * self.out_dim];
            tensor::ops::axpy(1.0, row, gb.data_mut());
        }
        // dx[b, i] = dy[b, o] · W[o, i]
        let mut gi = Tensor::zeros(&[b, self.in_dim]);
        gemm(
            false,
            false,
            b,
            self.in_dim,
            self.out_dim,
            1.0,
            grad_out.data(),
            self.weight.data(),
            0.0,
            gi.data_mut(),
        );
        gi
    }
}

/// Closed set of layer types used by the policy-value network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LayerKind {
    Conv2d(Conv2d),
    Linear(Linear),
    /// Rectified linear unit, elementwise.
    ReLU,
    /// Hyperbolic tangent, elementwise (value head output squashing).
    Tanh,
    /// Collapse `[b, c, h, w]` to `[b, c*h*w]`.
    Flatten,
    /// Per-channel batch normalization (running stats at inference,
    /// batch stats in training mode).
    BatchNorm2d(BatchNorm2d),
    /// AlphaZero-style residual block (conv-bn-relu-conv-bn + skip + relu).
    /// Boxed: the block holds four layers and would otherwise dominate the
    /// enum's size.
    Residual(Box<ResidualBlock>),
}

/// Common layer operations; see module docs for the calling convention.
pub trait Layer {
    /// Pure forward pass (thread-safe; used for inference).
    fn forward(&self, x: &Tensor) -> Tensor;

    /// Training-mode forward pass. Identical to [`Layer::forward`] except
    /// for layers whose statistics differ between modes (batch norm), which
    /// normalize with current-batch statistics here. Still pure.
    fn forward_train(&self, x: &Tensor) -> Tensor {
        self.forward(x)
    }

    /// Fold `x`'s batch statistics into any running state (batch norm
    /// moving averages). No-op for stateless layers. Training loops call
    /// this once per step alongside the backward pass.
    fn update_running_stats(&mut self, _x: &Tensor) {}

    /// Backward pass. `x` is the input that produced the forward output,
    /// `grad_out` is dL/dy. Parameter gradients are *accumulated* into
    /// `grads` (same order as [`Layer::param_views`]). Returns dL/dx.
    /// For mode-dependent layers this is the *training-mode* gradient
    /// (consistent with [`Layer::forward_train`]).
    fn backward(&self, x: &Tensor, grad_out: &Tensor, grads: &mut [Tensor]) -> Tensor;

    /// Immutable views of this layer's parameters (possibly empty).
    fn param_views(&self) -> Vec<&Tensor>;

    /// Mutable views of this layer's parameters.
    fn param_views_mut(&mut self) -> Vec<&mut Tensor>;

    /// Zeroed gradient buffers matching [`Layer::param_views`].
    fn grad_buffers(&self) -> Vec<Tensor> {
        self.param_views()
            .into_iter()
            .map(|p| Tensor::zeros(p.dims()))
            .collect()
    }
}

impl Layer for LayerKind {
    fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            LayerKind::Conv2d(c) => c.forward(x),
            LayerKind::Linear(l) => l.forward(x),
            LayerKind::ReLU => x.map(|v| v.max(0.0)),
            LayerKind::Tanh => x.map(f32::tanh),
            LayerKind::Flatten => {
                let b = x.dims()[0];
                let rest: usize = x.dims()[1..].iter().product();
                x.reshaped(&[b, rest])
            }
            LayerKind::BatchNorm2d(bn) => bn.forward_eval(x),
            LayerKind::Residual(r) => r.forward_eval(x),
        }
    }

    fn forward_train(&self, x: &Tensor) -> Tensor {
        match self {
            LayerKind::BatchNorm2d(bn) => bn.forward_batch(x),
            LayerKind::Residual(r) => r.forward_train(x),
            other => other.forward(x),
        }
    }

    fn update_running_stats(&mut self, x: &Tensor) {
        match self {
            LayerKind::BatchNorm2d(bn) => bn.update_running_stats(x),
            LayerKind::Residual(r) => r.update_running_stats(x),
            _ => {}
        }
    }

    fn backward(&self, x: &Tensor, grad_out: &Tensor, grads: &mut [Tensor]) -> Tensor {
        match self {
            LayerKind::Conv2d(c) => {
                let (gw, rest) = grads.split_first_mut().expect("conv grads");
                let gb = rest.first_mut().expect("conv bias grad");
                c.backward(x, grad_out, gw, gb)
            }
            LayerKind::Linear(l) => {
                let (gw, rest) = grads.split_first_mut().expect("linear grads");
                let gb = rest.first_mut().expect("linear bias grad");
                l.backward(x, grad_out, gw, gb)
            }
            LayerKind::BatchNorm2d(bn) => bn.backward(x, grad_out, grads),
            LayerKind::Residual(r) => r.backward(x, grad_out, grads),
            LayerKind::ReLU => {
                let mut gi = grad_out.clone();
                for (g, &xin) in gi.data_mut().iter_mut().zip(x.data()) {
                    if xin <= 0.0 {
                        *g = 0.0;
                    }
                }
                gi
            }
            LayerKind::Tanh => {
                let mut gi = grad_out.clone();
                for (g, &xin) in gi.data_mut().iter_mut().zip(x.data()) {
                    let t = xin.tanh();
                    *g *= 1.0 - t * t;
                }
                gi
            }
            LayerKind::Flatten => grad_out.reshaped(x.dims()),
        }
    }

    fn param_views(&self) -> Vec<&Tensor> {
        match self {
            LayerKind::Conv2d(c) => vec![&c.weight, &c.bias],
            LayerKind::Linear(l) => vec![&l.weight, &l.bias],
            LayerKind::BatchNorm2d(bn) => vec![&bn.gamma, &bn.beta],
            LayerKind::Residual(r) => r.param_views(),
            _ => vec![],
        }
    }

    fn param_views_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            LayerKind::Conv2d(c) => vec![&mut c.weight, &mut c.bias],
            LayerKind::Linear(l) => vec![&mut l.weight, &mut l.bias],
            LayerKind::BatchNorm2d(bn) => vec![&mut bn.gamma, &mut bn.beta],
            LayerKind::Residual(r) => r.param_views_mut(),
            _ => vec![],
        }
    }
}

impl LayerKind {
    /// Non-trainable state tensors (batch-norm running statistics) that
    /// checkpoints must persist alongside the parameters.
    pub fn state_views(&self) -> Vec<&Tensor> {
        match self {
            LayerKind::BatchNorm2d(bn) => vec![&bn.running_mean, &bn.running_var],
            LayerKind::Residual(r) => r.state_views(),
            _ => vec![],
        }
    }

    /// Mutable non-trainable state tensors (same order).
    pub fn state_views_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            LayerKind::BatchNorm2d(bn) => vec![&mut bn.running_mean, &mut bn.running_var],
            LayerKind::Residual(r) => r.state_views_mut(),
            _ => vec![],
        }
    }
}

fn dims4(x: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(
        x.shape().rank(),
        4,
        "expected NCHW tensor, got {}",
        x.shape()
    );
    let d = x.dims();
    (d[0], d[1], d[2], d[3])
}

/// Run `layers` forward, caching every layer's *input*; returns the caches
/// (length = layers.len()) and the final output.
pub fn forward_cached(layers: &[LayerKind], x: &Tensor) -> (Vec<Tensor>, Tensor) {
    let mut caches = Vec::with_capacity(layers.len());
    let mut cur = x.clone();
    for l in layers {
        let next = l.forward(&cur);
        caches.push(cur);
        cur = next;
    }
    (caches, cur)
}

/// Training-mode variant of [`forward_cached`]: batch-norm layers use
/// current-batch statistics, matching what [`backward_stack`] assumes.
pub fn forward_cached_train(layers: &[LayerKind], x: &Tensor) -> (Vec<Tensor>, Tensor) {
    let mut caches = Vec::with_capacity(layers.len());
    let mut cur = x.clone();
    for l in layers {
        let next = l.forward_train(&cur);
        caches.push(cur);
        cur = next;
    }
    (caches, cur)
}

/// Fold running statistics for every stateful layer in the stack, reusing
/// the per-layer input caches from [`forward_cached_train`].
pub fn update_stack_running_stats(layers: &mut [LayerKind], caches: &[Tensor]) {
    assert_eq!(layers.len(), caches.len());
    for (l, c) in layers.iter_mut().zip(caches) {
        l.update_running_stats(c);
    }
}

/// Pure forward through a layer stack.
pub fn forward_stack(layers: &[LayerKind], x: &Tensor) -> Tensor {
    let mut cur = x.clone();
    for l in layers {
        cur = l.forward(&cur);
    }
    cur
}

/// Zero-allocation forward through a layer stack: every intermediate
/// activation is leased from `ws` and recycled, elementwise layers run in
/// place, and a `Conv2d`/`Linear` immediately followed by `ReLU` is fused
/// into a single GEMM with a ReLU epilogue. Numerically identical to
/// [`forward_stack`].
///
/// `x` is only copied if the stack *starts* with an in-place layer
/// (ReLU/Tanh/Flatten/BatchNorm); buffer-producing layers (conv, linear,
/// residual) read it directly. The returned tensor's buffer is leased
/// from `ws`; hand it back with `ws.release(t.into_vec())` once the
/// values have been consumed.
pub fn forward_stack_ws(layers: &[LayerKind], x: &Tensor, ws: &mut Workspace) -> Tensor {
    // `cur = None` means "still reading the caller's input"; it becomes
    // Some as soon as a layer produces (or an in-place layer forces
    // materializing) an owned, pool-leased activation.
    let mut cur: Option<Tensor> = None;
    let release_into = |cur: &mut Option<Tensor>, ws: &mut Workspace, out: Tensor| {
        if let Some(old) = cur.take() {
            ws.release(old.into_vec());
        }
        *cur = Some(out);
    };
    let mut i = 0;
    while i < layers.len() {
        let fuse_relu = matches!(layers.get(i + 1), Some(LayerKind::ReLU));
        match &layers[i] {
            LayerKind::Conv2d(c) => {
                let out = c.forward_ws(cur.as_ref().unwrap_or(x), fuse_relu, ws);
                release_into(&mut cur, ws, out);
                i += if fuse_relu { 2 } else { 1 };
            }
            LayerKind::Linear(l) => {
                let out = l.forward_ws(cur.as_ref().unwrap_or(x), fuse_relu, ws);
                release_into(&mut cur, ws, out);
                i += if fuse_relu { 2 } else { 1 };
            }
            LayerKind::Residual(r) => {
                let out = r.forward_eval_ws(cur.as_ref().unwrap_or(x), ws);
                release_into(&mut cur, ws, out);
                i += 1;
            }
            // Folded-away norms (exact identity) are skipped without even
            // materializing a copy of the input.
            LayerKind::BatchNorm2d(bn) if bn.is_identity() => {
                i += 1;
            }
            in_place => {
                let cur = cur.get_or_insert_with(|| {
                    let mut buf = ws.lease(x.numel());
                    buf.copy_from_slice(x.data());
                    Tensor::from_vec(buf, x.dims())
                });
                match in_place {
                    LayerKind::ReLU => cur.map_inplace(|v| v.max(0.0)),
                    LayerKind::Tanh => cur.map_inplace(f32::tanh),
                    LayerKind::Flatten => {
                        let b = cur.dims()[0];
                        let rest: usize = cur.dims()[1..].iter().product();
                        let reshaped = std::mem::replace(cur, Tensor::zeros(&[0]));
                        *cur = reshaped.reshape(&[b, rest]);
                    }
                    LayerKind::BatchNorm2d(bn) => bn.forward_eval_inplace(cur),
                    _ => unreachable!("buffer-producing layers handled above"),
                }
                i += 1;
            }
        }
    }
    cur.unwrap_or_else(|| {
        // Empty stack (or all layers skipped): return a copy of the input.
        let mut buf = ws.lease(x.numel());
        buf.copy_from_slice(x.data());
        Tensor::from_vec(buf, x.dims())
    })
}

/// Pre-rewrite forward through a layer stack (per-image convs, baseline
/// GEMM, fresh allocations per layer). Retained as the "before" side of
/// benchmark comparisons.
pub fn forward_stack_reference(layers: &[LayerKind], x: &Tensor) -> Tensor {
    let mut cur = x.clone();
    for l in layers {
        cur = match l {
            LayerKind::Conv2d(c) => c.forward_reference(&cur),
            LayerKind::Linear(lin) => lin.forward_reference(&cur),
            other => other.forward(&cur),
        };
    }
    cur
}

/// Backward through a layer stack given the forward caches. `grads` is a
/// per-layer vector of gradient buffers. Returns dL/d(stack input).
pub fn backward_stack(
    layers: &[LayerKind],
    caches: &[Tensor],
    grads: &mut [Vec<Tensor>],
    grad_out: Tensor,
) -> Tensor {
    assert_eq!(layers.len(), caches.len());
    assert_eq!(layers.len(), grads.len());
    let mut g = grad_out;
    for i in (0..layers.len()).rev() {
        g = layers[i].backward(&caches[i], &g, &mut grads[i]);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    fn rand_t(dims: &[usize], seed: u64) -> Tensor {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        tensor::init::uniform(&mut r, dims, -1.0, 1.0)
    }

    #[test]
    fn linear_forward_known_values() {
        let mut l = Linear::new(&mut rng(), 2, 2);
        l.weight = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        l.bias = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_vec(vec![1., 1.], &[1, 2]);
        let y = LayerKind::Linear(l).forward(&x);
        assert_eq!(y.data(), &[3.5, 6.5]); // [1+2+0.5, 3+4-0.5]
    }

    #[test]
    fn relu_zeroes_negatives_and_gates_gradient() {
        let x = Tensor::from_vec(vec![-1., 0., 2.], &[1, 3]);
        let y = LayerKind::ReLU.forward(&x);
        assert_eq!(y.data(), &[0., 0., 2.]);
        let gy = Tensor::ones(&[1, 3]);
        let gx = LayerKind::ReLU.backward(&x, &gy, &mut []);
        assert_eq!(gx.data(), &[0., 0., 1.]);
    }

    #[test]
    fn tanh_saturates_and_derivative_matches() {
        let x = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let y = LayerKind::Tanh.forward(&x);
        assert!((y.data()[0] - 0.0).abs() < 1e-6);
        assert!((y.data()[1] - 1.0f32.tanh()).abs() < 1e-6);
        let gy = Tensor::ones(&[1, 2]);
        let gx = LayerKind::Tanh.backward(&x, &gy, &mut []);
        assert!((gx.data()[0] - 1.0).abs() < 1e-6);
        let t = 1.0f32.tanh();
        assert!((gx.data()[1] - (1.0 - t * t)).abs() < 1e-6);
    }

    #[test]
    fn flatten_roundtrip() {
        let x = rand_t(&[2, 3, 4, 5], 1);
        let y = LayerKind::Flatten.forward(&x);
        assert_eq!(y.dims(), &[2, 60]);
        let gx = LayerKind::Flatten.backward(&x, &y, &mut []);
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(gx.data(), x.data());
    }

    #[test]
    fn conv_forward_shape() {
        let c = Conv2d::new(&mut rng(), 4, 8, 3, 1);
        let x = rand_t(&[2, 4, 6, 6], 2);
        let y = LayerKind::Conv2d(c).forward(&x);
        assert_eq!(y.dims(), &[2, 8, 6, 6]);
    }

    /// Finite-difference check of a whole layer via scalar loss Σ(y ⊙ G).
    fn fd_check(layer: &LayerKind, x: &Tensor, tol: f32) {
        let g_out = rand_t(layer.forward(x).dims(), 77);
        let mut grads = layer.grad_buffers();
        let gx = layer.backward(x, &g_out, &mut grads);

        let loss = |layer: &LayerKind, x: &Tensor| -> f32 {
            layer
                .forward(x)
                .data()
                .iter()
                .zip(g_out.data())
                .map(|(&y, &g)| y * g)
                .sum()
        };
        // Check input gradient on a few coordinates.
        let mut xp = x.clone();
        let eps = 1e-2;
        for idx in [0usize, x.numel() / 2, x.numel() - 1] {
            let orig = xp.data()[idx];
            xp.data_mut()[idx] = orig + eps;
            let lp = loss(layer, &xp);
            xp.data_mut()[idx] = orig - eps;
            let lm = loss(layer, &xp);
            xp.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < tol,
                "input grad mismatch at {idx}: fd={fd} an={}",
                gx.data()[idx]
            );
        }
        // Check first parameter gradient on a few coordinates.
        if !grads.is_empty() {
            let mut layer2 = layer.clone();
            for idx in [0usize, grads[0].numel() - 1] {
                let orig = layer2.param_views()[0].data()[idx];
                layer2.param_views_mut()[0].data_mut()[idx] = orig + eps;
                let lp = loss(&layer2, x);
                layer2.param_views_mut()[0].data_mut()[idx] = orig - eps;
                let lm = loss(&layer2, x);
                layer2.param_views_mut()[0].data_mut()[idx] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grads[0].data()[idx]).abs() < tol,
                    "param grad mismatch at {idx}: fd={fd} an={}",
                    grads[0].data()[idx]
                );
            }
        }
    }

    #[test]
    fn linear_gradients_match_finite_difference() {
        let l = LayerKind::Linear(Linear::new(&mut rng(), 6, 4));
        let x = rand_t(&[3, 6], 5);
        fd_check(&l, &x, 2e-2);
    }

    #[test]
    fn conv_gradients_match_finite_difference() {
        let c = LayerKind::Conv2d(Conv2d::new(&mut rng(), 2, 3, 3, 1));
        let x = rand_t(&[2, 2, 4, 4], 6);
        fd_check(&c, &x, 5e-2);
    }

    #[test]
    fn stack_forward_backward_shapes() {
        let mut r = rng();
        let layers = vec![
            LayerKind::Conv2d(Conv2d::new(&mut r, 2, 4, 3, 1)),
            LayerKind::ReLU,
            LayerKind::Flatten,
            LayerKind::Linear(Linear::new(&mut r, 4 * 5 * 5, 7)),
        ];
        let x = rand_t(&[3, 2, 5, 5], 8);
        let (caches, y) = forward_cached(&layers, &x);
        assert_eq!(y.dims(), &[3, 7]);
        assert_eq!(caches.len(), 4);
        let mut grads: Vec<Vec<Tensor>> = layers.iter().map(|l| l.grad_buffers()).collect();
        let gx = backward_stack(&layers, &caches, &mut grads, Tensor::ones(&[3, 7]));
        assert_eq!(gx.dims(), x.dims());
        // conv + linear have non-zero parameter gradients
        assert!(grads[0][0].norm() > 0.0);
        assert!(grads[3][0].norm() > 0.0);
    }

    #[test]
    fn pure_and_cached_forward_agree() {
        let mut r = rng();
        let layers = vec![
            LayerKind::Conv2d(Conv2d::new(&mut r, 2, 4, 3, 1)),
            LayerKind::ReLU,
        ];
        let x = rand_t(&[1, 2, 5, 5], 9);
        let y1 = forward_stack(&layers, &x);
        let (_, y2) = forward_cached(&layers, &x);
        assert_eq!(y1.data(), y2.data());
    }
}
