//! Stress tests on synthetic game trees with controlled geometry: wide
//! fanouts (Gomoku-like 225), deep narrow trees, and degenerate shapes,
//! across all parallel schemes.

use games::synthetic::SyntheticGame;
use mcts::{AdaptiveSearch, MctsConfig, Scheme, SearchScheme, UniformEvaluator};
use std::sync::Arc;

fn search_synthetic(
    scheme: Scheme,
    fanout: usize,
    depth: usize,
    playouts: usize,
    workers: usize,
) -> mcts::SearchResult {
    let game = SyntheticGame::new(fanout, depth, 77);
    let eval = Arc::new(UniformEvaluator::for_game(&game));
    let cfg = MctsConfig {
        playouts,
        workers,
        ..Default::default()
    };
    let mut s = AdaptiveSearch::<SyntheticGame>::new(scheme, cfg, eval);
    s.search(&game)
}

#[test]
fn wide_fanout_gomoku_like_geometry() {
    // Fanout 225 (the paper's Gomoku board) with a short horizon.
    for scheme in [Scheme::Serial, Scheme::SharedTree, Scheme::LocalTree] {
        let r = search_synthetic(scheme, 225, 4, 300, 4);
        assert_eq!(r.stats.playouts, 300, "{scheme}");
        assert_eq!(r.visits.iter().sum::<u32>(), 299, "{scheme}");
        assert!(r.stats.nodes > 225, "{scheme} expanded too little");
    }
}

#[test]
fn deep_narrow_tree() {
    // Fanout 2, depth 40: exercises long selection paths and deep backups.
    for scheme in [Scheme::Serial, Scheme::SharedTree, Scheme::LocalTree] {
        let r = search_synthetic(scheme, 2, 40, 400, 4);
        assert_eq!(r.stats.playouts, 400, "{scheme}");
        assert!((r.probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}

#[test]
fn single_action_chain_is_degenerate_but_sound() {
    // Fanout 1: the tree is a path; every playout extends or re-walks it.
    for scheme in [Scheme::Serial, Scheme::LocalTree] {
        let r = search_synthetic(scheme, 1, 10, 50, 2);
        assert_eq!(r.stats.playouts, 50, "{scheme}");
        assert_eq!(r.probs[0], 1.0, "{scheme}: all mass on the only action");
    }
}

#[test]
fn terminal_heavy_tree_backs_up_real_outcomes() {
    // Depth 1: every child of the root is terminal; value estimates must
    // come from true game outcomes, not the evaluator.
    let r = search_synthetic(Scheme::Serial, 8, 1, 200, 1);
    assert_eq!(r.stats.playouts, 200);
    // Root value must be within the outcome range and the visits must
    // concentrate on win-for-mover children if any exist.
    assert!(r.value.abs() <= 1.0);
}

#[test]
fn playouts_exceeding_tree_size_saturate_gracefully() {
    // A tiny tree (fanout 2, depth 2 → 7 states) searched with far more
    // playouts than states: terminals are revisited, never re-expanded.
    let r = search_synthetic(Scheme::SharedTree, 2, 2, 500, 4);
    assert_eq!(r.stats.playouts, 500);
    assert!(
        r.stats.nodes <= 1 + 2 + 4 + 2,
        "tree should saturate at ~7 nodes, got {}",
        r.stats.nodes
    );
}

#[test]
fn collision_rate_stays_bounded_under_contention() {
    // Many workers on a tiny tree maximizes collisions; the search must
    // still finish and the collision counter must stay sane.
    let r = search_synthetic(Scheme::SharedTree, 3, 2, 300, 8);
    assert_eq!(r.stats.playouts, 300);
    assert!(
        r.stats.collisions < 300 * 50,
        "collision storm: {}",
        r.stats.collisions
    );
}

#[test]
fn explicit_max_nodes_is_honored() {
    // Give plenty of room: search must stay within the configured arena.
    let game = SyntheticGame::new(4, 6, 3);
    let eval = Arc::new(UniformEvaluator::for_game(&game));
    let cfg = MctsConfig {
        playouts: 100,
        workers: 2,
        max_nodes: Some(100 * 5 + 16),
        ..Default::default()
    };
    let mut s = AdaptiveSearch::<SyntheticGame>::new(Scheme::SharedTree, cfg, eval);
    let r = s.search(&game);
    assert!(r.stats.nodes as usize <= 100 * 5 + 16);
}
