//! The wall-clock budget is enforced consistently by **all six**
//! schemes: with a slow evaluator and a 1 ms budget, every scheme must
//! terminate promptly with far fewer playouts than requested — whether
//! the budget arrives via `MctsConfig::time_budget_ms`, the
//! `SearchBuilder::budget` knob, or a per-run `Budget` at `begin`.

use games::tictactoe::TicTacToe;
use mcts::evaluator::DelayedEvaluator;
use mcts::{
    BatchEvaluator, Budget, MctsConfig, Scheme, SearchBuilder, StepOutcome, UniformEvaluator,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const HUGE: usize = 10_000_000;

fn slow_eval() -> Arc<dyn BatchEvaluator> {
    Arc::new(DelayedEvaluator::new(
        UniformEvaluator::for_game(&TicTacToe::new()),
        Duration::from_millis(2),
    ))
}

#[test]
fn one_ms_config_budget_terminates_every_scheme_promptly() {
    for scheme in Scheme::ALL {
        let mut s = SearchBuilder::new(scheme)
            .config(MctsConfig {
                playouts: HUGE,
                workers: 2,
                time_budget_ms: Some(1),
                ..Default::default()
            })
            .evaluator(slow_eval())
            .build::<TicTacToe>();
        let t0 = Instant::now();
        let r = s.search(&TicTacToe::new());
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "{scheme}: took {elapsed:?} on a 1 ms budget"
        );
        assert!(
            r.stats.playouts < HUGE as u64 / 2,
            "{scheme}: {} playouts ignored the budget",
            r.stats.playouts
        );
    }
}

#[test]
fn per_run_time_budget_via_begin() {
    for scheme in Scheme::ALL {
        let mut s = SearchBuilder::new(scheme)
            .playouts(HUGE)
            .workers(2)
            .evaluator(slow_eval())
            .build::<TicTacToe>();
        let t0 = Instant::now();
        s.begin(&TicTacToe::new(), Budget::time(Duration::from_millis(1)));
        while s.step(usize::MAX) == StepOutcome::Running {}
        let r = s.partial_result();
        s.cancel();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "{scheme}: per-run deadline ignored"
        );
        assert!(r.stats.playouts < HUGE as u64 / 2, "{scheme}");
    }
}

#[test]
fn builder_budget_knob_reaches_the_config() {
    let b = SearchBuilder::new(Scheme::Serial).budget(
        Budget::playouts(77)
            .with_time(Duration::from_millis(9))
            .with_max_nodes(1234),
    );
    let cfg = b.current_config();
    assert_eq!(cfg.playouts, 77);
    assert_eq!(cfg.time_budget_ms, Some(9));
    assert_eq!(cfg.max_nodes, Some(1234));
}

#[test]
fn playout_budget_via_begin_caps_the_run() {
    for scheme in Scheme::ALL {
        let mut s = SearchBuilder::new(scheme)
            .playouts(10_000)
            .workers(2)
            .evaluator(Arc::new(UniformEvaluator::for_game(&TicTacToe::new())))
            .build::<TicTacToe>();
        s.begin(&TicTacToe::new(), Budget::playouts(64));
        while s.step(usize::MAX) == StepOutcome::Running {}
        let r = s.partial_result();
        s.cancel();
        assert!(
            (64..200).contains(&(r.stats.playouts as usize)),
            "{scheme}: {} playouts for a 64-playout budget",
            r.stats.playouts
        );
    }
}

#[test]
fn max_nodes_budget_bounds_the_run_tree() {
    let mut s = SearchBuilder::new(Scheme::Serial)
        .playouts(500)
        .evaluator(Arc::new(UniformEvaluator::for_game(&TicTacToe::new())))
        .build::<TicTacToe>();
    s.begin(&TicTacToe::new(), Budget::playouts(500).with_max_nodes(200));
    while s.step(usize::MAX) == StepOutcome::Running {}
    let r = s.partial_result();
    s.cancel();
    assert!(r.stats.nodes <= 200, "run tree grew past the budget bound");
    assert_eq!(r.stats.playouts, 500);
}
