//! Concurrency hammer for the sharded evaluation cache: many threads
//! mixing lookups, inserts, and epoch bumps over an overlapping key
//! range must never corrupt an entry (a hit always yields the exact
//! payload its key was inserted with), never exceed the byte budget,
//! and keep the counters coherent. Run with `--features invariants`.
#![cfg(feature = "invariants")]

use mcts::{BatchEvaluator, CachedEvaluator, EvalCache, EvalCacheConfig, EvalOutput, Evaluator};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const ACTIONS: usize = 9;

/// Payload derived purely from the key, so any thread can verify any
/// hit without coordination.
fn payload(key: u64) -> (Vec<f32>, f32) {
    let mut priors = Vec::with_capacity(ACTIONS);
    for a in 0..ACTIONS as u64 {
        priors.push(((key.wrapping_mul(a + 7) % 89) as f32 + 1.0) / 90.0);
    }
    let value = ((key % 2001) as f32 / 1000.0) - 1.0;
    (priors, value)
}

#[test]
fn concurrent_hammer_never_corrupts_entries_or_budget() {
    let cache = Arc::new(EvalCache::new(
        // Tight budget: ~a quarter of the key range fits, so eviction
        // churn runs constantly under the hammer.
        EvalCacheConfig {
            capacity_bytes: 64 * 1024,
            ..Default::default()
        },
        ACTIONS,
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let threads = 8;
    let keys_per_thread = 512u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut out = EvalOutput::default();
            let mut hits = 0u64;
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for i in 0..keys_per_thread {
                    // Overlapping ranges: every key is contended by
                    // at least two threads.
                    let key = (t as u64 % 4) * 256 + i;
                    if cache.get(key, &mut out) {
                        let (want_p, want_v) = payload(key);
                        assert_eq!(
                            out.value.to_bits(),
                            want_v.to_bits(),
                            "hit returned another key's value"
                        );
                        assert_eq!(out.priors.len(), ACTIONS);
                        for (got, want) in out.priors.iter().zip(&want_p) {
                            assert!(
                                (got - want).abs() <= 1.5 / 65535.0,
                                "hit priors corrupted: {got} vs {want}"
                            );
                        }
                        hits += 1;
                    } else {
                        let (p, v) = payload(key);
                        cache.insert(key, &p, v);
                    }
                }
                rounds += 1;
            }
            (hits, rounds)
        }));
    }
    // One antagonist thread bumps the epoch mid-flight: lookups racing
    // the bump may miss, but must never return a stale-epoch payload
    // for a *different* key (asserted above by payload identity).
    let bumper = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut bumps = 0;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(20));
                cache.bump_epoch();
                bumps += 1;
            }
            bumps
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    let mut total_hits = 0;
    for h in handles {
        let (hits, rounds) = h.join().unwrap();
        assert!(rounds > 0, "every thread must complete rounds");
        total_hits += hits;
    }
    let bumps = bumper.join().unwrap();
    assert!(bumps >= 1, "the antagonist must have bumped at least once");
    let s = cache.stats();
    assert!(
        s.bytes <= cache.capacity_bytes() as u64,
        "byte budget is hard: {} > {}",
        s.bytes,
        cache.capacity_bytes()
    );
    assert_eq!(s.hits, total_hits, "hit counter matches observed hits");
    assert!(s.inserts > 0 && s.misses >= s.inserts);
    assert!(
        s.evictions > 0,
        "a 64 KiB budget under 1024 keys must evict"
    );
}

/// Deterministic single-sample evaluator for the wrapper hammer.
struct DetEval;

impl Evaluator for DetEval {
    fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32) {
        let k = input[0] as u64;
        payload(k)
    }
    fn action_space(&self) -> usize {
        ACTIONS
    }
    fn input_len(&self) -> usize {
        1
    }
}

#[test]
fn concurrent_cached_evaluator_returns_consistent_outputs() {
    let inner: Arc<dyn BatchEvaluator> = Arc::new(DetEval);
    let cache = Arc::new(EvalCache::new(
        EvalCacheConfig::with_capacity(1 << 20),
        ACTIONS,
    ));
    let cached = Arc::new(CachedEvaluator::new(inner, cache));
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let cached = Arc::clone(&cached);
        handles.push(std::thread::spawn(move || {
            for round in 0..200u64 {
                let key = (t + round) % 64;
                let input = [key as f32];
                let out = cached.evaluate_one_keyed(key, &input);
                let (want_p, want_v) = payload(key);
                assert_eq!(out.value.to_bits(), want_v.to_bits());
                for (got, want) in out.priors.iter().zip(&want_p) {
                    assert!((got - want).abs() <= 1.5 / 65535.0);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = cached.cache().stats();
    assert_eq!(s.hits + s.misses, 8 * 200);
    assert!(s.hits > 0, "64 keys over 1600 lookups must mostly hit");
}
