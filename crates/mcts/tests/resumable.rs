//! Consistency of the resumable API: `search()` is a thin loop over
//! `step`, so (a) one-shot search equals manual fine-grained stepping
//! seed-for-seed on every deterministic scheme, and (b) stepping
//! completes exact budgets on the nondeterministic parallel schemes.

use games::tictactoe::TicTacToe;
use games::Game;
use mcts::{
    Budget, MctsConfig, ReusableSearch, Scheme, SearchBuilder, SearchScheme, StepOutcome,
    UniformEvaluator,
};
use std::sync::Arc;

fn cfg(playouts: usize, workers: usize) -> MctsConfig {
    MctsConfig {
        playouts,
        workers,
        ..Default::default()
    }
}

fn uniform() -> Arc<UniformEvaluator> {
    Arc::new(UniformEvaluator::for_game(&TicTacToe::new()))
}

/// Drive a scheme with a fixed step quota to completion.
fn step_to_end<G: Game>(s: &mut dyn SearchScheme<G>, root: &G, quota: usize) -> mcts::SearchResult {
    s.begin(root, Budget::default());
    let mut steps = 0usize;
    while s.step(quota) == StepOutcome::Running {
        steps += 1;
        assert!(steps < 1_000_000, "runaway step loop");
    }
    let r = s.partial_result();
    s.cancel();
    r
}

#[test]
fn deterministic_schemes_chunked_stepping_equals_one_shot_search() {
    // Serial, leaf-parallel, speculative and root-parallel run the same
    // playout sequence no matter how the run is sliced (the evaluator is
    // deterministic), so visits must match exactly.
    let g = TicTacToe::new();
    for scheme in [
        Scheme::Serial,
        Scheme::LeafParallel,
        Scheme::Speculative,
        Scheme::RootParallel,
    ] {
        let mut one_shot = SearchBuilder::new(scheme)
            .config(cfg(300, 3))
            .evaluator(uniform())
            .build::<TicTacToe>();
        let reference = one_shot.search(&g);

        for quota in [1usize, 7, 64] {
            let mut stepped = SearchBuilder::new(scheme)
                .config(cfg(300, 3))
                .evaluator(uniform())
                .build::<TicTacToe>();
            let r = step_to_end(stepped.as_mut(), &g, quota);
            assert_eq!(
                r.visits, reference.visits,
                "{scheme} with step quota {quota} diverged from one-shot search"
            );
            assert_eq!(r.stats.playouts, reference.stats.playouts, "{scheme}");
        }
    }
}

#[test]
fn reuse_chunked_stepping_equals_one_shot_search() {
    let g = TicTacToe::new();
    let mut reference = ReusableSearch::new(cfg(250, 1), uniform());
    let expect = reference.search(&g);

    let mut stepped = ReusableSearch::new(cfg(250, 1), uniform());
    let r = step_to_end(&mut stepped as &mut dyn SearchScheme<TicTacToe>, &g, 9);
    assert_eq!(r.visits, expect.visits);
    assert_eq!(r.stats.playouts, 250);
}

#[test]
fn parallel_schemes_chunked_stepping_completes_exact_budget() {
    // Shared/local trees are timing-nondeterministic; stepping must
    // still complete the playout budget exactly and produce a proper
    // distribution.
    let g = TicTacToe::new();
    for scheme in [Scheme::SharedTree, Scheme::LocalTree] {
        for quota in [13usize, 64] {
            let mut s = SearchBuilder::new(scheme)
                .config(cfg(200, 4))
                .evaluator(uniform())
                .build::<TicTacToe>();
            let r = step_to_end(s.as_mut(), &g, quota);
            assert_eq!(r.stats.playouts, 200, "{scheme} quota {quota}");
            assert_eq!(r.visits.iter().sum::<u32>(), 199, "{scheme}");
            assert!((r.probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }
}

#[test]
fn partial_results_grow_monotonically() {
    let g = TicTacToe::new();
    let mut s = SearchBuilder::new(Scheme::Serial)
        .config(cfg(300, 1))
        .evaluator(uniform())
        .build::<TicTacToe>();
    s.begin(&g, Budget::default());
    let mut last = 0u64;
    loop {
        let outcome = s.step(50);
        let p = s.partial_result();
        assert!(p.stats.playouts >= last, "snapshots must be monotone");
        assert_eq!(
            p.visits.iter().sum::<u32>() as u64,
            p.stats.playouts.saturating_sub(1),
            "anytime snapshot is exact over completed playouts"
        );
        last = p.stats.playouts;
        if outcome == StepOutcome::Done {
            break;
        }
    }
    assert_eq!(last, 300);
    s.cancel();
}

#[test]
fn terminal_root_is_done_immediately_for_every_scheme() {
    let mut g = TicTacToe::new();
    for a in [0u16, 3, 1, 4, 2] {
        g.apply(a);
    }
    assert!(g.status().is_terminal());
    for scheme in Scheme::ALL {
        let mut s = SearchBuilder::new(scheme)
            .config(cfg(50, 2))
            .evaluator(uniform())
            .build::<TicTacToe>();
        s.begin(&g, Budget::default());
        assert_eq!(s.step(usize::MAX), StepOutcome::Done, "{scheme}");
        let r = s.partial_result();
        assert_eq!(r.visits.iter().sum::<u32>(), 0, "{scheme}");
        assert_eq!(r.stats.playouts, 0, "{scheme}");
        s.cancel();
    }
}

#[test]
fn advance_between_stepped_runs_reuses_the_subtree() {
    let mut g = TicTacToe::new();
    let mut s = ReusableSearch::new(cfg(150, 1), uniform());
    let r1 = step_to_end(&mut s as &mut dyn SearchScheme<TicTacToe>, &g, 25);
    let a = r1.best_action();
    SearchScheme::<TicTacToe>::advance(&mut s, a);
    g.apply(a);
    let r2 = step_to_end(&mut s as &mut dyn SearchScheme<TicTacToe>, &g, 25);
    assert!(s.inherited_nodes > 0, "second stepped run starts warm");
    assert_eq!(r2.stats.playouts, 150);
}
