//! Long-run soak for bounded-memory infinite analysis: a streaming
//! session (search → advance → search, new game on terminal) runs for
//! ≥ 10k cycles under a fixed arena byte budget while the LRU policy
//! continuously recycles cold subtrees. The suite pins the two
//! properties that make 24/7 analysis viable:
//!
//! * **Zero heap growth after warm-up** — net heap bytes (allocations
//!   minus frees) are identical before and after thousands of
//!   eviction-heavy cycles, and the arena's high-water mark never moves
//!   past its warm-up level.
//! * **Stable playout rate** — the last decile of cycles is within 10%
//!   of the first decile's playouts/s: recycling is O(evicted), not a
//!   slow accumulation of scan or fragmentation cost.
//!
//! Set `SOAK_SMOKE=1` for the short CI mode (fewer cycles, timing
//! assertion skipped — wall-clock deciles need the full run to be
//! meaningful).

use games::tictactoe::TicTacToe;
use games::{Game, Status};
use mcts::{EvictionPolicy, MctsConfig, NodeArena, ReusableSearch, SearchResult, UniformEvaluator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Net live heap bytes: allocations add, frees subtract. "Zero growth"
/// means this returns to its snapshot, even if transient allocations
/// happened in between.
static NET_BYTES: AtomicI64 = AtomicI64::new(0);

struct NetBytesAlloc;

unsafe impl GlobalAlloc for NetBytesAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            NET_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            NET_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            NET_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: NetBytesAlloc = NetBytesAlloc;

/// One streaming-analysis step: search the current position, play the
/// best move (re-rooting in place), start a fresh game on terminal.
/// Returns the playouts spent.
fn cycle(search: &mut ReusableSearch, game: &mut TicTacToe, result: &mut SearchResult) -> u64 {
    if game.status() != Status::Ongoing {
        *game = TicTacToe::new();
        search.reset();
    }
    search.search_into(&*game, result);
    let a = result.best_action();
    search.advance(a);
    game.apply(a);
    result.stats.playouts
}

#[test]
fn bounded_streaming_session_soaks_flat() {
    let smoke = std::env::var("SOAK_SMOKE").is_ok();
    let cycles: usize = if smoke { 400 } else { 10_000 };

    // A budget well under the issue's 16 MB ceiling and tight enough
    // that a single 128-playout search outgrows it: every cycle of the
    // soak exercises the eviction path, not just the first few. The
    // bound still clears the unevictable working set (the selection
    // path's virtual-loss spine, ≤ 46 slots on TicTacToe).
    let bound_slots = 600usize;
    let budget = bound_slots * NodeArena::slot_bytes();
    let mut search = ReusableSearch::new(
        MctsConfig {
            playouts: 128,
            arena_budget_bytes: Some(budget),
            eviction: EvictionPolicy::Lru,
            ..Default::default()
        },
        Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
    );
    let mut game = TicTacToe::new();
    let mut result = SearchResult::default();

    // Warm-up: reaches the arena bound, grows every scratch buffer to
    // its high-water mark and starts the recycling regime.
    let warmup = if smoke { 40 } else { 200 };
    for _ in 0..warmup {
        cycle(&mut search, &mut game, &mut result);
    }
    let warm_stats = search.tree_stats().expect("warmed searcher has a tree");
    assert!(
        warm_stats.evicted > 0,
        "warm-up under a {bound_slots}-slot budget must already evict"
    );
    let heap_snapshot = NET_BYTES.load(Ordering::SeqCst);

    // The soak proper, timed per decile (stack array: the harness
    // itself must not show up in the heap-growth measurement).
    let decile = cycles / 10;
    let mut decile_rates = [0f64; 10];
    for rate in &mut decile_rates {
        let mut playouts = 0u64;
        let t0 = Instant::now();
        for _ in 0..decile {
            playouts += cycle(&mut search, &mut game, &mut result);
        }
        *rate = playouts as f64 / t0.elapsed().as_secs_f64();
    }

    // Zero heap growth after warm-up: every allocation made during the
    // soak (none are expected in the production configuration, and even
    // the `invariants` walk's DFS stack is transient) was returned.
    let heap_now = NET_BYTES.load(Ordering::SeqCst);
    assert_eq!(
        heap_now - heap_snapshot,
        0,
        "streaming session grew the heap by {} bytes over {cycles} cycles",
        heap_now - heap_snapshot
    );

    // The arena never outgrew its warm-up footprint and kept recycling.
    let end_stats = search.tree_stats().expect("tree survives the soak");
    assert!(
        end_stats.high_water <= bound_slots,
        "high-water {} slots broke the {bound_slots}-slot byte budget",
        end_stats.high_water
    );
    assert_eq!(
        end_stats.high_water, warm_stats.high_water,
        "arena footprint moved after warm-up"
    );
    assert!(
        end_stats.evicted > warm_stats.evicted,
        "the soak must keep evicting, not stall"
    );
    assert!(
        end_stats.live <= bound_slots,
        "live nodes {} exceed the bound",
        end_stats.live
    );

    // Rate stability: the last decile degrades < 10% vs the first.
    // (Speedups are fine — the contract is no slow decay.) Wall-clock
    // deciles are only meaningful at full length, so smoke mode stops
    // at the structural assertions above.
    if !smoke {
        let (first, last) = (decile_rates[0], decile_rates[9]);
        assert!(
            last > 0.90 * first,
            "playout rate decayed {:.1}% over the soak (first decile {first:.0}/s, last {last:.0}/s)",
            (1.0 - last / first) * 100.0
        );
    }
}
