//! Differential property tests for LRU node recycling: a byte/slot
//! bounded tree under [`mcts::EvictionPolicy::Lru`] must be playout-for
//! playout identical to an unbounded arena until the moment of its
//! first eviction (the LRU list is pure bookkeeping — touching never
//! changes selection), and after arbitrarily many evictions the tree
//! must still pass the full internal invariants walk: reachability
//! equals live accounting, the LRU list is exactly the block-owning
//! node set, the root is never evicted, and detached stats keep the
//! visit identity exact.

use games::tictactoe::TicTacToe;
use games::{Game, Status};
use mcts::analysis::principal_variation;
use mcts::tree::{SelectOutcome, Tree};
use mcts::{EvictionPolicy, MctsConfig, NodeState};
use proptest::prelude::*;

/// Deterministic fake evaluator: priors/value are a pure function of the
/// game state, so two trees fed the same playout sequence grow
/// identically no matter which arena slots their nodes occupy.
fn det_eval<G: Game>(g: &G, priors: &mut Vec<f32>) -> f32 {
    let salt = g.move_count() as u64;
    priors.clear();
    for a in 0..g.action_space() as u64 {
        let h = (a + 1).wrapping_mul(2654435761).wrapping_add(salt * 97);
        priors.push((h % 89) as f32 / 89.0 + 0.01);
    }
    ((salt * 31 % 11) as f32 / 11.0) - 0.5
}

/// One deterministic playout on `tree` from `base`.
fn playout(tree: &mut Tree, base: &TicTacToe, priors: &mut Vec<f32>) {
    let mut g = *base;
    let (leaf, out) = tree.select(&mut g);
    if out == SelectOutcome::NeedsEval {
        let v = det_eval(&g, priors);
        tree.expand_and_backup(leaf, &priors.clone(), v);
    }
}

/// Structural equality of two trees (BFS pairwise over child blocks).
fn assert_trees_equal(a: &Tree, b: &Tree) -> Result<(), String> {
    let mut pairs = vec![(a.root(), b.root())];
    while let Some((x, y)) = pairs.pop() {
        prop_assert_eq!(a.state(x), b.state(y), "state mismatch");
        prop_assert_eq!(a.n(x), b.n(y), "visit mismatch");
        prop_assert!((a.w(x) - b.w(y)).abs() < 1e-9, "value-sum mismatch");
        prop_assert_eq!(a.children(x).len(), b.children(y).len());
        for (cx, cy) in a.children(x).zip(b.children(y)) {
            prop_assert_eq!(a.action(cx), b.action(cy), "action order mismatch");
            prop_assert_eq!(a.prior(cx), b.prior(cy), "prior mismatch");
            pairs.push((cx, cy));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The LRU-bounded search is seed-identical to the unbounded arena
    /// up to (and excluding) its first eviction: bounding memory must
    /// not change a single selection until something is actually
    /// reclaimed.
    #[test]
    fn bounded_lru_matches_unbounded_until_first_eviction(
        seed in 0u64..5_000,
        prefix_len in 0usize..5,
        // ≥ 48: the bound must cover the unevictable working set — the
        // current selection path holds virtual loss on every node it
        // descended, and a full-depth TicTacToe path owns 46 slots of
        // child blocks (see the `MctsConfig::max_nodes` contract).
        bound in 48usize..90,
        playouts in 50usize..300,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut base = TicTacToe::new();
        for _ in 0..prefix_len {
            if base.status() != Status::Ongoing {
                break;
            }
            let acts = base.legal_actions();
            base.apply(acts[rng.gen_range(0..acts.len())]);
        }
        prop_assume!(base.status() == Status::Ongoing);

        let bounded_cfg = MctsConfig {
            playouts,
            max_nodes: Some(bound),
            eviction: EvictionPolicy::Lru,
            ..Default::default()
        };
        let unbounded_cfg = MctsConfig { playouts, ..Default::default() };
        let mut bounded = Tree::new(bounded_cfg);
        let mut unbounded = Tree::new(unbounded_cfg);
        let mut priors = Vec::new();
        for _ in 0..playouts {
            playout(&mut bounded, &base, &mut priors);
            if bounded.stats().evicted > 0 {
                // Everything up to the previous playout already compared
                // equal; the diverging playout is the one that evicted.
                break;
            }
            playout(&mut unbounded, &base, &mut priors);
            assert_trees_equal(&bounded, &unbounded)?;
        }
        bounded.check_invariants();
        unbounded.check_invariants();
    }

    /// Long past the bound, the recycled tree stays sound: the full
    /// invariants walk passes (exact visit identity included — no
    /// relaxed mode), the root is never evicted, root statistics count
    /// every playout ever run, and the principal variation always leads
    /// through live, visited nodes.
    #[test]
    fn post_eviction_tree_passes_full_invariants_walk(
        seed in 0u64..5_000,
        // ≤ 2 prefix moves: with ≥ 7 plies left the reachable subtree
        // always outgrows the bound, so every case actually evicts.
        prefix_len in 0usize..3,
        bound in 48usize..90, // covers the unevictable path; see above
        playouts in 200usize..600,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut base = TicTacToe::new();
        for _ in 0..prefix_len {
            if base.status() != Status::Ongoing {
                break;
            }
            let acts = base.legal_actions();
            base.apply(acts[rng.gen_range(0..acts.len())]);
        }
        prop_assume!(base.status() == Status::Ongoing);

        let cfg = MctsConfig {
            playouts,
            max_nodes: Some(bound),
            eviction: EvictionPolicy::Lru,
            ..Default::default()
        };
        let mut tree = Tree::new(cfg);
        let mut priors = Vec::new();
        for i in 0..playouts {
            playout(&mut tree, &base, &mut priors);
            if i % 97 == 96 {
                tree.check_invariants();
            }
        }
        tree.check_invariants();

        let s = tree.stats();
        prop_assert!(
            s.live <= bound,
            "live {} nodes exceed the {} bound", s.live, bound
        );
        prop_assert!(
            s.evicted > 0,
            "{} playouts against a {}-slot bound must evict", playouts, bound
        );
        // The root is never evicted and its statistics are lossless:
        // every playout ever run is still counted, straight through any
        // eviction schedule (stats-preserving detach).
        prop_assert_eq!(tree.state(tree.root()), NodeState::Expanded);
        prop_assert_eq!(tree.n(tree.root()) as usize, playouts);
        // The principal variation leads through visited nodes whose
        // edges survived eviction (detached nodes keep their stats, so
        // the answer the search reports is never built on freed slots).
        let pv = principal_variation(&tree, 9);
        prop_assert!(!pv.is_empty(), "an expanded root always has a PV");
        let mut cur = tree.root();
        for &action in &pv {
            let child = tree
                .children(cur)
                .find(|&c| tree.action(c) == action)
                .expect("PV edge exists");
            prop_assert!(tree.n(child) > 0, "PV node lost its visits");
            cur = child;
        }
    }
}
