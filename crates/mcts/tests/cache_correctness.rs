//! Correctness contracts of the evaluation cache ([`mcts::EvalCache`] /
//! [`mcts::CachedEvaluator`]):
//!
//! * **Disabled = invisible.** With no cache wrapper, nothing in the
//!   search path changes — deterministic schemes stay seed-for-seed
//!   identical (the acceptance criterion for existing users).
//! * **Cold cache = bitwise identical.** On a game with no
//!   transpositions, every lookup misses, misses return the inner
//!   evaluator's exact output, and the search is bitwise the same as
//!   the uncached one.
//! * **Warm cache = value-identical, priors within quantization.**
//!   Hits return the stored value bit-for-bit and priors within one
//!   u16 quantization step; search quality (finding a forced win) is
//!   preserved.

use games::synthetic::SyntheticGame;
use games::tictactoe::TicTacToe;
use games::Game;
use mcts::serial::SerialSearch;
use mcts::{
    BatchEvaluator, CachedEvaluator, EvalCache, EvalCacheConfig, Evaluator, MctsConfig,
    SearchScheme,
};
use std::sync::Arc;

/// Deterministic state-dependent evaluator: priors/value are a pure
/// function of the encoded state, so two runs are comparable and cached
/// answers are checkable against recomputed ones.
struct DetEval {
    input_len: usize,
    actions: usize,
}

impl DetEval {
    fn for_game<G: Game>(g: &G) -> Self {
        DetEval {
            input_len: g.encoded_len(),
            actions: g.action_space(),
        }
    }
}

impl Evaluator for DetEval {
    fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32) {
        let mut h = 0x9e3779b97f4a7c15u64;
        for (i, &x) in input.iter().enumerate() {
            h = h
                .wrapping_mul(31)
                .wrapping_add(x.to_bits() as u64)
                .wrapping_add(i as u64);
        }
        let mut priors = Vec::with_capacity(self.actions);
        for a in 0..self.actions as u64 {
            let v = h.wrapping_mul(a + 3).wrapping_add(a) % 97;
            priors.push(v as f32 / 97.0 + 0.01);
        }
        let total: f32 = priors.iter().sum();
        priors.iter_mut().for_each(|p| *p /= total);
        (priors, ((h % 1001) as f32 / 1000.0) - 0.5)
    }

    fn action_space(&self) -> usize {
        self.actions
    }

    fn input_len(&self) -> usize {
        self.input_len
    }
}

fn cache_for(eval: &dyn BatchEvaluator) -> Arc<EvalCache> {
    Arc::new(EvalCache::new(
        EvalCacheConfig::with_capacity(8 << 20),
        eval.action_space(),
    ))
}

#[test]
fn uncached_search_is_seed_for_seed_deterministic() {
    // The disabled-cache baseline the acceptance criterion compares
    // against: two identical searches, identical trees.
    let g = TicTacToe::new();
    let cfg = MctsConfig {
        playouts: 300,
        ..Default::default()
    };
    let mut a = SerialSearch::new(cfg, Arc::new(DetEval::for_game(&g)));
    let mut b = SerialSearch::new(cfg, Arc::new(DetEval::for_game(&g)));
    let ra = a.search(&g);
    let rb = b.search(&g);
    assert_eq!(ra.visits, rb.visits);
    assert_eq!(ra.value.to_bits(), rb.value.to_bits());
}

#[test]
fn cold_cache_is_bitwise_identical_on_transposition_free_game() {
    // SyntheticGame hashes its action *path*, so no two states collide:
    // every cache lookup misses, and misses pass the inner evaluator's
    // output through untouched.
    let g = SyntheticGame::new(5, 8, 42);
    let cfg = MctsConfig {
        playouts: 400,
        ..Default::default()
    };
    let plain: Arc<dyn BatchEvaluator> = Arc::new(DetEval::for_game(&g));
    let cached: Arc<dyn BatchEvaluator> = {
        let inner: Arc<dyn BatchEvaluator> = Arc::new(DetEval::for_game(&g));
        let cache = cache_for(inner.as_ref());
        Arc::new(CachedEvaluator::new(inner, cache))
    };
    let mut a = SerialSearch::new(cfg, plain);
    let mut b = SerialSearch::new(cfg, cached);
    let ra = a.search(&g);
    let rb = b.search(&g);
    assert_eq!(ra.visits, rb.visits, "all-miss cache must be transparent");
    assert_eq!(ra.value.to_bits(), rb.value.to_bits());
    for (pa, pb) in ra.probs.iter().zip(&rb.probs) {
        assert_eq!(pa.to_bits(), pb.to_bits());
    }
}

#[test]
fn cache_hits_return_bitwise_value_and_quantized_priors() {
    let g = TicTacToe::new();
    let inner: Arc<dyn BatchEvaluator> = Arc::new(DetEval::for_game(&g));
    let cache = cache_for(inner.as_ref());
    let cached = CachedEvaluator::new(Arc::clone(&inner), cache);
    let mut buf = vec![0.0; g.encoded_len()];
    g.encode(&mut buf);
    let miss = cached.evaluate_one_keyed(g.hash(), &buf);
    let hit = cached.evaluate_one_keyed(g.hash(), &buf);
    // Value round-trips exactly (stored as f32, not quantized).
    assert_eq!(miss.value.to_bits(), hit.value.to_bits());
    // Priors round-trip within one u16 quantization step.
    assert_eq!(miss.priors.len(), hit.priors.len());
    for (m, h) in miss.priors.iter().zip(&hit.priors) {
        assert!(
            (m - h).abs() <= 1.5 / 65535.0,
            "prior {m} vs dequantized {h}"
        );
    }
    let s = cached.cache().stats();
    assert_eq!((s.hits, s.misses), (1, 1));
}

#[test]
fn warm_cache_preserves_forced_win() {
    // X: 0,1 — O: 3,4. X to move; 2 completes the top row. Search the
    // position twice through one cache: the warm (quantized) pass must
    // still find the win.
    let mut g = TicTacToe::new();
    for a in [0u16, 3, 1, 4] {
        g.apply(a);
    }
    let cfg = MctsConfig {
        playouts: 400,
        ..Default::default()
    };
    let inner: Arc<dyn BatchEvaluator> = Arc::new(DetEval::for_game(&g));
    let cache = cache_for(inner.as_ref());
    let cached: Arc<dyn BatchEvaluator> = Arc::new(CachedEvaluator::new(inner, Arc::clone(&cache)));
    let mut s = SerialSearch::new(cfg, Arc::clone(&cached));
    let cold = s.search(&g);
    assert_eq!(cold.best_action(), 2, "cold visits {:?}", cold.visits);
    let mut s2 = SerialSearch::new(cfg, cached);
    let warm = s2.search(&g);
    assert_eq!(warm.best_action(), 2, "warm visits {:?}", warm.visits);
    assert!(warm.value > 0.5);
    assert!(cache.stats().hits > 0, "second search must reuse entries");
}
