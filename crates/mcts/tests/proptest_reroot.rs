//! Differential property test for in-place re-rooting: after any random
//! game prefix and search, [`Tree::advance_root`] (free-list reclamation,
//! stable indices) must leave exactly the tree that the retained
//! copy-based reference [`Tree::extract_subtree`] produces — same visit
//! counts, same priors, same principal variation — and both must keep
//! agreeing after further growth.

use games::tictactoe::TicTacToe;
use games::{Action, Game, Status};
use mcts::analysis::principal_variation;
use mcts::tree::{SelectOutcome, Tree};
use mcts::MctsConfig;
use proptest::prelude::*;

/// Deterministic fake evaluator: priors/value are a pure function of the
/// game state, so identical trees grow identically no matter which arena
/// slots their nodes occupy.
fn det_eval<G: Game>(g: &G, priors: &mut Vec<f32>) -> f32 {
    let salt = g.move_count() as u64;
    priors.clear();
    for a in 0..g.action_space() as u64 {
        let h = (a + 1).wrapping_mul(2654435761).wrapping_add(salt * 97);
        priors.push((h % 89) as f32 / 89.0 + 0.01);
    }
    ((salt * 31 % 11) as f32 / 11.0) - 0.5
}

/// Grow `tree` by `playouts` deterministic playouts from `base`.
fn grow(tree: &mut Tree, base: &TicTacToe, playouts: usize) {
    let mut priors = Vec::new();
    for _ in 0..playouts {
        let mut g = *base;
        let (leaf, out) = tree.select(&mut g);
        if out == SelectOutcome::NeedsEval {
            let v = det_eval(&g, &mut priors);
            tree.expand_and_backup(leaf, &priors, v);
        }
    }
}

/// Structural equality of two trees (BFS pairwise over child blocks).
fn assert_trees_equal(a: &Tree, b: &Tree) -> Result<(), String> {
    let mut pairs = vec![(a.root(), b.root())];
    while let Some((x, y)) = pairs.pop() {
        prop_assert_eq!(a.state(x), b.state(y), "state mismatch");
        prop_assert_eq!(a.n(x), b.n(y), "visit mismatch");
        prop_assert!((a.w(x) - b.w(y)).abs() < 1e-9, "value-sum mismatch");
        prop_assert_eq!(a.children(x).len(), b.children(y).len());
        for (cx, cy) in a.children(x).zip(b.children(y)) {
            prop_assert_eq!(a.action(cx), b.action(cy), "action order mismatch");
            prop_assert_eq!(a.prior(cx), b.prior(cy), "prior mismatch");
            pairs.push((cx, cy));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In-place re-root == copy re-root: structure, statistics, priors
    /// and PV, across random prefixes, budgets and played actions — and
    /// the two stay identical after further deterministic growth.
    #[test]
    fn inplace_reroot_matches_copy_reroot(
        seed in 0u64..5_000,
        prefix_len in 0usize..5,
        playouts in 20usize..150,
        extra in 0usize..80,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

        // Random legal game prefix.
        let mut base = TicTacToe::new();
        for _ in 0..prefix_len {
            if base.status() != Status::Ongoing {
                break;
            }
            let acts = base.legal_actions();
            base.apply(acts[rng.gen_range(0..acts.len())]);
        }
        prop_assume!(base.status() == Status::Ongoing);

        let cfg = MctsConfig { playouts, ..Default::default() };
        let mut tree = Tree::new(cfg);
        grow(&mut tree, &base, playouts);
        tree.check_invariants();

        // Play a random legal action (explored or not).
        let acts = base.legal_actions();
        let played: Action = acts[rng.gen_range(0..acts.len())];
        let reference = tree.root_child_for(played).map(|c| tree.extract_subtree(c));
        let live_before = tree.len();

        let kept = tree.advance_root(played);
        tree.check_invariants();

        match reference {
            Some(reference) => {
                prop_assert!(kept);
                assert_trees_equal(&tree, &reference)?;
                prop_assert_eq!(
                    principal_variation(&tree, 9),
                    principal_variation(&reference, 9),
                    "PV diverged"
                );
                // Reclamation accounting: everything discarded is on the
                // free-list, nothing leaked.
                let s = tree.stats();
                prop_assert_eq!(s.live, reference.len());
                prop_assert_eq!(s.live + s.free, s.high_water);
                prop_assert_eq!(s.reclaimed_total as usize, live_before - tree.len());

                // Both trees keep agreeing after more deterministic growth
                // (recycled slots vs fresh arena must not matter).
                let mut after = base;
                after.apply(played);
                if after.status() == Status::Ongoing {
                    let mut reference = reference;
                    let mut tree = tree;
                    grow(&mut tree, &after, extra);
                    grow(&mut reference, &after, extra);
                    tree.check_invariants();
                    reference.check_invariants();
                    assert_trees_equal(&tree, &reference)?;
                    let (va, pa, _) = tree.action_prior(9);
                    let (vb, pb, _) = reference.action_prior(9);
                    prop_assert_eq!(va, vb, "visit counts diverged after growth");
                    prop_assert_eq!(pa, pb);
                }
            }
            None => {
                // Unexplored action: in-place advance resets to a bare root.
                prop_assert!(!kept);
                prop_assert_eq!(tree.len(), 1);
            }
        }
    }
}
