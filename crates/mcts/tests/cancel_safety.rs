//! Cancellation safety: cancelling a run mid-search — including the
//! local-tree scheme mid-batch with virtual loss still in flight —
//! leaves every scheme consistent and immediately reusable.
//!
//! Under the `mcts/invariants` cargo feature (CI runs this suite with
//! it), `cancel` itself executes the full tree-invariant walk, so these
//! tests double as invariant checks at the cancellation point.

use games::tictactoe::TicTacToe;
use games::Game;
use mcts::evaluator::DelayedEvaluator;
use mcts::local::LocalTreeSearch;
use mcts::{
    Budget, MctsConfig, ReusableSearch, Scheme, SearchBuilder, SearchScheme, StepOutcome,
    UniformEvaluator,
};
use std::sync::Arc;
use std::time::Duration;

fn cfg(playouts: usize, workers: usize) -> MctsConfig {
    MctsConfig {
        playouts,
        workers,
        ..Default::default()
    }
}

fn uniform() -> Arc<UniformEvaluator> {
    Arc::new(UniformEvaluator::for_game(&TicTacToe::new()))
}

#[test]
fn every_scheme_survives_mid_search_cancellation() {
    let g = TicTacToe::new();
    for scheme in Scheme::ALL {
        let mut s = SearchBuilder::new(scheme)
            .config(cfg(2000, 2))
            .evaluator(uniform())
            .build::<TicTacToe>();
        s.begin(&g, Budget::default());
        // A few small slices, then abandon the run mid-way.
        for _ in 0..3 {
            if s.step(16) == StepOutcome::Done {
                break;
            }
        }
        let partial = s.partial_result();
        s.cancel();
        assert!(
            partial.stats.playouts < 2000,
            "{scheme}: cancelled too late to be mid-search"
        );
        // The same object must search again, cleanly, right away.
        let r = s.search(&g);
        assert!(r.stats.playouts >= 2000, "{scheme}: post-cancel search");
    }
}

#[test]
fn local_tree_cancel_mid_batch_with_inflight_virtual_loss() {
    // Slow evaluations keep leaves (and their virtual loss) in flight
    // across the step boundary; cancel must drain them, release the
    // loss, and pass the invariant walk (run by cancel under the
    // `invariants` feature).
    let eval = Arc::new(DelayedEvaluator::new(
        UniformEvaluator::for_game(&TicTacToe::new()),
        Duration::from_millis(3),
    ));
    let mut s = LocalTreeSearch::new(cfg(500, 4), eval);
    let g = TicTacToe::new();
    SearchScheme::<TicTacToe>::begin(&mut s, &g, Budget::default());
    let mut saw_inflight = false;
    for _ in 0..4 {
        if SearchScheme::<TicTacToe>::step(&mut s, 3) == StepOutcome::Done {
            break;
        }
        if s.in_flight() > 0 {
            saw_inflight = true;
            break;
        }
    }
    assert!(
        saw_inflight,
        "slow evaluator must leave leaves in flight at a step boundary"
    );
    // Snapshot while evaluations are still pending: completed playouts
    // only, a well-formed distribution.
    let partial = SearchScheme::<TicTacToe>::partial_result(&s);
    assert!(partial.stats.playouts < 500);
    SearchScheme::<TicTacToe>::cancel(&mut s);
    assert_eq!(s.in_flight(), 0, "cancel must drain the pipe");
    // And the scheme is immediately reusable.
    let r = SearchScheme::<TicTacToe>::search(&mut s, &g);
    assert_eq!(r.stats.playouts, 500);
}

#[test]
fn reuse_cancel_keeps_tree_valid_for_advance_and_next_run() {
    let mut s = ReusableSearch::new(cfg(400, 1), uniform());
    let mut g = TicTacToe::new();
    SearchScheme::<TicTacToe>::begin(&mut s, &g, Budget::default());
    assert_eq!(
        SearchScheme::<TicTacToe>::step(&mut s, 32),
        StepOutcome::Running
    );
    let partial = SearchScheme::<TicTacToe>::partial_result(&s);
    assert_eq!(partial.stats.playouts, 32);
    SearchScheme::<TicTacToe>::cancel(&mut s);

    // The cancelled run's playouts are retained (a shorter search
    // happened); advancing re-roots that partial tree and the next
    // search inherits it.
    let a = partial.best_action();
    s.advance(a);
    g.apply(a);
    let r = s.search(&g);
    assert_eq!(r.stats.playouts, 400);
    assert!(
        s.inherited_nodes > 0,
        "post-cancel advance must keep the partial subtree"
    );

    // A subsequent step-driven run on the same session also works.
    SearchScheme::<TicTacToe>::begin(&mut s, &g, Budget::playouts(64));
    while SearchScheme::<TicTacToe>::step(&mut s, 16) == StepOutcome::Running {}
    assert_eq!(
        SearchScheme::<TicTacToe>::partial_result(&s).stats.playouts,
        64
    );
    SearchScheme::<TicTacToe>::cancel(&mut s);
}

#[test]
fn cancel_without_begin_and_double_cancel_are_noops() {
    for scheme in Scheme::ALL {
        let mut s = SearchBuilder::new(scheme)
            .config(cfg(50, 2))
            .evaluator(uniform())
            .build::<TicTacToe>();
        s.cancel();
        assert_eq!(s.step(8), StepOutcome::Done, "{scheme}: step with no run");
        assert_eq!(s.partial_result().stats.playouts, 0, "{scheme}");
        let r = s.search(&TicTacToe::new());
        assert!(r.stats.playouts >= 50, "{scheme}");
        s.cancel();
        s.cancel();
    }
}
