//! Verifies the zero-alloc contracts of the steady state:
//!
//! 1. **Inference** — a warmed `NnEvaluator::evaluate_batch` performs no
//!    heap allocations: every buffer (input pack, im2col matrix, GEMM
//!    staging, intermediate activations, policy/value staging, prior
//!    vectors) reuses capacity from the per-thread workspace or the
//!    caller's output buffer.
//! 2. **Search** — a warmed `ReusableSearch` runs a full
//!    search → `advance` → search cycle with no heap allocations:
//!    selection, leaf claiming, expansion, backup, in-place re-rooting
//!    and the result buffers all live on recycled arena slots and reused
//!    scratch space.
//! 3. **Eviction** — a warmed `ReusableSearch` under a fixed arena byte
//!    budget keeps searching with no heap allocations while the LRU
//!    policy continuously recycles cold subtrees: eviction walks reuse
//!    the retained stack, coalescing reuses its scratch, and the arena
//!    columns never grow past the bound.
//!
//! This file holds exactly one test (with three tracked phases) so the
//! counting global allocator sees no traffic from concurrently running
//! tests.

use games::Game;
use mcts::{BatchEvaluator, EvalOutput, MctsConfig, NnEvaluator, ReusableSearch, SearchResult};
use nn::{NetConfig, PolicyValueNet};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

static TRACK: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// System allocator that counts allocation events while `TRACK` is set.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Run `f`, returning the number of allocation events it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    TRACK.store(true, Ordering::SeqCst);
    f();
    TRACK.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_allocates_nothing() {
    evaluate_batch_phase();
    search_advance_cycle_phase();
    bounded_eviction_cycle_phase();
}

fn evaluate_batch_phase() {
    let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 5, 5, 25), 7));
    let eval = NnEvaluator::new(net);
    const B: usize = 32;
    let inputs: Vec<Vec<f32>> = (0..B)
        .map(|i| {
            (0..100)
                .map(|j| ((i * 13 + j) % 11) as f32 / 11.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
    let mut out = vec![EvalOutput::default(); B];

    // Warm-up: grows the thread workspace, pack buffers, prior capacities.
    for _ in 0..3 {
        eval.evaluate_batch(&refs, &mut out);
    }
    let warm = out.clone();

    let allocs = count_allocs(|| eval.evaluate_batch(&refs, &mut out));
    assert_eq!(
        allocs, 0,
        "steady-state evaluate_batch must not touch the heap ({allocs} allocations observed)"
    );
    // And it still computes the same thing.
    for (w, o) in warm.iter().zip(&out) {
        assert_eq!(w.priors, o.priors);
        assert_eq!(w.value, o.value);
    }
}

/// A bounded arena in steady-state eviction: once the LRU list, the
/// eviction walk stack and the coalesce scratch are warm, recycling
/// cold subtrees to make room for hot ones is pure pointer surgery on
/// preallocated columns — an infinite analysis session under a fixed
/// byte budget never touches the heap again.
fn bounded_eviction_cycle_phase() {
    use games::tictactoe::TicTacToe;
    use mcts::{EvictionPolicy, NodeArena};

    // Tight enough that every search cycle recycles nodes through the
    // LRU list, yet above the unevictable working set: the serial
    // searcher's current selection path holds virtual loss on every
    // node it descended, and a full-depth TicTacToe path owns up to 46
    // slots of child blocks.
    let budget = 72 * NodeArena::slot_bytes();
    let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 5));
    let mut search = ReusableSearch::new(
        MctsConfig {
            playouts: 300,
            arena_budget_bytes: Some(budget),
            eviction: EvictionPolicy::Lru,
            ..Default::default()
        },
        Arc::new(NnEvaluator::new(net)),
    );
    let mut result = SearchResult::default();

    // One deterministic cycle: a fresh analysis session over the same
    // position. Eviction order is a pure function of the playout
    // sequence, so every cycle replays the same recycling schedule.
    let cycle = |search: &mut ReusableSearch, result: &mut SearchResult| {
        search.reset();
        search.search_into(&TicTacToe::new(), result);
        result
            .visits
            .iter()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, &v| {
                (h ^ v as u64).wrapping_mul(0x100_0000_01b3)
            })
    };

    // Warm-up: fills the arena to its bound, grows the eviction walk
    // stack / coalesce scratch to their high-water marks.
    let mut warm = 0u64;
    for _ in 0..3 {
        warm = cycle(&mut search, &mut result);
    }
    let stats = search.tree_stats().expect("warmed searcher has a tree");
    assert!(
        stats.evicted > 0,
        "300 playouts against a 72-slot byte budget must evict"
    );
    assert!(
        stats.live <= 72,
        "live nodes {} exceed the byte-derived bound",
        stats.live
    );

    let mut tracked = 0u64;
    let allocs = count_allocs(|| tracked = cycle(&mut search, &mut result));
    #[cfg(feature = "invariants")]
    let _ = allocs;
    #[cfg(not(feature = "invariants"))]
    assert_eq!(
        allocs, 0,
        "steady-state eviction must not touch the heap ({allocs} allocations observed)"
    );
    assert_eq!(tracked, warm, "recycling cycles stay deterministic");
}

fn search_advance_cycle_phase() {
    use games::tictactoe::TicTacToe;
    use rand::SeedableRng;

    let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 5));
    let mut search = ReusableSearch::new(
        MctsConfig {
            playouts: 48,
            ..Default::default()
        },
        Arc::new(NnEvaluator::new(net)),
    );
    let mut result = SearchResult::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // One deterministic cycle: two searched moves with an in-place
    // re-root between them, plus temperature sampling of the final
    // distribution (serving's per-move sampling must stay off the heap).
    let cycle =
        |search: &mut ReusableSearch, result: &mut SearchResult, rng: &mut rand::rngs::StdRng| {
            search.reset();
            let mut game = TicTacToe::new();
            search.search_into(&game, result);
            let first = result.best_action();
            search.advance(first);
            game.apply(first);
            search.search_into(&game, result);
            let sampled = result.sample_action(0.8, rng);
            assert!(game.is_legal(sampled));
            // Allocation-free fingerprint of the final visit counts (FNV-1a).
            let fp = result
                .visits
                .iter()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, &v| {
                    (h ^ v as u64).wrapping_mul(0x100_0000_01b3)
                });
            (first, result.best_action(), fp)
        };

    // Warm-up: grows the arena, scratch buffers, eval workspace and the
    // result's visit/prob capacity. The search is deterministic, so every
    // later cycle replays the same allocation shape.
    let mut warm = None;
    for _ in 0..3 {
        warm = Some(cycle(&mut search, &mut result, &mut rng));
    }
    let warm = warm.unwrap();

    let mut tracked = None;
    let allocs = count_allocs(|| tracked = Some(cycle(&mut search, &mut result, &mut rng)));
    // Under the `invariants` feature every search ends with a full tree
    // walk whose DFS stack allocates; the zero-alloc contract applies to
    // the production configuration.
    #[cfg(feature = "invariants")]
    let _ = allocs;
    #[cfg(not(feature = "invariants"))]
    assert_eq!(
        allocs, 0,
        "steady-state search + advance must not touch the heap ({allocs} allocations observed)"
    );
    // And the tracked cycle still computed the same search.
    assert_eq!(tracked.unwrap(), warm);
    assert!(
        result.stats.reclaimed > 0,
        "the cycle's advance reclaimed the discarded siblings"
    );
}
