//! Verifies the zero-alloc inference contract: after warm-up, a
//! steady-state `NnEvaluator::evaluate_batch` performs **no heap
//! allocations** — every buffer (input pack, im2col matrix, GEMM staging,
//! intermediate activations, policy/value staging, prior vectors) reuses
//! capacity from the per-thread workspace or the caller's output buffer.
//!
//! This file holds exactly one test so the counting global allocator sees
//! no traffic from concurrently running tests.

use mcts::{BatchEvaluator, EvalOutput, NnEvaluator};
use nn::{NetConfig, PolicyValueNet};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

static TRACK: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// System allocator that counts allocation events while `TRACK` is set.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn evaluate_batch_steady_state_allocates_nothing() {
    let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 5, 5, 25), 7));
    let eval = NnEvaluator::new(net);
    const B: usize = 32;
    let inputs: Vec<Vec<f32>> = (0..B)
        .map(|i| {
            (0..100)
                .map(|j| ((i * 13 + j) % 11) as f32 / 11.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
    let mut out = vec![EvalOutput::default(); B];

    // Warm-up: grows the thread workspace, pack buffers, prior capacities.
    for _ in 0..3 {
        eval.evaluate_batch(&refs, &mut out);
    }
    let warm = out.clone();

    ALLOCS.store(0, Ordering::SeqCst);
    TRACK.store(true, Ordering::SeqCst);
    eval.evaluate_batch(&refs, &mut out);
    TRACK.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        allocs, 0,
        "steady-state evaluate_batch must not touch the heap ({allocs} allocations observed)"
    );
    // And it still computes the same thing.
    for (w, o) in warm.iter().zip(&out) {
        assert_eq!(w.priors, o.priors);
        assert_eq!(w.value, o.value);
    }
}
