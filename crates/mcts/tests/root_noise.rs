//! Root Dirichlet noise integration: the self-play exploration mechanism
//! must perturb root priors without breaking search invariants, in both
//! tree representations.

use games::tictactoe::TicTacToe;
use games::Game;
use mcts::{AdaptiveSearch, MctsConfig, RootNoise, Scheme, SearchScheme, UniformEvaluator};
use std::sync::Arc;

fn cfg(noise: Option<RootNoise>) -> MctsConfig {
    MctsConfig {
        playouts: 300,
        workers: 2,
        root_noise: noise,
        ..Default::default()
    }
}

#[test]
fn noise_changes_visit_distribution() {
    // Uniform evaluator ⇒ without noise the search is deterministic;
    // with noise the root priors (and hence visits) must differ.
    for scheme in [Scheme::Serial, Scheme::SharedTree, Scheme::LocalTree] {
        let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
        let mut plain =
            AdaptiveSearch::<TicTacToe>::new(scheme, cfg(None), Arc::clone(&eval) as Arc<_>);
        let mut noisy =
            AdaptiveSearch::<TicTacToe>::new(scheme, cfg(Some(RootNoise::alphazero(42))), eval);
        let r_plain = plain.search(&TicTacToe::new());
        let r_noisy = noisy.search(&TicTacToe::new());
        assert_ne!(
            r_plain.visits, r_noisy.visits,
            "{scheme}: noise had no effect"
        );
        // Invariants must still hold.
        assert_eq!(r_noisy.stats.playouts, 300, "{scheme}");
        assert_eq!(r_noisy.visits.iter().sum::<u32>(), 299, "{scheme}");
        assert!((r_noisy.probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}

#[test]
fn noise_varies_across_moves() {
    // The per-tree nonce must give different noise draws on consecutive
    // moves even with a fixed config seed.
    let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
    let mut s =
        AdaptiveSearch::<TicTacToe>::new(Scheme::Serial, cfg(Some(RootNoise::alphazero(7))), eval);
    let g = TicTacToe::new();
    let r1 = s.search(&g);
    let r2 = s.search(&g);
    assert_ne!(r1.visits, r2.visits, "same noise reused across moves");
}

#[test]
fn noisy_search_still_finds_forced_win() {
    // ε = 0.25 noise must not destroy tactics at this playout budget.
    let mut g = TicTacToe::new();
    for a in [0u16, 3, 1, 4] {
        g.apply(a);
    }
    let eval = Arc::new(UniformEvaluator::for_game(&g));
    let mut s = AdaptiveSearch::<TicTacToe>::new(
        Scheme::SharedTree,
        MctsConfig {
            playouts: 500,
            workers: 4,
            root_noise: Some(RootNoise::alphazero(1)),
            ..Default::default()
        },
        eval,
    );
    let r = s.search(&g);
    assert_eq!(r.best_action(), 2, "visits {:?}", r.visits);
}

#[test]
#[should_panic(expected = "epsilon")]
fn invalid_noise_rejected() {
    MctsConfig {
        root_noise: Some(RootNoise {
            alpha: 0.3,
            epsilon: 1.5,
            seed: 0,
        }),
        ..Default::default()
    }
    .validate();
}
