//! Int8 inference parity: the accuracy contract of the quantized
//! evaluator path, pinned on a fixed seed suite of real game positions
//! (gomoku and othello), per-position and end-to-end through search.
//!
//! Contract (documented in ARCHITECTURE.md "Inference precision tiers"):
//! on this suite the int8 evaluator agrees with f32 on the policy argmax
//! for ≥ 99% of positions, the value head MAE stays below 0.02, and a
//! deterministic serial search returns the identical `best_action` from
//! every suite position.

use games::{gomoku::Gomoku, othello::Othello, Game};
use mcts::{BatchEvaluator, MctsConfig, NnEvaluator, Precision, Scheme, SearchBuilder};
use nn::{NetConfig, PolicyValueNet};
use std::sync::Arc;

/// Deterministic xorshift so the suite is identical on every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Play `moves` random legal moves from the start position.
fn advance<G: Game>(game: &mut G, moves: usize, rng: &mut Rng) {
    let mut legal = Vec::new();
    for _ in 0..moves {
        if game.status().is_terminal() {
            return;
        }
        game.legal_actions_into(&mut legal);
        if legal.is_empty() {
            return;
        }
        let a = legal[(rng.next() % legal.len() as u64) as usize];
        game.apply(a);
    }
}

/// The fixed suite: positions 0, 1, …, `depth-1` random plies deep,
/// `per_depth` samples each.
fn suite<G: Game>(start: &G, depth: usize, per_depth: usize, seed: u64) -> Vec<G> {
    let mut rng = Rng(seed | 1);
    let mut out = Vec::new();
    for d in 0..depth {
        for _ in 0..per_depth {
            let mut g = start.clone();
            advance(&mut g, d, &mut rng);
            if !g.status().is_terminal() {
                out.push(g);
            }
        }
    }
    out
}

/// A briefly trained net: freshly initialized nets have near-tied
/// logits (argmax decided by noise-level margins), which is not what
/// quantization ever serves — deployments quantize *trained* models,
/// whose argmax margins are decisive. A few SGD steps toward
/// deterministic one-hot targets reproduce that regime.
fn net_for<G: Game>(game: &G, positions: &[G], seed: u64) -> Arc<PolicyValueNet> {
    let (c, h, w) = game.encoded_shape();
    let cfg = NetConfig::tiny(c, h, w, game.action_space());
    let mut net = PolicyValueNet::new(cfg, seed);
    let k = positions.len();
    let mut x = vec![0.0f32; k * cfg.in_c * cfg.h * cfg.w];
    let mut pi = vec![0.0f32; k * cfg.actions];
    let mut z = vec![0.0f32; k];
    let mut legal = Vec::new();
    for (i, g) in positions.iter().take(k).enumerate() {
        g.encode(&mut x[i * cfg.in_c * cfg.h * cfg.w..(i + 1) * cfg.in_c * cfg.h * cfg.w]);
        g.legal_actions_into(&mut legal);
        // Deterministic one-hot target: position hash picks the move.
        let target = legal[(g.hash() % legal.len() as u64) as usize] as usize;
        pi[i * cfg.actions + target] = 1.0;
        z[i] = if g.hash() & 1 == 0 { 1.0 } else { -1.0 };
    }
    let x = tensor::Tensor::from_vec(x, &[k, cfg.in_c, cfg.h, cfg.w]);
    let pi = tensor::Tensor::from_vec(pi, &[k, cfg.actions]);
    let z = tensor::Tensor::from_vec(z, &[k, 1]);
    let mut opt = nn::Sgd::new(&net.params(), 0.05, 0.9, 0.0);
    let mut grads = net.grad_buffers();
    for _ in 0..40 {
        grads.zero();
        let caches = net.forward_train(&x);
        net.backward(&caches, &pi, &z, &mut grads);
        let flat = grads.flat();
        nn::Optimizer::step(&mut opt, &mut net.params_mut(), &flat);
    }
    Arc::new(net)
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}

/// Per-position agreement between the f32 and int8 evaluator paths.
fn measure_parity<G: Game>(positions: &[G], net: Arc<PolicyValueNet>) -> (f64, f64) {
    let f32_eval = NnEvaluator::with_precision(Arc::clone(&net), 8, Precision::F32);
    let int8_eval = NnEvaluator::with_precision(net, 8, Precision::Int8);
    assert_eq!(int8_eval.precision(), Precision::Int8, "int8 path active");
    let mut agree = 0usize;
    let mut value_err = 0.0f64;
    let mut buf = vec![0.0f32; positions[0].encoded_len()];
    for g in positions {
        g.encode(&mut buf);
        let a = f32_eval.evaluate_one(&buf);
        let b = int8_eval.evaluate_one(&buf);
        if argmax(&a.priors) == argmax(&b.priors) {
            agree += 1;
        }
        value_err += (a.value - b.value).abs() as f64;
    }
    (
        agree as f64 / positions.len() as f64,
        value_err / positions.len() as f64,
    )
}

/// Deterministic serial search from `root` under `precision`.
fn searched_best<G: Game>(root: &G, net: Arc<PolicyValueNet>, precision: Precision) -> u16 {
    let eval = Arc::new(NnEvaluator::with_precision(net, 8, precision));
    let mut search = SearchBuilder::new(Scheme::Serial)
        .config(MctsConfig {
            playouts: 96,
            ..Default::default()
        })
        .evaluator(eval)
        .build::<G>();
    search.search(root).best_action()
}

#[test]
fn int8_policy_argmax_matches_f32_on_fixed_gomoku_suite() {
    let start = Gomoku::new(9, 5);
    let positions = suite(&start, 10, 8, 0x9E3779B97F4A7C15);
    assert!(positions.len() >= 60, "suite big enough to be meaningful");
    let net = net_for(&start, &positions, 42);
    let (agreement, value_mae) = measure_parity(&positions, net);
    assert!(
        agreement >= 0.99,
        "gomoku argmax agreement {agreement:.4} below the 99% contract"
    );
    assert!(
        value_mae <= 0.02,
        "gomoku value MAE {value_mae:.4} above tolerance"
    );
}

#[test]
fn int8_policy_argmax_matches_f32_on_fixed_othello_suite() {
    let start = Othello::new(6);
    let positions = suite(&start, 10, 8, 0xD1B54A32D192ED03);
    assert!(positions.len() >= 60);
    let net = net_for(&start, &positions, 1234);
    let (agreement, value_mae) = measure_parity(&positions, net);
    assert!(
        agreement >= 0.99,
        "othello argmax agreement {agreement:.4} below the 99% contract"
    );
    assert!(
        value_mae <= 0.02,
        "othello value MAE {value_mae:.4} above tolerance"
    );
}

#[test]
fn int8_and_f32_searches_pick_identical_moves_end_to_end() {
    // End-to-end: same deterministic search, only the inference
    // precision differs — the chosen move must not.
    let gomoku = Gomoku::new(9, 5);
    let g_roots = suite(&gomoku, 6, 2, 0xA5A5A5A5A5A5A5A5);
    let g_net = net_for(&gomoku, &g_roots, 42);
    for root in g_roots {
        let f = searched_best(&root, Arc::clone(&g_net), Precision::F32);
        let q = searched_best(&root, Arc::clone(&g_net), Precision::Int8);
        assert_eq!(f, q, "gomoku search diverged at move {}", root.move_count());
    }
    let othello = Othello::new(6);
    let o_roots = suite(&othello, 6, 2, 0x0123456789ABCDEF);
    let o_net = net_for(&othello, &o_roots, 77);
    for root in o_roots {
        let f = searched_best(&root, Arc::clone(&o_net), Precision::F32);
        let q = searched_best(&root, Arc::clone(&o_net), Precision::Int8);
        assert_eq!(
            f,
            q,
            "othello search diverged at move {}",
            root.move_count()
        );
    }
}

#[test]
fn precision_knob_defaults_to_f32_and_reports_the_active_path() {
    let g = Gomoku::new(7, 5);
    let net = net_for(&g, std::slice::from_ref(&g), 9);
    let default_eval = NnEvaluator::with_batch_hint(Arc::clone(&net), 4);
    assert_eq!(default_eval.precision(), Precision::F32);
    let int8_eval = NnEvaluator::with_precision(net, 4, Precision::Int8);
    assert_eq!(int8_eval.precision(), Precision::Int8);
    let mut buf = vec![0.0f32; g.encoded_len()];
    g.encode(&mut buf);
    let out = int8_eval.evaluate_one(&buf);
    assert_eq!(out.priors.len(), g.action_space());
    assert!(out.value.is_finite() && out.value.abs() <= 1.0);
}
