//! Cross-thread batch coalescing for synchronous callers.
//!
//! The shared-tree scheme's workers each need *their own* leaf evaluated
//! before they can continue the rollout — a synchronous, single-sample
//! call pattern. [`CoalescingEvaluator`] turns those concurrent calls
//! into shared batches: the first caller of a round becomes the
//! **leader**, waits a short window for peers to join (or until the
//! batch is full), runs one [`BatchEvaluator::evaluate_batch`] for
//! everyone, and hands each caller its own result. Followers just park.
//!
//! This is the software analogue of the accelerator's request queue
//! (§3.3) for backends that have no queue of their own (batched CPU
//! inference): `N` rollout workers produce one `[N, C, H, W]` forward
//! pass instead of `N` single-sample passes.

use crate::autotune::BatchTuner;
use crate::error::SearchError;
use crate::evaluator::{BatchEvaluator, EvalOutput, Evaluator};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on the leader's wait for peers to join a batch. The
/// *effective* wait adapts to the backend's measured forward time (a
/// window worth paying for a millisecond forward pass would dwarf a
/// microsecond one), capped by this value — or by the explicit window
/// passed to [`CoalescingEvaluator::with_window`].
pub const DEFAULT_COALESCE_WINDOW: Duration = Duration::from_micros(150);

/// Effective window = clamp(4 × measured per-sample forward time,
/// `MIN_COALESCE_WINDOW`, configured window).
pub const MIN_COALESCE_WINDOW: Duration = Duration::from_micros(2);

/// A sealed round awaiting follower pickup.
struct RoundDone {
    /// Per-index results; slot 0 (the leader's) is always `None`.
    slots: Vec<Option<EvalOutput>>,
    /// Followers that have not collected yet; entry removed at 0.
    remaining: usize,
    /// Set when the leader's `evaluate_batch` panicked: followers
    /// re-raise the *typed* error ([`SearchError::from_panic`] of the
    /// leader's payload) instead of waiting forever for results that
    /// never come — so a fault classified upstream (e.g. the serve
    /// layer's `EvaluatorFailed`) keeps its type across the coalescing
    /// boundary.
    poison: Option<SearchError>,
}

struct Round {
    /// Inputs collected for the round being assembled.
    inputs: Vec<Vec<f32>>,
    /// Id of the round currently assembling.
    epoch: u64,
    /// Finished rounds: epoch → per-index results (taken by followers).
    done: HashMap<u64, RoundDone>,
}

/// Lifetime batch-fill accounting of a [`CoalescingEvaluator`] — the
/// figure of merit for cross-caller (and, in a serving process,
/// cross-session) batching.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoalesceStats {
    /// Rounds executed (one `evaluate_batch` call each).
    pub batches: u64,
    /// Samples served across all rounds.
    pub samples: u64,
}

impl CoalesceStats {
    /// Mean samples per round (1.0 = no coalescing happened).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.samples as f64 / self.batches as f64
        }
    }
}

/// Turns concurrent single-sample `evaluate` calls into shared batches
/// (see module docs). Implements the synchronous [`Evaluator`] trait so
/// it drops into any single-sample call site.
pub struct CoalescingEvaluator {
    inner: Arc<dyn BatchEvaluator>,
    max_batch: usize,
    window: Duration,
    /// Measurement-driven override for target batch and window. When set,
    /// each round aims for the tuner's operating point (never above
    /// `max_batch`) and every sealed batch is recorded back into it.
    tuner: Option<Arc<BatchTuner>>,
    /// EMA of per-sample inference time, ns (0 = not yet measured).
    ema_sample_ns: AtomicU64,
    /// High-water mark of recent round fills (rises to any larger fill,
    /// decays by one per smaller round). Rounds normally target no more
    /// than this — waiting out the grace period for a fill the caller
    /// population has never produced would tax every round — with a
    /// periodic probe round aiming at the full tuner target so the mark
    /// can climb when concurrency rises gently. (Sharp rises need no
    /// probe: arrivals stacking up behind an in-flight forward overshoot
    /// the target and lift the mark directly.)
    fill_hwm: AtomicU64,
    /// Lifetime rounds executed.
    batches: AtomicU64,
    /// Lifetime samples served.
    samples: AtomicU64,
    state: Mutex<Round>,
    joined: Condvar,
    finished: Condvar,
}

impl CoalescingEvaluator {
    /// Coalesce into batches of at most `max_batch`, with the default
    /// collection window.
    pub fn new(inner: Arc<dyn BatchEvaluator>, max_batch: usize) -> Self {
        Self::with_window(inner, max_batch, DEFAULT_COALESCE_WINDOW)
    }

    /// Full control over batch bound and leader wait window.
    pub fn with_window(inner: Arc<dyn BatchEvaluator>, max_batch: usize, window: Duration) -> Self {
        assert!(max_batch >= 1, "batch bound must be positive");
        CoalescingEvaluator {
            inner,
            max_batch,
            window,
            tuner: None,
            ema_sample_ns: AtomicU64::new(0),
            fill_hwm: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            state: Mutex::new(Round {
                inputs: Vec::new(),
                epoch: 0,
                done: HashMap::new(),
            }),
            joined: Condvar::new(),
            finished: Condvar::new(),
        }
    }

    /// Attach a [`BatchTuner`]: rounds target the tuner's operating point
    /// (batch and window, both capped by the constructor arguments) and
    /// every sealed batch is recorded back into the curve. Typically the
    /// tuner is shared with the stats exporter so the feedback loop is
    /// observable.
    pub fn with_tuner(mut self, tuner: Arc<BatchTuner>) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// The configured batch bound.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The batch size the next round aims for: the tuner's operating
    /// point when one is attached *and* its curve covers every bucket
    /// (never above the hard `max_batch`), else `max_batch` itself. A
    /// partial curve must not steer the target — a tuner aiming at
    /// bucket `b` only ever observes batches ≤ `b`, so steering by an
    /// incomplete curve locks in whatever size showed up first.
    pub fn target_batch(&self) -> usize {
        let cap = match &self.tuner {
            Some(t) if t.fully_observed() => t.operating_point().batch.clamp(1, self.max_batch),
            _ => self.max_batch,
        };
        // Don't wait for a fill the current caller population has never
        // delivered: cap by the fill high-water mark, except on periodic
        // probe rounds (every 16th) which aim at the full target so the
        // mark can climb with rising concurrency.
        let hwm = self.fill_hwm.load(Ordering::Relaxed) as usize;
        let probe = self.batches.load(Ordering::Relaxed).is_multiple_of(16);
        if hwm == 0 || probe {
            cap
        } else {
            cap.min(hwm)
        }
    }

    /// Finished rounds currently awaiting follower pickup (diagnostics;
    /// returns to 0 once all concurrent callers have collected).
    pub fn rounds_pending(&self) -> usize {
        self.state.lock().done.len()
    }

    /// Lifetime batch-fill accounting (rounds + samples served).
    pub fn stats(&self) -> CoalesceStats {
        CoalesceStats {
            batches: self.batches.load(Ordering::Relaxed),
            samples: self.samples.load(Ordering::Relaxed),
        }
    }

    /// The wait the next leader will actually use. With a tuner attached
    /// this is the operating point's window (the chosen batch's forward
    /// time: while one batch is in flight, arrivals have exactly that
    /// long to fill the next round). Otherwise it adapts to the measured
    /// per-sample forward time. Never above the configured window.
    pub fn effective_window(&self) -> Duration {
        if let Some(t) = &self.tuner {
            let op = t.operating_point();
            if !t.curve().is_empty() {
                return op.window.clamp(MIN_COALESCE_WINDOW, self.window);
            }
        }
        let ema = self.ema_sample_ns.load(Ordering::Relaxed);
        if ema == 0 {
            // Nothing measured yet: pay the configured window once.
            self.window
        } else {
            Duration::from_nanos(4 * ema).clamp(MIN_COALESCE_WINDOW, self.window)
        }
    }

    /// Fold one measured batch into the per-sample EMA (and the attached
    /// tuner's curve, when there is one).
    fn record_batch(&self, elapsed: Duration, samples: usize) {
        if let Some(t) = &self.tuner {
            t.record(samples, elapsed);
        }
        let per_sample = (elapsed.as_nanos() as u64) / samples.max(1) as u64;
        let old = self.ema_sample_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            per_sample
        } else {
            (old * 7 + per_sample) / 8
        };
        self.ema_sample_ns.store(new, Ordering::Relaxed);
    }
}

impl Evaluator for CoalescingEvaluator {
    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn action_space(&self) -> usize {
        self.inner.action_space()
    }

    fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32) {
        let mut st = self.state.lock();
        // A full round that its leader hasn't sealed yet must not grow
        // past max_batch; wait for the seal to open the next epoch. While
        // parked, lend this caller's core to the tensor pool so a forward
        // pass in flight can widen its strip parallelism.
        while st.inputs.len() >= self.max_batch {
            let _lease = tensor::pool::lend_core();
            st = self.joined.wait(st);
        }
        let epoch = st.epoch;
        let index = st.inputs.len();
        st.inputs.push(input.to_vec());
        let leader = index == 0;
        self.joined.notify_all();

        if leader {
            // Collect joiners until the batch reaches the target (the
            // tuner's operating point, or max_batch without one) or the
            // window closes. The leader's core is lent out while it waits.
            //
            // The window is an upper bound, not a sentence: when the
            // service has fewer concurrent evaluators than the target
            // batch, arrivals dry up long before the window closes, and
            // waiting it out would tax every round with dead time. So the
            // round also seals once no new caller has joined for a grace
            // period (a fraction of the window) — full batches form at
            // full concurrency, and light traffic proceeds at once.
            let target = self.target_batch();
            let window = self.effective_window();
            let deadline = Instant::now() + window;
            let grace = (window / 8).max(MIN_COALESCE_WINDOW);
            let mut last_join = Instant::now();
            let mut seen = st.inputs.len();
            while st.inputs.len() < target {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                if st.inputs.len() > seen {
                    seen = st.inputs.len();
                    last_join = now;
                } else if now >= last_join + grace {
                    break;
                }
                let wait = (deadline - now).min(last_join + grace - now);
                let _lease = tensor::pool::lend_core();
                let (guard, _) = self.joined.wait_timeout(st, wait);
                st = guard;
            }
            // Seal the round: later arrivals start the next epoch. Wake
            // any caller parked on a full round so it can join epoch+1.
            let batch = std::mem::take(&mut st.inputs);
            st.epoch += 1;
            self.joined.notify_all();
            drop(st);
            // Rise to any larger fill at once, decay by one per smaller
            // round: the mark tracks what concurrency actually delivers.
            let fill = batch.len() as u64;
            let hwm = self.fill_hwm.load(Ordering::Relaxed);
            self.fill_hwm
                .store(if fill >= hwm { fill } else { hwm - 1 }, Ordering::Relaxed);

            let followers = batch.len() - 1;
            // Contain a panicking backend so the round can be poisoned
            // for the parked followers before the panic propagates.
            let t0 = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let refs: Vec<&[f32]> = batch.iter().map(Vec::as_slice).collect();
                let mut out = vec![EvalOutput::default(); batch.len()];
                self.inner.evaluate_batch(&refs, &mut out);
                out
            }));
            if outcome.is_ok() {
                self.record_batch(t0.elapsed(), followers + 1);
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.samples
                    .fetch_add(followers as u64 + 1, Ordering::Relaxed);
            }

            let mut st = self.state.lock();
            match outcome {
                Ok(out) => {
                    let mut results = out.into_iter();
                    let mine = results.next().expect("leader owns slot 0");
                    if followers > 0 {
                        // Slot 0 stays None: the leader keeps its result.
                        let mut slots: Vec<Option<EvalOutput>> = Vec::with_capacity(followers + 1);
                        slots.push(None);
                        slots.extend(results.map(Some));
                        st.done.insert(
                            epoch,
                            RoundDone {
                                slots,
                                remaining: followers,
                                poison: None,
                            },
                        );
                        self.finished.notify_all();
                    }
                    drop(st);
                    (mine.priors, mine.value)
                }
                Err(panic) => {
                    if followers > 0 {
                        st.done.insert(
                            epoch,
                            RoundDone {
                                slots: Vec::new(),
                                remaining: followers,
                                poison: Some(SearchError::from_panic(panic.as_ref())),
                            },
                        );
                        self.finished.notify_all();
                    }
                    drop(st);
                    std::panic::resume_unwind(panic);
                }
            }
        } else {
            // Follower: park until the leader publishes this round,
            // lending the core to the pool for the duration — the
            // leader's forward pass is exactly what it's waiting on.
            loop {
                if let Some(round) = st.done.get_mut(&epoch) {
                    let mine = match round.poison.clone() {
                        Some(err) => Err(err),
                        None => Ok(round.slots[index].take().expect("result taken once")),
                    };
                    round.remaining -= 1;
                    if round.remaining == 0 {
                        st.done.remove(&epoch);
                    }
                    drop(st);
                    match mine {
                        Ok(o) => return (o.priors, o.value),
                        // Re-raise with the type intact: the serve
                        // supervisor downcasts this back to SearchError.
                        Err(err) => std::panic::panic_any(err),
                    }
                }
                let _lease = tensor::pool::lend_core();
                st = self.finished.wait(st);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{NnEvaluator, UniformEvaluator};
    use nn::{NetConfig, PolicyValueNet};

    #[test]
    fn single_caller_passes_through() {
        let inner: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::new(4, 3));
        let c = CoalescingEvaluator::with_window(inner, 4, Duration::from_micros(50));
        let (p, v) = c.evaluate(&[0.0; 4]);
        assert_eq!(p.len(), 3);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn concurrent_callers_share_forward_passes() {
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 4));
        let nn = Arc::new(NnEvaluator::new(Arc::clone(&net)));
        let probe = Arc::clone(&nn);
        let c = Arc::new(CoalescingEvaluator::with_window(
            nn,
            8,
            Duration::from_millis(20),
        ));
        let reference = NnEvaluator::new(net);
        std::thread::scope(|s| {
            for i in 0..8usize {
                let c = Arc::clone(&c);
                let reference = &reference;
                s.spawn(move || {
                    let input: Vec<f32> =
                        (0..36).map(|j| ((i * 17 + j) % 9) as f32 / 9.0).collect();
                    let (p, v) = c.evaluate(&input);
                    let o = reference.evaluate_one(&input);
                    for (a, b) in p.iter().zip(&o.priors) {
                        assert!((a - b).abs() < 1e-4, "coalesced result diverged");
                    }
                    assert!((v - o.value).abs() < 1e-4);
                });
            }
        });
        // 8 concurrent callers with a generous window: far fewer than 8
        // forwards must have run (typically 1-2). The reference instance
        // counts separately.
        let batched_forwards = probe.forward_calls();
        assert!(
            batched_forwards < 8,
            "no coalescing: {batched_forwards} forwards for 8 calls"
        );
    }

    #[test]
    fn finished_rounds_are_fully_reclaimed() {
        // Regression: the leader's slot used to be stored as Some and
        // never taken, leaking one round entry per multi-caller batch.
        let inner: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::new(4, 3));
        let c = Arc::new(CoalescingEvaluator::with_window(
            inner,
            4,
            Duration::from_millis(20),
        ));
        for _ in 0..10 {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        let (p, _) = c.evaluate(&[0.0; 4]);
                        assert_eq!(p.len(), 3);
                    });
                }
            });
        }
        assert_eq!(c.rounds_pending(), 0, "round entries must be reclaimed");
    }

    #[test]
    fn leader_panic_poisons_followers_instead_of_hanging() {
        /// Panics on every batch.
        struct Exploding;
        impl BatchEvaluator for Exploding {
            fn input_len(&self) -> usize {
                4
            }
            fn action_space(&self) -> usize {
                2
            }
            fn evaluate_batch(&self, _inputs: &[&[f32]], _out: &mut [EvalOutput]) {
                panic!("backend died");
            }
            fn preferred_batch(&self) -> usize {
                4
            }
        }
        let c = Arc::new(CoalescingEvaluator::with_window(
            Arc::new(Exploding),
            4,
            Duration::from_millis(50),
        ));
        // All four callers must terminate (by panicking), none may hang.
        let results: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            c.evaluate(&[0.0; 4])
                        }))
                        .is_err()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&panicked| panicked));
        assert_eq!(c.rounds_pending(), 0, "poisoned round must be reclaimed");
    }

    #[test]
    fn typed_leader_errors_reach_followers_typed() {
        /// Raises a typed SearchError on every batch, the way the serve
        /// layer's resilience wrapper does after exhausting retries.
        struct TypedFailure;
        impl BatchEvaluator for TypedFailure {
            fn input_len(&self) -> usize {
                4
            }
            fn action_space(&self) -> usize {
                2
            }
            fn evaluate_batch(&self, _inputs: &[&[f32]], _out: &mut [EvalOutput]) {
                std::panic::panic_any(SearchError::EvaluatorFailed {
                    reason: "device reset".into(),
                });
            }
            fn preferred_batch(&self) -> usize {
                4
            }
        }
        let c = Arc::new(CoalescingEvaluator::with_window(
            Arc::new(TypedFailure),
            4,
            Duration::from_millis(50),
        ));
        let errors: Vec<SearchError> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        let payload =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                c.evaluate(&[0.0; 4])
                            }))
                            .expect_err("every caller must observe the failure");
                        SearchError::from_panic(payload.as_ref())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for e in errors {
            assert_eq!(
                e,
                SearchError::EvaluatorFailed {
                    reason: "device reset".into()
                },
                "type must survive both leader and follower paths"
            );
        }
        assert_eq!(c.rounds_pending(), 0);
    }

    #[test]
    fn attached_tuner_sees_sealed_batches_and_caps_target() {
        let inner: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::new(4, 3));
        let tuner = Arc::new(BatchTuner::new(64, Duration::from_millis(1)));
        // Unseeded tuner wants its max (64); the coalescer's hard bound
        // (4) must still cap the per-round target.
        let c = Arc::new(
            CoalescingEvaluator::with_window(inner, 4, Duration::from_millis(20))
                .with_tuner(Arc::clone(&tuner)),
        );
        assert_eq!(c.target_batch(), 4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    c.evaluate(&[0.0; 4]);
                });
            }
        });
        assert!(
            !tuner.curve().is_empty(),
            "sealed rounds must be recorded into the tuner's curve"
        );
        // Once the curve says batch 2 is the knee, rounds aim for 2.
        let seeded = Arc::new(BatchTuner::new(8, Duration::from_millis(1)));
        seeded.record(1, Duration::from_micros(100));
        seeded.record(2, Duration::from_micros(110));
        seeded.record(4, Duration::from_micros(400));
        seeded.record(8, Duration::from_micros(900));
        let inner2: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::new(4, 3));
        let c2 = CoalescingEvaluator::with_window(inner2, 8, Duration::from_millis(20))
            .with_tuner(seeded);
        assert_eq!(c2.target_batch(), 2);
    }

    #[test]
    fn sequential_calls_never_deadlock() {
        let inner: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::new(4, 2));
        let c = CoalescingEvaluator::with_window(inner, 16, Duration::from_micros(100));
        for _ in 0..20 {
            let (p, _) = c.evaluate(&[0.0; 4]);
            assert_eq!(p.len(), 2);
        }
    }
}
