//! A persistent FIFO worker-thread pool.
//!
//! Both parallel schemes need long-lived worker threads fed through FIFO
//! channels (the paper's "communication pipes", Figure 2-a): the
//! local-tree scheme sends node-evaluation closures, the shared-tree
//! scheme sends whole-rollout tasks. A small dedicated pool (rather than a
//! work-stealing runtime) matches the paper's execution model: one task
//! queue, `N` identical workers, in-order dispatch.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size FIFO thread pool. Dropping the pool joins all workers.
///
/// Panic policy: a panicking job is contained with `catch_unwind` — the
/// worker thread survives and keeps serving the queue, and the panic is
/// counted in [`WorkerPool::panicked`]. This prevents one poisoned
/// evaluation from silently shrinking the pool and deadlocking a search
/// that waits for `N` in-flight results.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    executed: Arc<AtomicU64>,
    panicked: Arc<AtomicU64>,
    size: usize,
}

impl WorkerPool {
    /// Spawn `size` worker threads.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let executed = Arc::new(AtomicU64::new(0));
        let panicked = Arc::new(AtomicU64::new(0));
        let handles = (0..size)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                let executed = Arc::clone(&executed);
                let panicked = Arc::clone(&panicked);
                std::thread::Builder::new()
                    .name(format!("mcts-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            if outcome.is_err() {
                                panicked.fetch_add(1, Ordering::Relaxed);
                            }
                            executed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
            executed,
            panicked,
            size,
        }
    }

    /// Jobs that panicked (and were contained).
    pub fn panicked(&self) -> u64 {
        self.panicked.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Enqueue a job (FIFO; an idle worker picks it up).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("worker threads alive");
    }

    /// Jobs completed so far.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Run one closure on every logical "slot" by submitting `n` copies of
    /// the task and blocking until all complete. Used by the shared-tree
    /// scheme to launch `N` rollout loops and wait for the move to finish.
    pub fn run_wave<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let wg = crossbeam::sync::WaitGroup::new();
        for i in 0..n {
            let f = Arc::clone(&f);
            let wg = wg.clone();
            self.submit(move || {
                f(i);
                drop(wg);
            });
        }
        wg.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the queue, then join.
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_all_jobs() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let wg = crossbeam::sync::WaitGroup::new();
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            let w = wg.clone();
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
                drop(w);
            });
        }
        wg.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.executed(), 100);
    }

    #[test]
    fn run_wave_blocks_until_done() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        pool.run_wave(7, move |_| {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn wave_indices_are_distinct() {
        let pool = WorkerPool::new(2);
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        pool.run_wave(5, move |i| {
            s2.lock().push(i);
        });
        let mut v = seen.lock().clone();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = WorkerPool::new(2);
        pool.submit(|| std::thread::sleep(std::time::Duration::from_millis(10)));
        drop(pool); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_size_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = WorkerPool::new(1);
        let wg = crossbeam::sync::WaitGroup::new();
        {
            let w = wg.clone();
            pool.submit(move || {
                let _w = w;
                panic!("poisoned evaluation");
            });
        }
        // The single worker must survive the panic and run this job.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let w2 = wg.clone();
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
            drop(w2);
        });
        wg.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        // The executed/panicked counters are bumped *after* each job body
        // (and after the WaitGroup guard drops), so poll briefly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.executed() < 2 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.panicked(), 1);
        assert_eq!(pool.executed(), 2);
    }
}
