//! Root-parallel MCTS baseline (§2.2, Kato & Takeuchi).
//!
//! Each of the `N` workers builds its own *private* tree from the root
//! with `playouts / N` rollouts; the root statistics are aggregated at the
//! end. No synchronization during search — but workers revisit the same
//! states (the paper's stated drawback), so search quality per playout is
//! lower than tree-parallel schemes.

use crate::budget::{Budget, RootSlot, RunGate, StepOutcome};
use crate::config::MctsConfig;
use crate::evaluator::BatchEvaluator;
use crate::result::{SearchResult, SearchScheme, SearchStats};
use crate::tree::{SelectOutcome, Tree};
use games::Game;
use std::sync::Arc;
use std::time::Instant;

/// One worker's private tree and its share of the run budget.
struct WorkerSlot {
    tree: Tree,
    stats: SearchStats,
    done: u64,
    target: u64,
    encode_buf: Vec<f32>,
}

/// Resumable-run state of a root-parallel search.
struct RootParRun {
    slots: Vec<WorkerSlot>,
    gate: RunGate,
    action_space: usize,
}

/// Independent-trees root parallelization.
pub struct RootParallelSearch {
    cfg: MctsConfig,
    evaluator: Arc<dyn BatchEvaluator>,
    root: RootSlot,
    run: Option<RootParRun>,
}

impl RootParallelSearch {
    /// Create a root-parallel searcher with `cfg.workers` private trees.
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        cfg.validate();
        RootParallelSearch {
            cfg,
            evaluator,
            root: RootSlot::new(),
            run: None,
        }
    }
}

/// Run up to `grant` serial playouts on one private tree, stopping at
/// `deadline`.
fn run_slot<G: Game>(
    slot: &mut WorkerSlot,
    root: &G,
    evaluator: &dyn BatchEvaluator,
    grant: u64,
    deadline: Option<Instant>,
) {
    for _ in 0..grant {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return;
        }
        let mut game = root.clone();
        let t0 = Instant::now();
        let (leaf, outcome) = slot.tree.select(&mut game);
        slot.stats.select_ns += t0.elapsed().as_nanos() as u64;
        match outcome {
            SelectOutcome::TerminalBackedUp => {}
            SelectOutcome::NeedsEval => {
                let t1 = Instant::now();
                game.encode(&mut slot.encode_buf);
                let o = evaluator.evaluate_one(&slot.encode_buf);
                slot.stats.eval_ns += t1.elapsed().as_nanos() as u64;
                let t2 = Instant::now();
                slot.tree.expand_and_backup(leaf, &o.priors, o.value);
                slot.stats.backup_ns += t2.elapsed().as_nanos() as u64;
            }
            SelectOutcome::Busy => unreachable!("private tree found a pending leaf"),
        }
        slot.done += 1;
        slot.stats.playouts += 1;
    }
}

impl<G: Game> SearchScheme<G> for RootParallelSearch {
    fn begin(&mut self, root: &G, budget: Budget) {
        SearchScheme::<G>::cancel(self);
        let run_cfg = budget.apply_to(&self.cfg);
        let mut gate = RunGate::new(&self.cfg, &budget, root.status().is_terminal());
        let n = self.cfg.workers;
        // Same split as one-shot root parallelization always used: every
        // worker gets at least one playout, the remainder spreads over
        // the first workers, and the effective run target is the sum.
        let requested = gate.target() as usize;
        let per_worker = (requested / n).max(usize::from(requested > 0));
        let remainder = requested.saturating_sub(per_worker * n);
        let slots: Vec<WorkerSlot> = (0..n)
            .map(|i| WorkerSlot {
                tree: Tree::new(run_cfg),
                stats: SearchStats::default(),
                done: 0,
                target: (per_worker + usize::from(i < remainder)) as u64,
                encode_buf: vec![0.0; root.encoded_len()],
            })
            .collect();
        gate = RunGate::new(
            &MctsConfig {
                playouts: slots
                    .iter()
                    .map(|s| s.target as usize)
                    .sum::<usize>()
                    .max(1),
                ..self.cfg
            },
            &Budget {
                playouts: None,
                ..budget
            },
            root.status().is_terminal(),
        );
        self.root.store(root);
        self.run = Some(RootParRun {
            slots,
            gate,
            action_space: root.action_space(),
        });
    }

    fn step(&mut self, quota: usize) -> StepOutcome {
        let Some(mut run) = self.run.take() else {
            return StepOutcome::Done;
        };
        let step_start = Instant::now();
        if !run.gate.exhausted() {
            // Spread the quota over the slots that still owe playouts
            // (fair share each; the remainder goes to the first ones),
            // so progress is guaranteed even for tiny quotas.
            let unfinished = run.slots.iter().filter(|s| s.done < s.target).count();
            let per = quota / unfinished.max(1);
            let rem = quota % unfinished.max(1);
            let deadline = run.gate.deadline();
            let root = self.root.get::<G>();
            let evaluator = &self.evaluator;
            // Scoped threads, not a persistent pool: each worker needs
            // `&mut` into its slot across the slice, which a `'static`
            // pool closure cannot borrow. The spawn/join cost is µs per
            // slice against ms of playouts; root parallelization is a
            // baseline, not the serving hot path.
            std::thread::scope(|s| {
                let mut i = 0usize;
                for slot in run.slots.iter_mut() {
                    if slot.done >= slot.target {
                        continue;
                    }
                    let want = (per + usize::from(i < rem)) as u64;
                    i += 1;
                    let grant = want.min(slot.target - slot.done);
                    if grant == 0 {
                        continue;
                    }
                    s.spawn(move || {
                        run_slot(slot, root, evaluator.as_ref(), grant, deadline);
                    });
                }
            });
            run.gate.done = run.slots.iter().map(|s| s.done).sum();
        }
        run.gate.note_step(step_start);
        let finished = run.gate.out_of_time() || run.slots.iter().all(|s| s.done >= s.target);
        let outcome = if finished {
            #[cfg(feature = "invariants")]
            for slot in &run.slots {
                slot.tree.check_invariants();
            }
            StepOutcome::Done
        } else {
            StepOutcome::Running
        };
        self.run = Some(run);
        outcome
    }

    fn partial_result(&self) -> SearchResult {
        let Some(run) = &self.run else {
            return SearchResult::default();
        };
        // Aggregate root statistics across the private trees.
        let a = run.action_space;
        let mut visits = vec![0u32; a];
        let mut stats = SearchStats::default();
        let mut value_acc = 0.0f64;
        let mut slot_visits = Vec::new();
        let mut slot_probs = Vec::new();
        for slot in &run.slots {
            let value = slot
                .tree
                .action_prior_into(a, &mut slot_visits, &mut slot_probs);
            for (tot, &v) in visits.iter_mut().zip(&slot_visits) {
                *tot += v;
            }
            value_acc += value as f64;
            stats.playouts += slot.stats.playouts;
            stats.select_ns += slot.stats.select_ns;
            stats.backup_ns += slot.stats.backup_ns;
            stats.eval_ns += slot.stats.eval_ns;
            stats.collisions += slot.stats.collisions;
            stats.nodes += slot.tree.len() as u64;
            stats.reclaimed += slot.tree.stats().reclaimed_total;
        }
        let total: u32 = visits.iter().sum();
        let probs = if total == 0 {
            vec![0.0; a]
        } else {
            visits.iter().map(|&v| v as f32 / total as f32).collect()
        };
        stats.move_ns = run.gate.active_ns;
        stats.seq = run.gate.seq();
        SearchResult {
            probs,
            visits,
            value: (value_acc / run.slots.len().max(1) as f64) as f32,
            stats,
        }
    }

    fn cancel(&mut self) {
        if let Some(run) = self.run.take() {
            #[cfg(feature = "invariants")]
            for slot in &run.slots {
                slot.tree.check_invariants();
            }
            let _ = run;
        }
    }

    fn name(&self) -> &'static str {
        "root-parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;
    use games::tictactoe::TicTacToe;
    use games::Game;

    fn cfg(playouts: usize, workers: usize) -> MctsConfig {
        MctsConfig {
            playouts,
            workers,
            ..Default::default()
        }
    }

    #[test]
    fn total_playouts_preserved() {
        let mut s = RootParallelSearch::new(
            cfg(100, 3),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 100);
    }

    #[test]
    fn finds_immediate_win() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = RootParallelSearch::new(
            cfg(400, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2);
    }

    #[test]
    fn aggregated_visits_sum_correctly() {
        let mut s = RootParallelSearch::new(
            cfg(120, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        // Each of the 4 workers runs 30 playouts → 29 root-child visits.
        assert_eq!(r.visits.iter().sum::<u32>(), 4 * 29);
    }

    #[test]
    fn more_workers_than_playouts() {
        let mut s = RootParallelSearch::new(
            cfg(2, 8),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert!(r.stats.playouts >= 2);
    }

    #[test]
    fn terminal_root_returns_empty() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4, 2] {
            g.apply(a);
        }
        let mut s = RootParallelSearch::new(
            cfg(10, 2),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.visits.iter().sum::<u32>(), 0);
    }
}
