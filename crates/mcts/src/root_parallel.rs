//! Root-parallel MCTS baseline (§2.2, Kato & Takeuchi).
//!
//! Each of the `N` workers builds its own *private* tree from the root
//! with `playouts / N` rollouts; the root statistics are aggregated at the
//! end. No synchronization during search — but workers revisit the same
//! states (the paper's stated drawback), so search quality per playout is
//! lower than tree-parallel schemes.

use crate::config::MctsConfig;
use crate::evaluator::BatchEvaluator;
use crate::local::empty_result;
use crate::result::{SearchResult, SearchScheme, SearchStats};
use crate::serial::SerialSearch;
use games::Game;
use std::sync::Arc;
use std::time::Instant;

/// Independent-trees root parallelization.
pub struct RootParallelSearch {
    cfg: MctsConfig,
    evaluator: Arc<dyn BatchEvaluator>,
}

impl RootParallelSearch {
    /// Create a root-parallel searcher with `cfg.workers` private trees.
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        cfg.validate();
        RootParallelSearch { cfg, evaluator }
    }
}

impl<G: Game> SearchScheme<G> for RootParallelSearch {
    fn search(&mut self, root: &G) -> SearchResult {
        if root.status().is_terminal() {
            return empty_result(root.action_space());
        }
        let move_start = Instant::now();
        let n = self.cfg.workers;
        let per_worker = (self.cfg.playouts / n).max(1);
        // Distribute the remainder so the total playout budget is exact.
        let remainder = self.cfg.playouts.saturating_sub(per_worker * n);

        let results: Vec<SearchResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let budget = per_worker + usize::from(i < remainder);
                    let cfg = MctsConfig {
                        playouts: budget,
                        workers: 1,
                        ..self.cfg
                    };
                    let evaluator = Arc::clone(&self.evaluator);
                    let root = root.clone();
                    s.spawn(move || {
                        let mut serial = SerialSearch::new(cfg, evaluator);
                        SearchScheme::<G>::search(&mut serial, &root)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });

        // Aggregate root statistics across the private trees.
        let a = root.action_space();
        let mut visits = vec![0u32; a];
        let mut stats = SearchStats::default();
        let mut value_acc = 0.0f64;
        for r in &results {
            for (tot, &v) in visits.iter_mut().zip(&r.visits) {
                *tot += v;
            }
            value_acc += r.value as f64;
            stats.playouts += r.stats.playouts;
            stats.select_ns += r.stats.select_ns;
            stats.backup_ns += r.stats.backup_ns;
            stats.eval_ns += r.stats.eval_ns;
            stats.collisions += r.stats.collisions;
            stats.nodes += r.stats.nodes;
            stats.reclaimed += r.stats.reclaimed;
        }
        let total: u32 = visits.iter().sum();
        let probs = if total == 0 {
            vec![0.0; a]
        } else {
            visits.iter().map(|&v| v as f32 / total as f32).collect()
        };
        stats.move_ns = move_start.elapsed().as_nanos() as u64;
        SearchResult {
            probs,
            visits,
            value: (value_acc / results.len() as f64) as f32,
            stats,
        }
    }

    fn name(&self) -> &'static str {
        "root-parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;
    use games::tictactoe::TicTacToe;
    use games::Game;

    fn cfg(playouts: usize, workers: usize) -> MctsConfig {
        MctsConfig {
            playouts,
            workers,
            ..Default::default()
        }
    }

    #[test]
    fn total_playouts_preserved() {
        let mut s = RootParallelSearch::new(
            cfg(100, 3),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 100);
    }

    #[test]
    fn finds_immediate_win() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = RootParallelSearch::new(
            cfg(400, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2);
    }

    #[test]
    fn aggregated_visits_sum_correctly() {
        let mut s = RootParallelSearch::new(
            cfg(120, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        // Each of the 4 workers runs 30 playouts → 29 root-child visits.
        assert_eq!(r.visits.iter().sum::<u32>(), 4 * 29);
    }

    #[test]
    fn more_workers_than_playouts() {
        let mut s = RootParallelSearch::new(
            cfg(2, 8),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert!(r.stats.playouts >= 2);
    }

    #[test]
    fn terminal_root_returns_empty() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4, 2] {
            g.apply(a);
        }
        let mut s = RootParallelSearch::new(
            cfg(10, 2),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.visits.iter().sum::<u32>(), 0);
    }
}
