//! Serial DNN-MCTS baseline: one thread interleaves in-tree operations and
//! node evaluation. This is the 1-worker reference whose profile motivates
//! the paper ("tree-based search accounts for more than 85% of the total
//! runtime", §1) and the algorithmic ground truth the parallel schemes are
//! validated against.

use crate::budget::{Budget, RootSlot, RunGate, StepOutcome};
use crate::config::MctsConfig;
use crate::evaluator::BatchEvaluator;
use crate::result::{SearchResult, SearchScheme, SearchStats};
use crate::tree::{SelectOutcome, Tree};
use games::Game;
use std::sync::Arc;
use std::time::Instant;

/// Resumable-run state of a serial search.
struct SerialRun {
    tree: Tree,
    stats: SearchStats,
    gate: RunGate,
    action_space: usize,
}

/// Single-threaded search driver.
pub struct SerialSearch {
    cfg: MctsConfig,
    evaluator: Arc<dyn BatchEvaluator>,
    encode_buf: Vec<f32>,
    root: RootSlot,
    run: Option<SerialRun>,
}

impl SerialSearch {
    /// Create a serial searcher. `cfg.workers` is ignored (always 1).
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        cfg.validate();
        SerialSearch {
            cfg,
            evaluator,
            encode_buf: Vec::new(),
            root: RootSlot::new(),
            run: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MctsConfig {
        &self.cfg
    }
}

impl<G: Game> SearchScheme<G> for SerialSearch {
    fn begin(&mut self, root: &G, budget: Budget) {
        SearchScheme::<G>::cancel(self);
        let run_cfg = budget.apply_to(&self.cfg);
        self.root.store(root);
        self.encode_buf.resize(root.encoded_len(), 0.0);
        self.run = Some(SerialRun {
            tree: Tree::new(run_cfg),
            stats: SearchStats::default(),
            gate: RunGate::new(&self.cfg, &budget, root.status().is_terminal()),
            action_space: root.action_space(),
        });
    }

    fn step(&mut self, quota: usize) -> StepOutcome {
        let Some(run) = &mut self.run else {
            return StepOutcome::Done;
        };
        let step_start = Instant::now();
        let root = self.root.get::<G>();
        let mut used = 0usize;
        while used < quota && !run.gate.exhausted() {
            let mut game = root.clone();
            let t0 = Instant::now();
            let (leaf, outcome) = run.tree.select(&mut game);
            run.stats.select_ns += t0.elapsed().as_nanos() as u64;
            match outcome {
                SelectOutcome::TerminalBackedUp => {}
                SelectOutcome::NeedsEval => {
                    let key = game.hash();
                    if let Some(src) = run.tree.tt_lookup(key) {
                        // Same position reached by another move order:
                        // reuse its priors/value, skip the evaluator.
                        let t1 = Instant::now();
                        run.tree.expand_from_transposition(leaf, src);
                        run.stats.tt_hits += 1;
                        run.stats.backup_ns += t1.elapsed().as_nanos() as u64;
                    } else {
                        let t1 = Instant::now();
                        game.encode(&mut self.encode_buf);
                        let o = self.evaluator.evaluate_one_keyed(key, &self.encode_buf);
                        run.stats.eval_ns += t1.elapsed().as_nanos() as u64;
                        let t2 = Instant::now();
                        run.tree.expand_and_backup(leaf, &o.priors, o.value);
                        run.tree.tt_record(key, leaf);
                        run.stats.backup_ns += t2.elapsed().as_nanos() as u64;
                    }
                }
                SelectOutcome::Busy => {
                    // Impossible serially: nothing else holds a claim.
                    unreachable!("serial search found a pending leaf");
                }
            }
            used += 1;
            run.gate.done += 1;
            run.stats.playouts += 1;
        }
        run.gate.note_step(step_start);
        if run.gate.exhausted() {
            debug_assert_eq!(run.tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            run.tree.check_invariants();
            StepOutcome::Done
        } else {
            StepOutcome::Running
        }
    }

    fn partial_result(&self) -> SearchResult {
        let Some(run) = &self.run else {
            return SearchResult::default();
        };
        let (visits, probs, value) = run.tree.action_prior(run.action_space);
        let mut stats = run.stats;
        stats.move_ns = run.gate.active_ns;
        stats.seq = run.gate.seq();
        stats.nodes = run.tree.len() as u64;
        SearchResult {
            probs,
            visits,
            value,
            stats,
        }
    }

    fn cancel(&mut self) {
        if let Some(run) = self.run.take() {
            debug_assert_eq!(run.tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            run.tree.check_invariants();
        }
    }

    fn name(&self) -> &'static str {
        "serial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;
    use games::tictactoe::TicTacToe;
    use games::{Game, Player, Status};

    fn searcher(playouts: usize) -> SerialSearch {
        let cfg = MctsConfig {
            playouts,
            ..Default::default()
        };
        SerialSearch::new(cfg, Arc::new(UniformEvaluator::for_game(&TicTacToe::new())))
    }

    #[test]
    fn playout_budget_respected() {
        let mut s = searcher(128);
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 128);
        // Root children visit counts: every playout after the first goes
        // through exactly one root child.
        assert_eq!(r.visits.iter().sum::<u32>(), 127);
    }

    #[test]
    fn finds_immediate_win() {
        // X: 0,1 — O: 3,4. X to move; 2 completes the top row.
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = searcher(400);
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2, "visits {:?}", r.visits);
        assert!(r.value > 0.5);
    }

    #[test]
    fn blocks_immediate_loss() {
        // X: 0,1 — O: 4. O to move; must block at 2.
        let mut g = TicTacToe::new();
        for a in [0u16, 4, 1] {
            g.apply(a);
        }
        let mut s = searcher(800);
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2, "visits {:?}", r.visits);
    }

    #[test]
    fn probabilities_match_visits() {
        let mut s = searcher(64);
        let r = s.search(&TicTacToe::new());
        let total: u32 = r.visits.iter().sum();
        for (p, &v) in r.probs.iter().zip(&r.visits) {
            assert!((p - v as f32 / total as f32).abs() < 1e-6);
        }
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let mut a = searcher(100);
        let mut b = searcher(100);
        let g = TicTacToe::new();
        let ra = a.search(&g);
        let rb = b.search(&g);
        assert_eq!(ra.visits, rb.visits);
    }

    #[test]
    fn search_from_mid_game_state() {
        let mut g = TicTacToe::new();
        g.apply(4);
        let mut s = searcher(50);
        let r = s.search(&g);
        assert_eq!(r.visits[4], 0, "occupied cell never visited");
        assert_eq!(r.stats.playouts, 50);
    }

    #[test]
    fn stats_are_populated() {
        let mut s = searcher(64);
        let r = s.search(&TicTacToe::new());
        assert!(r.stats.move_ns > 0);
        assert!(r.stats.select_ns > 0);
        assert!(r.stats.nodes > 1);
    }

    #[test]
    fn time_budget_stops_search_early() {
        use crate::evaluator::Evaluator;
        /// Uniform priors after a fixed sleep, to make playouts slow.
        struct SlowEval;
        impl Evaluator for SlowEval {
            fn evaluate(&self, _x: &[f32]) -> (Vec<f32>, f32) {
                std::thread::sleep(std::time::Duration::from_millis(2));
                (vec![1.0 / 9.0; 9], 0.0)
            }
            fn action_space(&self) -> usize {
                9
            }
            fn input_len(&self) -> usize {
                4 * 9
            }
        }
        let cfg = MctsConfig {
            playouts: 10_000,
            time_budget_ms: Some(20),
            ..Default::default()
        };
        let mut s = SerialSearch::new(cfg, Arc::new(SlowEval));
        let t0 = std::time::Instant::now();
        let r = s.search(&TicTacToe::new());
        assert!(
            r.stats.playouts < 10_000,
            "budget must cut the search short"
        );
        assert!(r.stats.playouts > 0, "at least one playout completes");
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn no_budget_runs_all_playouts() {
        let mut s = searcher(32);
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 32);
    }

    #[test]
    fn transpositions_skip_evaluations() {
        use crate::evaluator::DelayedEvaluator;
        use std::time::Duration;
        let mk = |tt: bool| {
            let eval = Arc::new(DelayedEvaluator::new(
                UniformEvaluator::for_game(&TicTacToe::new()),
                Duration::ZERO,
            ));
            let cfg = MctsConfig {
                playouts: 300,
                transpositions: tt,
                ..Default::default()
            };
            (SerialSearch::new(cfg, Arc::clone(&eval) as _), eval)
        };
        let (mut plain, e_plain) = mk(false);
        let r_plain = plain.search(&TicTacToe::new());
        assert_eq!(r_plain.stats.tt_hits, 0, "disabled index never hits");
        let (mut with_tt, e_tt) = mk(true);
        let r_tt = with_tt.search(&TicTacToe::new());
        assert!(r_tt.stats.tt_hits > 0, "tictactoe transposes by depth 3");
        assert!(
            e_tt.calls() < e_plain.calls(),
            "reused expansions must save evaluator calls: {} vs {}",
            e_tt.calls(),
            e_plain.calls()
        );
        assert_eq!(r_tt.stats.playouts, 300, "same compute budget");
    }

    #[test]
    fn transpositions_preserve_forced_win() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let cfg = MctsConfig {
            playouts: 400,
            transpositions: true,
            ..Default::default()
        };
        let mut s = SerialSearch::new(cfg, Arc::new(UniformEvaluator::for_game(&g)));
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2, "visits {:?}", r.visits);
        assert!(r.value > 0.5);
    }

    #[test]
    fn self_play_with_serial_search_terminates() {
        let mut g = TicTacToe::new();
        let mut s = searcher(64);
        let mut moves = 0;
        while g.status() == Status::Ongoing {
            let r = s.search(&g);
            g.apply(r.best_action());
            moves += 1;
            assert!(moves <= 9);
        }
        // Perfect-ish play from uniform priors usually draws; at minimum
        // the game must end legally.
        assert!(g.status().is_terminal());
        let _ = Player::Black;
    }
}
