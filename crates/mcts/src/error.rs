//! Typed failure surface of a search run.
//!
//! Search schemes themselves stay infallible — the paper's hot loops
//! have no error plumbing, and adding `Result` to every `step()` would
//! tax the fault-free path. Instead, failures travel as **typed panic
//! payloads**: fault-aware layers (the serve crate's resilient
//! evaluator wrapper, the coalescing leader) raise a [`SearchError`]
//! via [`std::panic::panic_any`], and the serve supervisor catches the
//! unwind at the worker-slice boundary and recovers the typed error
//! with [`SearchError::from_panic`]. Plain `panic!`s from game or
//! evaluator code classify as [`SearchError::Panicked`] with the
//! stringified payload.
//!
//! [`EvalError`] is the `Result`-typed error for
//! [`crate::BatchEvaluator::try_evaluate_batch`]: backends that can
//! fail return it instead of panicking, and mark failures transient
//! (worth retrying) or permanent.

use std::any::Any;
use std::fmt;
use std::time::Duration;

/// Terminal failure of a search session, as observed on its ticket.
///
/// This is the payload of the serve layer's `TicketStatus::Failed`
/// terminal state; every variant names the containment boundary that
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The session's scheme, game, or evaluator panicked mid-slice. The
    /// worker caught the unwind; `payload` is the stringified panic
    /// message (or a placeholder for non-string payloads).
    Panicked {
        /// Stringified panic payload.
        payload: String,
    },
    /// The evaluator backend reported typed failures and the retry
    /// budget was exhausted without a successful call.
    EvaluatorFailed {
        /// The last failure's reason string.
        reason: String,
    },
    /// The run overshot its deadline plus the supervision grace period
    /// and was reaped by the watchdog (the scheme was stuck and could
    /// not be cancelled cooperatively).
    DeadlineExceeded,
    /// The run was cancelled while in a failure path (e.g. mid-retry);
    /// ordinary user cancellation still reports `TicketStatus::Cancelled`.
    Cancelled,
    /// The backend's circuit breaker is open: persistent failures
    /// tripped it and the cooldown has not elapsed.
    BackendUnavailable {
        /// Time until the breaker next admits a probe, if known.
        retry_after: Option<Duration>,
    },
}

impl SearchError {
    /// Recover a typed error from a caught panic payload.
    ///
    /// Fault-aware layers raise `SearchError` values through
    /// [`std::panic::panic_any`]; anything else (a plain `panic!` in
    /// game/scheme/evaluator code) classifies as [`SearchError::Panicked`]
    /// with its message stringified.
    pub fn from_panic(payload: &(dyn Any + Send)) -> SearchError {
        if let Some(e) = payload.downcast_ref::<SearchError>() {
            return e.clone();
        }
        if let Some(s) = payload.downcast_ref::<String>() {
            return SearchError::Panicked { payload: s.clone() };
        }
        if let Some(s) = payload.downcast_ref::<&'static str>() {
            return SearchError::Panicked {
                payload: (*s).to_string(),
            };
        }
        SearchError::Panicked {
            payload: "opaque panic payload".to_string(),
        }
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::Panicked { payload } => write!(f, "session panicked: {payload}"),
            SearchError::EvaluatorFailed { reason } => {
                write!(f, "evaluator failed after retries: {reason}")
            }
            SearchError::DeadlineExceeded => {
                write!(f, "deadline exceeded (reaped by watchdog)")
            }
            SearchError::Cancelled => write!(f, "cancelled"),
            SearchError::BackendUnavailable { retry_after } => match retry_after {
                Some(d) => write!(f, "backend unavailable, retry in {:?}", d),
                None => write!(f, "backend unavailable"),
            },
        }
    }
}

impl std::error::Error for SearchError {}

/// `Result`-typed failure of one evaluator batch call.
///
/// Returned by [`crate::BatchEvaluator::try_evaluate_batch`]. The
/// `transient` flag steers the serve layer's retry policy: transient
/// failures are retried with capped exponential backoff, permanent
/// ones fail the session immediately (both feed the backend's circuit
/// breaker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable failure reason.
    pub reason: String,
    /// Whether retrying the same call may succeed.
    pub transient: bool,
}

impl EvalError {
    /// A failure worth retrying (timeouts, transport hiccups).
    pub fn transient(reason: impl Into<String>) -> Self {
        EvalError {
            reason: reason.into(),
            transient: true,
        }
    }

    /// A failure that will not resolve by retrying (bad model, shape
    /// mismatch, backend gone).
    pub fn permanent(reason: impl Into<String>) -> Self {
        EvalError {
            reason: reason.into(),
            transient: false,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.transient {
            "transient"
        } else {
            "permanent"
        };
        write!(f, "{kind} evaluation failure: {}", self.reason)
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn typed_payloads_survive_the_unwind() {
        let err = SearchError::EvaluatorFailed {
            reason: "device reset".into(),
        };
        let caught = catch_unwind(AssertUnwindSafe(|| {
            std::panic::panic_any(err.clone());
        }))
        .unwrap_err();
        assert_eq!(SearchError::from_panic(caught.as_ref()), err);
    }

    #[test]
    fn plain_panics_classify_as_panicked() {
        let caught = catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(
            SearchError::from_panic(caught.as_ref()),
            SearchError::Panicked {
                payload: "boom 7".into()
            }
        );
        let caught = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert!(matches!(
            SearchError::from_panic(caught.as_ref()),
            SearchError::Panicked { .. }
        ));
    }

    #[test]
    fn eval_error_constructors_set_transience() {
        assert!(EvalError::transient("t").transient);
        assert!(!EvalError::permanent("p").transient);
        let shown = EvalError::transient("queue full").to_string();
        assert!(shown.contains("transient") && shown.contains("queue full"));
    }
}
