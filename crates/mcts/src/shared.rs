//! The shared-tree parallel scheme (§3.1.1, Algorithm 2).
//!
//! `N` worker threads execute whole playouts ("threadsafe_rollout")
//! against a single tree in shared memory. Edge statistics are protected
//! either by per-node mutexes (the paper's design, [`LockKind::Mutex`]) or
//! by lock-free atomic read-modify-write updates ([`LockKind::Atomic`],
//! the Mirsoleimani-style ablation). Virtual loss applied during Node
//! Selection steers concurrent workers onto different paths and is
//! released during BackUp.
//!
//! The tree is a **pre-allocated flat arena** of nodes (the paper stores
//! the tree as "a dynamically allocated array of node structs" in DDR).
//! Expansion bump-allocates a contiguous block of children with a single
//! atomic `fetch_add`, then publishes it with a release store on the
//! parent's phase flag; readers acquire-load the flag before touching
//! children. All node fields are atomics, so no `&mut` access is ever
//! needed and the arena can be shared as a plain `&[SharedNode]`.

use crate::coalesce::CoalescingEvaluator;
use crate::config::{LockKind, MctsConfig, VirtualLoss};
use crate::evaluator::{BatchEvaluator, Evaluator, SingleSample};
use crate::local::empty_result;
use crate::pool::WorkerPool;
use crate::result::{SearchResult, SearchScheme, SearchStats};
use games::Game;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Node lifecycle states (the `phase` flag).
const UNEXPANDED: u8 = 0;
const PENDING: u8 = 1;
const EXPANDED: u8 = 2;
const TERMINAL: u8 = 3;

/// Fixed-point scale for the atomically-accumulated value sum `W`.
const W_SCALE: f64 = 1_048_576.0; // 2^20: exact for small sums, no drift

/// Sentinel index.
const NIL: u32 = u32::MAX;

/// One node of the concurrent tree. All fields are interiorly mutable so
/// the arena is shared immutably across worker threads.
pub struct SharedNode {
    parent: AtomicU32,
    action: AtomicU32,
    prior_bits: AtomicU32,
    /// Completed visits `N(s,a)`.
    n: AtomicU32,
    /// Value sum `W(s,a)` in fixed-point (units of 1/W_SCALE).
    w_fixed: AtomicI64,
    /// In-flight playouts (virtual-loss / unobserved count).
    vl: AtomicU32,
    first_child: AtomicU32,
    child_count: AtomicU32,
    phase: AtomicU8,
    terminal_bits: AtomicU32,
    /// Per-node lock used in [`LockKind::Mutex`] mode.
    lock: Mutex<()>,
}

impl Default for SharedNode {
    fn default() -> Self {
        SharedNode {
            parent: AtomicU32::new(NIL),
            action: AtomicU32::new(0),
            prior_bits: AtomicU32::new(0),
            n: AtomicU32::new(0),
            w_fixed: AtomicI64::new(0),
            vl: AtomicU32::new(0),
            first_child: AtomicU32::new(NIL),
            child_count: AtomicU32::new(0),
            phase: AtomicU8::new(UNEXPANDED),
            terminal_bits: AtomicU32::new(0),
            lock: Mutex::new(()),
        }
    }
}

impl SharedNode {
    #[inline]
    fn prior(&self) -> f32 {
        f32::from_bits(self.prior_bits.load(Ordering::Relaxed))
    }

    #[inline]
    fn w(&self) -> f64 {
        self.w_fixed.load(Ordering::Relaxed) as f64 / W_SCALE
    }

    /// Visits including in-flight playouts.
    #[inline]
    fn n_eff(&self) -> u32 {
        self.n.load(Ordering::Relaxed) + self.vl.load(Ordering::Relaxed)
    }

    /// Virtual-loss-adjusted mean value.
    fn q(&self, vl_kind: VirtualLoss, q_init: f32) -> f32 {
        match vl_kind {
            VirtualLoss::Constant(c) => {
                let n_eff = self.n_eff();
                if n_eff == 0 {
                    q_init
                } else {
                    let vl = self.vl.load(Ordering::Relaxed) as f64;
                    ((self.w() - c as f64 * vl) / n_eff as f64) as f32
                }
            }
            VirtualLoss::VisitTracking => {
                let n = self.n.load(Ordering::Relaxed);
                if n == 0 {
                    q_init
                } else {
                    (self.w() / n as f64) as f32
                }
            }
        }
    }
}

/// The concurrent arena tree shared by all rollout workers for one move.
pub struct SharedTree {
    nodes: Box<[SharedNode]>,
    next: AtomicUsize,
    cfg: MctsConfig,
    /// Collisions: playout attempts aborted on an in-flight leaf.
    collisions: AtomicU64,
    /// Per-tree nonce mixed into the root-noise seed (one tree per move).
    noise_nonce: u64,
}

impl SharedTree {
    /// Allocate an arena able to hold one move's worth of expansion.
    pub fn new(cfg: MctsConfig, action_space: usize) -> Self {
        let cap = cfg.arena_capacity(action_space);
        let mut v = Vec::with_capacity(cap);
        v.resize_with(cap, SharedNode::default);
        let tree = SharedTree {
            nodes: v.into_boxed_slice(),
            next: AtomicUsize::new(1), // slot 0 = root
            cfg,
            collisions: AtomicU64::new(0),
            noise_nonce: crate::noise::next_nonce(),
        };
        tree.nodes[0]
            .prior_bits
            .store(1.0f32.to_bits(), Ordering::Relaxed);
        tree
    }

    /// Number of allocated nodes.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.nodes.len())
    }

    /// True if nothing beyond the root has been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Node accessor (for tests/inspection).
    pub fn node(&self, id: u32) -> &SharedNode {
        &self.nodes[id as usize]
    }

    fn alloc_block(&self, count: usize) -> u32 {
        let start = self.next.fetch_add(count, Ordering::Relaxed);
        assert!(
            start + count <= self.nodes.len(),
            "shared-tree arena exhausted ({} nodes); raise MctsConfig::max_nodes",
            self.nodes.len()
        );
        start as u32
    }

    /// One complete playout (paper's `threadsafe_rollout`). Returns `true`
    /// if a playout was completed, `false` on a collision (the attempt was
    /// aborted and all virtual loss reverted).
    pub fn rollout<G: Game>(
        &self,
        root_game: &G,
        evaluator: &dyn Evaluator,
        encode_buf: &mut Vec<f32>,
        eval_ns: &AtomicU64,
    ) -> bool {
        let mut game = root_game.clone();
        let mut cur: u32 = 0;
        loop {
            match self.nodes[cur as usize].phase.load(Ordering::Acquire) {
                EXPANDED => {
                    let best = self.select_child(cur);
                    self.apply_vl(best);
                    game.apply(self.nodes[best as usize].action.load(Ordering::Relaxed) as u16);
                    cur = best;
                    let status = game.status();
                    if status.is_terminal() {
                        let v = status.reward_for(game.to_move());
                        self.mark_terminal(cur, v);
                        // fall through: next loop iteration sees TERMINAL
                    }
                }
                TERMINAL => {
                    let v = f32::from_bits(
                        self.nodes[cur as usize]
                            .terminal_bits
                            .load(Ordering::Relaxed),
                    );
                    self.backup(cur, v);
                    return true;
                }
                PENDING => {
                    // Another worker owns this leaf's evaluation: abort.
                    self.revert_path(cur);
                    self.collisions.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                UNEXPANDED => {
                    if self.nodes[cur as usize]
                        .phase
                        .compare_exchange(UNEXPANDED, PENDING, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue; // lost the race; re-read the phase
                    }
                    // We own the evaluation of this leaf.
                    encode_buf.resize(game.encoded_len(), 0.0);
                    game.encode(encode_buf);
                    let t = Instant::now();
                    let (priors, value) = evaluator.evaluate(encode_buf);
                    eval_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    self.expand(cur, &game, &priors);
                    self.backup(cur, value);
                    return true;
                }
                other => unreachable!("invalid node phase {other}"),
            }
        }
    }

    /// UCT argmax over the children of an expanded node (Eq. 1), reading
    /// possibly-stale statistics (inherent to tree-parallel MCTS).
    fn select_child(&self, parent: u32) -> u32 {
        let p = &self.nodes[parent as usize];
        let first = p.first_child.load(Ordering::Relaxed);
        let count = p.child_count.load(Ordering::Relaxed);
        debug_assert!(count > 0, "select on childless node");
        let children = first..first + count;
        let sum_n: u32 = children
            .clone()
            .map(|c| self.nodes[c as usize].n_eff())
            .sum();
        let sqrt_sum = (sum_n as f32).sqrt();
        let mut best = first;
        let mut best_score = f32::NEG_INFINITY;
        for c in children {
            let node = &self.nodes[c as usize];
            let q = node.q(self.cfg.virtual_loss, self.cfg.q_init);
            let u = q + self.cfg.c_puct * node.prior() * sqrt_sum / (1.0 + node.n_eff() as f32);
            if u > best_score {
                best_score = u;
                best = c;
            }
        }
        best
    }

    /// Apply one unit of virtual loss to a traversed edge, honoring the
    /// configured locking discipline (Algorithm 2 lines 13-15).
    fn apply_vl(&self, id: u32) {
        let node = &self.nodes[id as usize];
        match self.cfg.lock_kind {
            LockKind::Mutex => {
                let _g = node.lock.lock();
                node.vl.fetch_add(1, Ordering::Relaxed);
            }
            LockKind::Atomic => {
                node.vl.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// First-discovery terminal marking (idempotent).
    fn mark_terminal(&self, id: u32, value: f32) {
        let node = &self.nodes[id as usize];
        node.terminal_bits.store(value.to_bits(), Ordering::Relaxed);
        // 0→3 CAS; if another thread already marked it, the stored value is
        // identical (terminal values are state-deterministic).
        let _ =
            node.phase
                .compare_exchange(UNEXPANDED, TERMINAL, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Create children for a pending leaf and publish them.
    fn expand<G: Game>(&self, leaf: u32, game: &G, priors: &[f32]) {
        let mut legal = Vec::new();
        game.legal_actions_into(&mut legal);
        debug_assert!(!legal.is_empty(), "expanding a state with no moves");

        let mut masked = crate::tree::mask_and_normalize(priors, &legal);
        // AlphaZero self-play: Dirichlet noise on the root priors. Only
        // one worker ever expands the root (the CAS winner), so this is
        // race-free.
        if leaf == 0 {
            if let Some(noise) = self.cfg.root_noise {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    noise.seed ^ self.noise_nonce.rotate_left(17),
                );
                crate::noise::mix_noise(&mut rng, &noise, &mut masked);
            }
        }

        let first = self.alloc_block(legal.len());
        for (i, (&a, &p)) in legal.iter().zip(&masked).enumerate() {
            let child = &self.nodes[first as usize + i];
            child.parent.store(leaf, Ordering::Relaxed);
            child.action.store(a as u32, Ordering::Relaxed);
            child.prior_bits.store(p.to_bits(), Ordering::Relaxed);
        }
        let node = &self.nodes[leaf as usize];
        node.first_child.store(first, Ordering::Relaxed);
        node.child_count
            .store(legal.len() as u32, Ordering::Relaxed);
        node.phase.store(EXPANDED, Ordering::Release);
    }

    /// BackUp (Algorithm 2 lines 18-20): propagate `value` (leaf player's
    /// perspective) to the root, releasing virtual loss.
    fn backup(&self, leaf: u32, value: f32) {
        let mut cur = leaf;
        let mut signed = -(value as f64); // leaf W is the mover's view
        loop {
            let node = &self.nodes[cur as usize];
            let parent = node.parent.load(Ordering::Relaxed);
            match self.cfg.lock_kind {
                LockKind::Mutex => {
                    let _g = node.lock.lock();
                    node.n.fetch_add(1, Ordering::Relaxed);
                    node.w_fixed
                        .fetch_add((signed * W_SCALE) as i64, Ordering::Relaxed);
                    if parent != NIL {
                        node.vl.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                LockKind::Atomic => {
                    node.n.fetch_add(1, Ordering::Relaxed);
                    node.w_fixed
                        .fetch_add((signed * W_SCALE) as i64, Ordering::Relaxed);
                    if parent != NIL {
                        node.vl.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            if parent == NIL {
                return;
            }
            cur = parent;
            signed = -signed;
        }
    }

    /// Revert virtual loss along an aborted path.
    fn revert_path(&self, leaf: u32) {
        let mut cur = leaf;
        loop {
            let node = &self.nodes[cur as usize];
            let parent = node.parent.load(Ordering::Relaxed);
            if parent == NIL {
                return;
            }
            node.vl.fetch_sub(1, Ordering::Relaxed);
            cur = parent;
        }
    }

    /// Root statistics: visit counts, normalized distribution, root value.
    pub fn action_prior(&self, action_space: usize) -> (Vec<u32>, Vec<f32>, f32) {
        let mut visits = vec![0u32; action_space];
        let root = &self.nodes[0];
        if root.phase.load(Ordering::Acquire) == EXPANDED {
            let first = root.first_child.load(Ordering::Relaxed);
            let count = root.child_count.load(Ordering::Relaxed);
            for c in first..first + count {
                let node = &self.nodes[c as usize];
                visits[node.action.load(Ordering::Relaxed) as usize] =
                    node.n.load(Ordering::Relaxed);
            }
        }
        let total: u32 = visits.iter().sum();
        let probs = if total == 0 {
            vec![0.0; action_space]
        } else {
            visits.iter().map(|&v| v as f32 / total as f32).collect()
        };
        let root_n = root.n.load(Ordering::Relaxed);
        let value = if root_n == 0 {
            0.0
        } else {
            (-(root.w() / root_n as f64)) as f32
        };
        (visits, probs, value)
    }

    /// Sum of outstanding virtual losses (0 once all playouts complete).
    pub fn outstanding_vl(&self) -> u64 {
        (0..self.len())
            .map(|i| self.nodes[i].vl.load(Ordering::Relaxed) as u64)
            .sum()
    }

    /// Collision count.
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }
}

/// Driver: persistent `N`-thread pool running `threadsafe_rollout` loops.
///
/// Rollout workers need their leaf evaluated synchronously before the
/// rollout can finish, so the batch-first evaluator is adapted to a
/// synchronous view at construction: backends that profit from batching
/// (`preferred_batch() > 1`) get a [`CoalescingEvaluator`] that merges
/// the `N` workers' concurrent requests into shared batches; backends
/// that already coalesce internally (the accelerator queue) or that gain
/// nothing from batching are called single-sample.
pub struct SharedTreeSearch {
    cfg: MctsConfig,
    sync_eval: Arc<dyn Evaluator>,
    pool: WorkerPool,
}

impl SharedTreeSearch {
    /// Spawn `cfg.workers` rollout threads with the default coalescing
    /// window ([`crate::coalesce::DEFAULT_COALESCE_WINDOW`]).
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        Self::with_coalesce_window(cfg, evaluator, crate::coalesce::DEFAULT_COALESCE_WINDOW)
    }

    /// Spawn `cfg.workers` rollout threads, waiting at most `window`
    /// for concurrent evaluations to coalesce into one batch. Tune this
    /// against the evaluator's forward time: a window much larger than
    /// one forward pass taxes under-filled rounds at the tail of each
    /// move; `Duration::ZERO` disables cross-worker batching entirely.
    pub fn with_coalesce_window(
        cfg: MctsConfig,
        evaluator: Arc<dyn BatchEvaluator>,
        window: std::time::Duration,
    ) -> Self {
        cfg.validate();
        let batch = evaluator.preferred_batch().min(cfg.workers);
        let sync_eval: Arc<dyn Evaluator> =
            if batch > 1 && !window.is_zero() && !evaluator.coalesces_internally() {
                Arc::new(CoalescingEvaluator::with_window(evaluator, batch, window))
            } else {
                Arc::new(SingleSample(evaluator))
            };
        SharedTreeSearch {
            pool: WorkerPool::new(cfg.workers),
            cfg,
            sync_eval,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MctsConfig {
        &self.cfg
    }
}

impl<G: Game> SearchScheme<G> for SharedTreeSearch {
    fn search(&mut self, root: &G) -> SearchResult {
        if root.status().is_terminal() {
            return empty_result(root.action_space());
        }
        let move_start = Instant::now();
        let tree = Arc::new(SharedTree::new(self.cfg, root.action_space()));
        let tickets = Arc::new(AtomicUsize::new(self.cfg.playouts));
        let eval_ns = Arc::new(AtomicU64::new(0));
        let in_tree_ns = Arc::new(AtomicU64::new(0));

        {
            let tree = Arc::clone(&tree);
            let tickets = Arc::clone(&tickets);
            let eval_ns = Arc::clone(&eval_ns);
            let in_tree_ns = Arc::clone(&in_tree_ns);
            let evaluator = Arc::clone(&self.sync_eval);
            let root = root.clone();
            self.pool.run_wave(self.cfg.workers, move |_| {
                let mut encode_buf = Vec::new();
                loop {
                    // Take a ticket; collisions retry on the same ticket so
                    // exactly `playouts` rollouts complete.
                    if tickets
                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| t.checked_sub(1))
                        .is_err()
                    {
                        return;
                    }
                    let t0 = Instant::now();
                    let mut spins = 0u32;
                    while !tree.rollout(&root, evaluator.as_ref(), &mut encode_buf, &eval_ns) {
                        spins += 1;
                        // Brief backoff: the colliding evaluation needs CPU
                        // time to finish (critical on few-core hosts).
                        if spins < 4 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(std::time::Duration::from_micros(
                                50 * spins.min(20) as u64,
                            ));
                        }
                    }
                    in_tree_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            });
        }

        debug_assert_eq!(tree.outstanding_vl(), 0);
        let (visits, probs, value) = tree.action_prior(root.action_space());
        let eval = eval_ns.load(Ordering::Relaxed);
        let total_worker = in_tree_ns.load(Ordering::Relaxed);
        let stats = SearchStats {
            playouts: self.cfg.playouts as u64,
            // Worker time minus evaluation = in-tree time; attribute the
            // split between select and backup 2:1 (selection dominates).
            select_ns: total_worker.saturating_sub(eval) * 2 / 3,
            backup_ns: total_worker.saturating_sub(eval) / 3,
            eval_ns: eval,
            move_ns: move_start.elapsed().as_nanos() as u64,
            collisions: tree.collisions(),
            nodes: tree.len() as u64,
        };
        SearchResult {
            probs,
            visits,
            value,
            stats,
        }
    }

    fn name(&self) -> &'static str {
        "shared-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;
    use games::tictactoe::TicTacToe;
    use games::Game;

    fn cfg(playouts: usize, workers: usize) -> MctsConfig {
        MctsConfig {
            playouts,
            workers,
            ..Default::default()
        }
    }

    fn uniform() -> Arc<UniformEvaluator> {
        Arc::new(UniformEvaluator::for_game(&TicTacToe::new()))
    }

    #[test]
    fn completes_exact_playout_budget() {
        let mut s = SharedTreeSearch::new(cfg(200, 4), uniform());
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 200);
        assert_eq!(r.visits.iter().sum::<u32>(), 199);
    }

    #[test]
    fn single_worker_shared_tree_is_consistent() {
        let mut s = SharedTreeSearch::new(cfg(100, 1), uniform());
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.visits.iter().sum::<u32>(), 99);
        assert!((r.probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(r.stats.collisions, 0, "no collisions with one worker");
    }

    #[test]
    fn finds_immediate_win_under_contention() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = SharedTreeSearch::new(cfg(400, 8), uniform());
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2, "visits {:?}", r.visits);
        assert!(r.value > 0.3);
    }

    #[test]
    fn atomic_lock_mode_works() {
        let mut s = SharedTreeSearch::new(
            MctsConfig {
                lock_kind: LockKind::Atomic,
                ..cfg(300, 4)
            },
            uniform(),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.visits.iter().sum::<u32>(), 299);
    }

    #[test]
    fn visit_tracking_vl_mode_works() {
        let mut s = SharedTreeSearch::new(
            MctsConfig {
                virtual_loss: VirtualLoss::VisitTracking,
                ..cfg(300, 4)
            },
            uniform(),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.visits.iter().sum::<u32>(), 299);
    }

    #[test]
    fn terminal_root_returns_empty() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4, 2] {
            g.apply(a);
        }
        let mut s = SharedTreeSearch::new(cfg(10, 2), uniform());
        let r = s.search(&g);
        assert_eq!(r.visits.iter().sum::<u32>(), 0);
    }

    #[test]
    fn tree_invariants_after_contended_search() {
        let mut s = SharedTreeSearch::new(cfg(500, 8), uniform());
        let g = TicTacToe::new();
        let r = s.search(&g);
        // Root visits = playouts - 1 (first playout expands the root).
        assert_eq!(r.visits.iter().sum::<u32>(), 499);
        // No dangling virtual loss is asserted inside search() in debug.
    }

    #[test]
    fn reusable_across_moves() {
        let mut s = SharedTreeSearch::new(cfg(100, 4), uniform());
        let mut g = TicTacToe::new();
        for _ in 0..3 {
            let r = s.search(&g);
            g.apply(r.best_action());
        }
        assert_eq!(g.move_count(), 3);
    }

    #[test]
    fn shared_tree_direct_api() {
        let tree = SharedTree::new(cfg(50, 2), 9);
        assert!(tree.is_empty());
        let eval = UniformEvaluator::for_game(&TicTacToe::new());
        let g = TicTacToe::new();
        let mut buf = Vec::new();
        let ns = AtomicU64::new(0);
        for _ in 0..50 {
            assert!(tree.rollout(&g, &eval, &mut buf, &ns));
        }
        assert_eq!(tree.outstanding_vl(), 0);
        let (visits, _, _) = tree.action_prior(9);
        assert_eq!(visits.iter().sum::<u32>(), 49);
    }
}
