//! The shared-tree parallel scheme (§3.1.1, Algorithm 2).
//!
//! `N` worker threads execute whole playouts ("threadsafe_rollout")
//! against a single tree in shared memory. Edge statistics are protected
//! either by per-node mutexes (the paper's design, [`LockKind::Mutex`]) or
//! by lock-free atomic read-modify-write updates ([`LockKind::Atomic`],
//! the Mirsoleimani-style ablation). Virtual loss applied during Node
//! Selection steers concurrent workers onto different paths and is
//! released during BackUp.
//!
//! The tree is an **atomic view over the unified arena layout**
//! ([`crate::arena::AtomicColumns`]): the same struct-of-arrays columns
//! and contiguous `(first_child, child_count)` child ranges that back the
//! single-owner [`crate::tree::Tree`], with every cell an atomic so the
//! store can be shared as a plain reference across rollout threads.
//! Expansion bump-allocates a contiguous child block with a single
//! `fetch_add`, then publishes it with a release store on the parent's
//! phase flag; readers acquire-load the flag before touching children.
//! The arena is pre-sized for one move's expansion, so shared-tree
//! searches run under a fixed memory bound by construction.

use crate::arena::{phase, AtomicColumns, W_SCALE};
use crate::budget::{Budget, RootSlot, RunGate, StepOutcome};
use crate::coalesce::CoalescingEvaluator;
use crate::config::{LockKind, MctsConfig, VirtualLoss};
use crate::evaluator::{BatchEvaluator, Evaluator, SingleSample};
use crate::pool::WorkerPool;
use crate::result::{SearchResult, SearchScheme, SearchStats};
use games::Game;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sentinel index.
const NIL: u32 = crate::arena::NIL;

/// Cap on the pre-allocated shared arena for **deadline-bounded** runs
/// with no explicit [`MctsConfig::max_nodes`]. The arena is sized for
/// the worst-case expansion of the whole run, and a time-budgeted run's
/// playout cap is aspirational — without this bound a `Budget::time`
/// run with a huge playout ceiling would allocate gigabytes of atomic
/// columns up front. Deadline-free runs keep the exact worst-case
/// sizing (they can never exhaust the arena); a deadline run genuinely
/// expanding more than this many nodes before its deadline must set
/// `max_nodes` explicitly.
pub const DEFAULT_SHARED_ARENA_SLOTS: usize = 1 << 22;

/// The concurrent arena tree shared by all rollout workers for one move.
pub struct SharedTree {
    cols: AtomicColumns,
    /// Per-node locks used in [`LockKind::Mutex`] mode (kept beside the
    /// columns: the lock is a mutation discipline, not node data).
    locks: Box<[Mutex<()>]>,
    next: AtomicUsize,
    cfg: MctsConfig,
    /// Collisions: playout attempts aborted on an in-flight leaf.
    collisions: AtomicU64,
    /// Per-tree nonce mixed into the root-noise seed (one tree per move).
    noise_nonce: u64,
}

impl SharedTree {
    /// Allocate an arena able to hold one move's worth of expansion.
    pub fn new(cfg: MctsConfig, action_space: usize) -> Self {
        let cap = cfg.arena_capacity(action_space);
        let mut locks = Vec::with_capacity(cap);
        locks.resize_with(cap, || Mutex::new(()));
        let tree = SharedTree {
            cols: AtomicColumns::new(cap),
            locks: locks.into_boxed_slice(),
            next: AtomicUsize::new(1), // slot 0 = root
            cfg,
            collisions: AtomicU64::new(0),
            noise_nonce: crate::noise::next_nonce(),
        };
        tree.cols.prior_bits[0].store(1.0f32.to_bits(), Ordering::Relaxed);
        tree
    }

    /// Number of allocated nodes.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.cols.capacity())
    }

    /// True if nothing beyond the root has been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Completed visits of node `id` (tests/inspection).
    pub fn visits(&self, id: u32) -> u32 {
        self.cols.n[id as usize].load(Ordering::Relaxed)
    }

    fn alloc_block(&self, count: usize) -> u32 {
        let start = self.next.fetch_add(count, Ordering::Relaxed);
        assert!(
            start + count <= self.cols.capacity(),
            "shared-tree arena exhausted ({} nodes); raise MctsConfig::max_nodes",
            self.cols.capacity()
        );
        start as u32
    }

    /// One complete playout (paper's `threadsafe_rollout`). Returns `true`
    /// if a playout was completed, `false` on a collision (the attempt was
    /// aborted and all virtual loss reverted).
    pub fn rollout<G: Game>(
        &self,
        root_game: &G,
        evaluator: &dyn Evaluator,
        encode_buf: &mut Vec<f32>,
        eval_ns: &AtomicU64,
    ) -> bool {
        let mut game = root_game.clone();
        let mut cur: u32 = 0;
        loop {
            match self.cols.phase[cur as usize].load(Ordering::Acquire) {
                phase::EXPANDED => {
                    let best = self.select_child(cur);
                    self.apply_vl(best);
                    game.apply(self.cols.action[best as usize].load(Ordering::Relaxed) as u16);
                    cur = best;
                    let status = game.status();
                    if status.is_terminal() {
                        let v = status.reward_for(game.to_move());
                        self.mark_terminal(cur, v);
                        // fall through: next loop iteration sees TERMINAL
                    }
                }
                phase::TERMINAL => {
                    let v = f32::from_bits(
                        self.cols.terminal_bits[cur as usize].load(Ordering::Relaxed),
                    );
                    self.backup(cur, v);
                    return true;
                }
                phase::PENDING => {
                    // Another worker owns this leaf's evaluation: abort.
                    self.revert_path(cur);
                    self.collisions.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                phase::UNEXPANDED => {
                    if self.cols.phase[cur as usize]
                        .compare_exchange(
                            phase::UNEXPANDED,
                            phase::PENDING,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_err()
                    {
                        continue; // lost the race; re-read the phase
                    }
                    // We own the evaluation of this leaf.
                    encode_buf.resize(game.encoded_len(), 0.0);
                    game.encode(encode_buf);
                    let t = Instant::now();
                    let (priors, value) = evaluator.evaluate(encode_buf);
                    eval_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    self.expand(cur, &game, &priors);
                    self.backup(cur, value);
                    return true;
                }
                other => unreachable!("invalid node phase {other}"),
            }
        }
    }

    /// Virtual-loss-adjusted mean value of node `id`.
    fn q(&self, id: u32) -> f32 {
        let i = id as usize;
        match self.cfg.virtual_loss {
            VirtualLoss::Constant(c) => {
                let n_eff = self.cols.n_eff(id);
                if n_eff == 0 {
                    self.cfg.q_init
                } else {
                    let vl = self.cols.vl[i].load(Ordering::Relaxed) as f64;
                    ((self.cols.w(id) - c as f64 * vl) / n_eff as f64) as f32
                }
            }
            VirtualLoss::VisitTracking => {
                let n = self.cols.n[i].load(Ordering::Relaxed);
                if n == 0 {
                    self.cfg.q_init
                } else {
                    (self.cols.w(id) / n as f64) as f32
                }
            }
        }
    }

    /// UCT argmax over the children of an expanded node (Eq. 1), reading
    /// possibly-stale statistics (inherent to tree-parallel MCTS).
    fn select_child(&self, parent: u32) -> u32 {
        let first = self.cols.first_child[parent as usize].load(Ordering::Relaxed);
        let count = self.cols.child_count[parent as usize].load(Ordering::Relaxed);
        debug_assert!(count > 0, "select on childless node");
        let children = first..first + count;
        let sum_n: u32 = children.clone().map(|c| self.cols.n_eff(c)).sum();
        let sqrt_sum = (sum_n as f32).sqrt();
        let mut best = first;
        let mut best_score = f32::NEG_INFINITY;
        for c in children {
            let u = self.q(c)
                + self.cfg.c_puct * self.cols.prior(c) * sqrt_sum
                    / (1.0 + self.cols.n_eff(c) as f32);
            if u > best_score {
                best_score = u;
                best = c;
            }
        }
        best
    }

    /// Apply one unit of virtual loss to a traversed edge, honoring the
    /// configured locking discipline (Algorithm 2 lines 13-15).
    fn apply_vl(&self, id: u32) {
        let vl = &self.cols.vl[id as usize];
        match self.cfg.lock_kind {
            LockKind::Mutex => {
                let _g = self.locks[id as usize].lock();
                vl.fetch_add(1, Ordering::Relaxed);
            }
            LockKind::Atomic => {
                vl.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// First-discovery terminal marking (idempotent).
    fn mark_terminal(&self, id: u32, value: f32) {
        self.cols.terminal_bits[id as usize].store(value.to_bits(), Ordering::Relaxed);
        // 0→3 CAS; if another thread already marked it, the stored value is
        // identical (terminal values are state-deterministic).
        let _ = self.cols.phase[id as usize].compare_exchange(
            phase::UNEXPANDED,
            phase::TERMINAL,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Create children for a pending leaf and publish them.
    fn expand<G: Game>(&self, leaf: u32, game: &G, priors: &[f32]) {
        let mut legal = Vec::new();
        game.legal_actions_into(&mut legal);
        debug_assert!(!legal.is_empty(), "expanding a state with no moves");

        let mut masked = crate::tree::mask_and_normalize(priors, &legal);
        // AlphaZero self-play: Dirichlet noise on the root priors. Only
        // one worker ever expands the root (the CAS winner), so this is
        // race-free.
        if leaf == 0 {
            if let Some(noise) = self.cfg.root_noise {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    noise.seed ^ self.noise_nonce.rotate_left(17),
                );
                crate::noise::mix_noise(&mut rng, &noise, &mut masked);
            }
        }

        let first = self.alloc_block(legal.len());
        for (i, (&a, &p)) in legal.iter().zip(&masked).enumerate() {
            let c = first as usize + i;
            self.cols.parent[c].store(leaf, Ordering::Relaxed);
            self.cols.action[c].store(a as u32, Ordering::Relaxed);
            self.cols.prior_bits[c].store(p.to_bits(), Ordering::Relaxed);
        }
        self.cols.first_child[leaf as usize].store(first, Ordering::Relaxed);
        self.cols.child_count[leaf as usize].store(legal.len() as u32, Ordering::Relaxed);
        self.cols.phase[leaf as usize].store(phase::EXPANDED, Ordering::Release);
    }

    /// BackUp (Algorithm 2 lines 18-20): propagate `value` (leaf player's
    /// perspective) to the root, releasing virtual loss.
    fn backup(&self, leaf: u32, value: f32) {
        let mut cur = leaf;
        let mut signed = -(value as f64); // leaf W is the mover's view
        loop {
            let i = cur as usize;
            let parent = self.cols.parent[i].load(Ordering::Relaxed);
            let update = || {
                self.cols.n[i].fetch_add(1, Ordering::Relaxed);
                self.cols.w_fixed[i].fetch_add((signed * W_SCALE) as i64, Ordering::Relaxed);
                if parent != NIL {
                    self.cols.vl[i].fetch_sub(1, Ordering::Relaxed);
                }
            };
            match self.cfg.lock_kind {
                LockKind::Mutex => {
                    let _g = self.locks[i].lock();
                    update();
                }
                LockKind::Atomic => update(),
            }
            if parent == NIL {
                return;
            }
            cur = parent;
            signed = -signed;
        }
    }

    /// Revert virtual loss along an aborted path.
    fn revert_path(&self, leaf: u32) {
        let mut cur = leaf;
        loop {
            let i = cur as usize;
            let parent = self.cols.parent[i].load(Ordering::Relaxed);
            if parent == NIL {
                return;
            }
            self.cols.vl[i].fetch_sub(1, Ordering::Relaxed);
            cur = parent;
        }
    }

    /// Root statistics: visit counts, normalized distribution, root value.
    pub fn action_prior(&self, action_space: usize) -> (Vec<u32>, Vec<f32>, f32) {
        let mut visits = vec![0u32; action_space];
        if self.cols.phase[0].load(Ordering::Acquire) == phase::EXPANDED {
            let first = self.cols.first_child[0].load(Ordering::Relaxed);
            let count = self.cols.child_count[0].load(Ordering::Relaxed);
            for c in first..first + count {
                visits[self.cols.action[c as usize].load(Ordering::Relaxed) as usize] =
                    self.cols.n[c as usize].load(Ordering::Relaxed);
            }
        }
        let total: u32 = visits.iter().sum();
        let probs = if total == 0 {
            vec![0.0; action_space]
        } else {
            visits.iter().map(|&v| v as f32 / total as f32).collect()
        };
        let root_n = self.cols.n[0].load(Ordering::Relaxed);
        let value = if root_n == 0 {
            0.0
        } else {
            (-(self.cols.w(0) / root_n as f64)) as f32
        };
        (visits, probs, value)
    }

    /// Sum of outstanding virtual losses (0 once all playouts complete).
    pub fn outstanding_vl(&self) -> u64 {
        (0..self.len())
            .map(|i| self.cols.vl[i].load(Ordering::Relaxed) as u64)
            .sum()
    }

    /// Collision count.
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }

    /// Post-search consistency check (the atomic-view counterpart of
    /// [`crate::tree::Tree::check_invariants`]): all virtual losses
    /// released, parent/child links agree, and every expanded node's
    /// visits cover its children's. Only meaningful once no playouts are
    /// in flight.
    pub fn check_invariants(&self) {
        assert_eq!(self.outstanding_vl(), 0, "dangling virtual loss");
        for id in 0..self.len() as u32 {
            let i = id as usize;
            if self.cols.phase[i].load(Ordering::Acquire) != phase::EXPANDED {
                continue;
            }
            let first = self.cols.first_child[i].load(Ordering::Relaxed);
            let count = self.cols.child_count[i].load(Ordering::Relaxed);
            assert!(count > 0, "expanded node {id} without children");
            let mut child_sum = 0u32;
            for c in first..first + count {
                assert_eq!(
                    self.cols.parent[c as usize].load(Ordering::Relaxed),
                    id,
                    "parent link of {c}"
                );
                child_sum += self.cols.n[c as usize].load(Ordering::Relaxed);
            }
            let n = self.cols.n[i].load(Ordering::Relaxed);
            assert!(n >= child_sum, "node {id}: N={n} < children {child_sum}");
            assert!(
                n - child_sum <= 1,
                "node {id}: more than one self-visit: N={n} children={child_sum}"
            );
        }
    }
}

/// Resumable-run state of a shared-tree search: the concurrent tree plus
/// the cross-wave accounting counters.
struct SharedRun {
    tree: Arc<SharedTree>,
    gate: RunGate,
    action_space: usize,
    eval_ns: Arc<AtomicU64>,
    in_tree_ns: Arc<AtomicU64>,
}

/// Driver: persistent `N`-thread pool running `threadsafe_rollout` loops.
///
/// Rollout workers need their leaf evaluated synchronously before the
/// rollout can finish, so the batch-first evaluator is adapted to a
/// synchronous view at construction: backends that profit from batching
/// (`preferred_batch() > 1`) get a [`CoalescingEvaluator`] that merges
/// the `N` workers' concurrent requests into shared batches; backends
/// that already coalesce internally (the accelerator queue) or that gain
/// nothing from batching are called single-sample.
pub struct SharedTreeSearch {
    cfg: MctsConfig,
    sync_eval: Arc<dyn Evaluator>,
    pool: WorkerPool,
    root: RootSlot,
    run: Option<SharedRun>,
}

impl SharedTreeSearch {
    /// Spawn `cfg.workers` rollout threads with the default coalescing
    /// window ([`crate::coalesce::DEFAULT_COALESCE_WINDOW`]).
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        Self::with_coalesce_window(cfg, evaluator, crate::coalesce::DEFAULT_COALESCE_WINDOW)
    }

    /// Spawn `cfg.workers` rollout threads, waiting at most `window`
    /// for concurrent evaluations to coalesce into one batch. Tune this
    /// against the evaluator's forward time: a window much larger than
    /// one forward pass taxes under-filled rounds at the tail of each
    /// move; `Duration::ZERO` disables cross-worker batching entirely.
    pub fn with_coalesce_window(
        cfg: MctsConfig,
        evaluator: Arc<dyn BatchEvaluator>,
        window: std::time::Duration,
    ) -> Self {
        cfg.validate();
        let batch = evaluator.preferred_batch().min(cfg.workers);
        let sync_eval: Arc<dyn Evaluator> =
            if batch > 1 && !window.is_zero() && !evaluator.coalesces_internally() {
                Arc::new(CoalescingEvaluator::with_window(evaluator, batch, window))
            } else {
                Arc::new(SingleSample(evaluator))
            };
        SharedTreeSearch {
            pool: WorkerPool::new(cfg.workers),
            cfg,
            sync_eval,
            root: RootSlot::new(),
            run: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MctsConfig {
        &self.cfg
    }
}

impl<G: Game> SearchScheme<G> for SharedTreeSearch {
    fn begin(&mut self, root: &G, budget: Budget) {
        SearchScheme::<G>::cancel(self);
        let mut run_cfg = budget.apply_to(&self.cfg);
        let gate = RunGate::new(&self.cfg, &budget, root.status().is_terminal());
        // A deadline makes the playout target aspirational: don't let a
        // huge ceiling inflate the worst-case arena sizing into
        // gigabytes (see DEFAULT_SHARED_ARENA_SLOTS). Deadline-free
        // runs keep the exact worst-case estimate.
        if gate.deadline().is_some() && run_cfg.max_nodes.is_none() {
            let per_playout = root.action_space() + 1;
            let max_sized = (DEFAULT_SHARED_ARENA_SLOTS / per_playout)
                .saturating_sub(run_cfg.workers + 1)
                .max(1);
            run_cfg.playouts = run_cfg.playouts.min(max_sized);
        }
        self.root.store(root);
        self.run = Some(SharedRun {
            // The arena is sized for the whole run's expansion up front
            // (run_cfg carries the resolved playout target).
            tree: Arc::new(SharedTree::new(run_cfg, root.action_space())),
            gate,
            action_space: root.action_space(),
            eval_ns: Arc::new(AtomicU64::new(0)),
            in_tree_ns: Arc::new(AtomicU64::new(0)),
        });
    }

    fn step(&mut self, quota: usize) -> StepOutcome {
        let Some(run) = &mut self.run else {
            return StepOutcome::Done;
        };
        if run.gate.exhausted() {
            return StepOutcome::Done;
        }
        let step_start = Instant::now();
        let grant = (quota as u64).min(run.gate.remaining()) as usize;
        let tickets = Arc::new(AtomicUsize::new(grant));
        let completed = Arc::new(AtomicUsize::new(0));
        {
            let tree = Arc::clone(&run.tree);
            let tickets = Arc::clone(&tickets);
            let completed = Arc::clone(&completed);
            let eval_ns = Arc::clone(&run.eval_ns);
            let in_tree_ns = Arc::clone(&run.in_tree_ns);
            let evaluator = Arc::clone(&self.sync_eval);
            let deadline = run.gate.deadline();
            let root = self.root.get::<G>().clone();
            self.pool.run_wave(self.cfg.workers, move |_| {
                let mut encode_buf = Vec::new();
                loop {
                    // Deadline first: no new rollout starts past it.
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return;
                    }
                    // Take a ticket; collisions retry on the same ticket
                    // so exactly `grant` rollouts complete (modulo the
                    // deadline).
                    if tickets
                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| t.checked_sub(1))
                        .is_err()
                    {
                        return;
                    }
                    let t0 = Instant::now();
                    let mut spins = 0u32;
                    while !tree.rollout(&root, evaluator.as_ref(), &mut encode_buf, &eval_ns) {
                        spins += 1;
                        // Brief backoff: the colliding evaluation needs CPU
                        // time to finish (critical on few-core hosts).
                        if spins < 4 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(std::time::Duration::from_micros(
                                50 * spins.min(20) as u64,
                            ));
                        }
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                    in_tree_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            });
        }
        run.gate.done += completed.load(Ordering::Relaxed) as u64;
        run.gate.note_step(step_start);
        if run.gate.exhausted() {
            debug_assert_eq!(run.tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            run.tree.check_invariants();
            StepOutcome::Done
        } else {
            StepOutcome::Running
        }
    }

    fn partial_result(&self) -> SearchResult {
        let Some(run) = &self.run else {
            return SearchResult::default();
        };
        let (visits, probs, value) = run.tree.action_prior(run.action_space);
        let eval = run.eval_ns.load(Ordering::Relaxed);
        let total_worker = run.in_tree_ns.load(Ordering::Relaxed);
        let stats = SearchStats {
            playouts: run.gate.done,
            // Worker time minus evaluation = in-tree time; attribute the
            // split between select and backup 2:1 (selection dominates).
            select_ns: total_worker.saturating_sub(eval) * 2 / 3,
            backup_ns: total_worker.saturating_sub(eval) / 3,
            eval_ns: eval,
            move_ns: run.gate.active_ns,
            seq: run.gate.seq(),
            collisions: run.tree.collisions(),
            nodes: run.tree.len() as u64,
            reclaimed: 0,
            tt_hits: 0,
        };
        SearchResult {
            probs,
            visits,
            value,
            stats,
        }
    }

    fn cancel(&mut self) {
        if let Some(run) = self.run.take() {
            // No wave is in flight between steps: the tree is quiescent.
            debug_assert_eq!(run.tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            run.tree.check_invariants();
        }
    }

    fn name(&self) -> &'static str {
        "shared-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;
    use games::tictactoe::TicTacToe;
    use games::Game;

    fn cfg(playouts: usize, workers: usize) -> MctsConfig {
        MctsConfig {
            playouts,
            workers,
            ..Default::default()
        }
    }

    fn uniform() -> Arc<UniformEvaluator> {
        Arc::new(UniformEvaluator::for_game(&TicTacToe::new()))
    }

    #[test]
    fn completes_exact_playout_budget() {
        let mut s = SharedTreeSearch::new(cfg(200, 4), uniform());
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 200);
        assert_eq!(r.visits.iter().sum::<u32>(), 199);
    }

    #[test]
    fn single_worker_shared_tree_is_consistent() {
        let mut s = SharedTreeSearch::new(cfg(100, 1), uniform());
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.visits.iter().sum::<u32>(), 99);
        assert!((r.probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(r.stats.collisions, 0, "no collisions with one worker");
    }

    #[test]
    fn finds_immediate_win_under_contention() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = SharedTreeSearch::new(cfg(400, 8), uniform());
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2, "visits {:?}", r.visits);
        assert!(r.value > 0.3);
    }

    #[test]
    fn atomic_lock_mode_works() {
        let mut s = SharedTreeSearch::new(
            MctsConfig {
                lock_kind: LockKind::Atomic,
                ..cfg(300, 4)
            },
            uniform(),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.visits.iter().sum::<u32>(), 299);
    }

    #[test]
    fn visit_tracking_vl_mode_works() {
        let mut s = SharedTreeSearch::new(
            MctsConfig {
                virtual_loss: VirtualLoss::VisitTracking,
                ..cfg(300, 4)
            },
            uniform(),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.visits.iter().sum::<u32>(), 299);
    }

    #[test]
    fn terminal_root_returns_empty() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4, 2] {
            g.apply(a);
        }
        let mut s = SharedTreeSearch::new(cfg(10, 2), uniform());
        let r = s.search(&g);
        assert_eq!(r.visits.iter().sum::<u32>(), 0);
    }

    #[test]
    fn tree_invariants_after_contended_search() {
        let mut s = SharedTreeSearch::new(cfg(500, 8), uniform());
        let g = TicTacToe::new();
        let r = s.search(&g);
        // Root visits = playouts - 1 (first playout expands the root).
        assert_eq!(r.visits.iter().sum::<u32>(), 499);
        // No dangling virtual loss is asserted inside search() in debug.
    }

    #[test]
    fn reusable_across_moves() {
        let mut s = SharedTreeSearch::new(cfg(100, 4), uniform());
        let mut g = TicTacToe::new();
        for _ in 0..3 {
            let r = s.search(&g);
            g.apply(r.best_action());
        }
        assert_eq!(g.move_count(), 3);
    }

    #[test]
    fn shared_tree_direct_api() {
        let tree = SharedTree::new(cfg(50, 2), 9);
        assert!(tree.is_empty());
        let eval = UniformEvaluator::for_game(&TicTacToe::new());
        let g = TicTacToe::new();
        let mut buf = Vec::new();
        let ns = AtomicU64::new(0);
        for _ in 0..50 {
            assert!(tree.rollout(&g, &eval, &mut buf, &ns));
        }
        assert_eq!(tree.outstanding_vl(), 0);
        tree.check_invariants();
        let (visits, _, _) = tree.action_prior(9);
        assert_eq!(visits.iter().sum::<u32>(), 49);
        assert_eq!(tree.visits(0), 50);
    }
}
