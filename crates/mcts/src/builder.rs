//! [`SearchBuilder`]: one construction path for every search scheme.
//!
//! The schemes' direct constructors differ in shape (devices for the
//! local scheme, a second model for speculation, statefulness for
//! reuse). The builder folds all of that behind a fluent API so sweeps
//! over [`Scheme::ALL`] stay one-liners:
//!
//! ```
//! use games::tictactoe::TicTacToe;
//! use mcts::{Scheme, SearchBuilder, UniformEvaluator};
//! use std::sync::Arc;
//!
//! for scheme in Scheme::ALL {
//!     let mut search = SearchBuilder::new(scheme)
//!         .playouts(32)
//!         .workers(2)
//!         .evaluator(Arc::new(UniformEvaluator::new(36, 9)))
//!         .build::<TicTacToe>();
//!     let r = search.search(&TicTacToe::new());
//!     assert!(r.stats.playouts >= 32, "{scheme}");
//! }
//! ```

use crate::adaptive::Scheme;
use crate::budget::Budget;
use crate::config::{LockKind, MctsConfig, VirtualLoss};
use crate::evaluator::{
    AccelEvaluator, BatchEvaluator, Evaluator, LegacyEvaluator, UniformEvaluator,
};
use crate::leaf_parallel::LeafParallelSearch;
use crate::local::LocalTreeSearch;
use crate::noise::RootNoise;
use crate::result::SearchScheme;
use crate::reuse::ReusableSearch;
use crate::root_parallel::RootParallelSearch;
use crate::serial::SerialSearch;
use crate::shared::SharedTreeSearch;
use crate::speculative::SpeculativeSearch;
use accel::Device;
use games::Game;
use std::sync::Arc;

/// Where a builder's evaluations come from.
enum EvalSource {
    /// Any batch evaluator (CPU network, uniform stub, legacy adapter…).
    Batch(Arc<dyn BatchEvaluator>),
    /// An accelerator device: schemes that can will feed its queue
    /// natively (local tree); the rest get an [`AccelEvaluator`] view.
    Device(Arc<Device>),
}

/// Fluent constructor for all search schemes (see module docs).
pub struct SearchBuilder {
    scheme: Scheme,
    cfg: MctsConfig,
    eval: Option<EvalSource>,
    spec: Option<Arc<dyn BatchEvaluator>>,
    commit_batch: Option<usize>,
    coalesce_window: Option<std::time::Duration>,
    reuse: bool,
}

impl SearchBuilder {
    /// Start building a searcher for `scheme` with default
    /// [`MctsConfig`].
    pub fn new(scheme: Scheme) -> Self {
        SearchBuilder {
            scheme,
            cfg: MctsConfig::default(),
            eval: None,
            spec: None,
            commit_batch: None,
            coalesce_window: None,
            reuse: false,
        }
    }

    /// Replace the whole hyper-parameter block at once.
    pub fn config(mut self, cfg: MctsConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Playouts per move.
    pub fn playouts(mut self, playouts: usize) -> Self {
        self.cfg.playouts = playouts;
        self
    }

    /// Parallel workers `N`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// UCT exploration constant.
    pub fn c_puct(mut self, c: f32) -> Self {
        self.cfg.c_puct = c;
        self
    }

    /// Virtual-loss policy.
    pub fn virtual_loss(mut self, vl: VirtualLoss) -> Self {
        self.cfg.virtual_loss = vl;
        self
    }

    /// Shared-tree locking discipline.
    pub fn lock_kind(mut self, lock: LockKind) -> Self {
        self.cfg.lock_kind = lock;
        self
    }

    /// Hard node-capacity bound: single-owner trees prune their deepest
    /// fringe subtree instead of growing past `nodes`; the shared tree
    /// pre-allocates exactly `nodes` slots. See
    /// [`MctsConfig::max_nodes`].
    pub fn max_nodes(mut self, nodes: usize) -> Self {
        self.cfg.max_nodes = Some(nodes);
        self
    }

    /// AlphaZero-style Dirichlet root noise for self-play.
    pub fn root_noise(mut self, noise: RootNoise) -> Self {
        self.cfg.root_noise = Some(noise);
        self
    }

    /// Wall-clock budget per move, enforced by **every** scheme: no new
    /// playout (shared tree: rollout ticket; local tree: issued leaf)
    /// starts after the deadline and the search returns promptly;
    /// `playouts` remains an upper bound.
    pub fn time_budget_ms(mut self, ms: u64) -> Self {
        self.cfg.time_budget_ms = Some(ms);
        self
    }

    /// Fold a unified [`Budget`] into the configuration: `playouts`,
    /// `time` and `max_nodes` map onto the corresponding
    /// [`MctsConfig`] fields (fields left `None` keep their current
    /// values). The same `Budget` type can also be passed per run via
    /// [`SearchScheme::begin`].
    pub fn budget(mut self, budget: Budget) -> Self {
        self.cfg = budget.apply_to(&self.cfg);
        self
    }

    /// Keep the played subtree between moves (serial scheme only; the
    /// built searcher re-roots on [`SearchScheme::advance`]).
    pub fn reuse(mut self, reuse: bool) -> Self {
        self.reuse = reuse;
        self
    }

    /// Evaluate leaves with `eval` (batch-first interface; concrete
    /// `Arc<MyEvaluator>` coerces here, including legacy [`Evaluator`]
    /// impls through the blanket adapter).
    pub fn evaluator(mut self, eval: Arc<dyn BatchEvaluator>) -> Self {
        self.eval = Some(EvalSource::Batch(eval));
        self
    }

    /// Evaluate leaves with a boxed legacy evaluator.
    pub fn legacy_evaluator(mut self, eval: Arc<dyn Evaluator>) -> Self {
        self.eval = Some(EvalSource::Batch(Arc::new(LegacyEvaluator(eval))));
        self
    }

    /// Evaluate leaves on an accelerator device. The local-tree scheme
    /// feeds the device queue natively (async tickets); other schemes
    /// submit through an [`AccelEvaluator`].
    pub fn device(mut self, device: Arc<Device>) -> Self {
        self.eval = Some(EvalSource::Device(device));
        self
    }

    /// Shared-tree cross-worker batching window: how long the first
    /// evaluator of a round waits for peers before running a partial
    /// batch. `Duration::ZERO` disables coalescing. Tune toward the
    /// evaluator's forward time; defaults to
    /// [`crate::coalesce::DEFAULT_COALESCE_WINDOW`].
    pub fn coalesce_window(mut self, window: std::time::Duration) -> Self {
        self.coalesce_window = Some(window);
        self
    }

    /// Cheap model for the speculative scheme (defaults to uniform
    /// priors when unset).
    pub fn speculative_model(mut self, spec: Arc<dyn BatchEvaluator>) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Corrections per main-model batch in the speculative scheme
    /// (defaults to `workers`).
    pub fn commit_batch(mut self, batch: usize) -> Self {
        self.commit_batch = Some(batch);
        self
    }

    /// The hyper-parameters as currently configured.
    pub fn current_config(&self) -> &MctsConfig {
        &self.cfg
    }

    /// Instantiate the configured scheme for game type `G`.
    ///
    /// # Panics
    /// If no evaluator/device was provided, if `reuse(true)` is combined
    /// with a non-serial scheme, or if the config is invalid.
    pub fn build<G: Game>(self) -> Box<dyn SearchScheme<G>> {
        let cfg = self.cfg;
        cfg.validate();
        assert!(
            !self.reuse || self.scheme == Scheme::Serial,
            "tree reuse requires the serial scheme (got {})",
            self.scheme
        );
        // Scheme-specific knobs are rejected, not silently dropped.
        assert!(
            self.coalesce_window.is_none() || self.scheme == Scheme::SharedTree,
            "coalesce_window applies only to the shared-tree scheme (got {})",
            self.scheme
        );
        assert!(
            (self.spec.is_none() && self.commit_batch.is_none())
                || self.scheme == Scheme::Speculative,
            "speculative_model/commit_batch apply only to the speculative scheme (got {})",
            self.scheme
        );
        let source = self
            .eval
            .expect("SearchBuilder needs an evaluator or device");

        // Local tree with a device bypasses AccelEvaluator entirely:
        // tickets go straight to the device queue.
        if self.scheme == Scheme::LocalTree {
            return match source {
                EvalSource::Device(d) => Box::new(LocalTreeSearch::with_device(cfg, d)),
                EvalSource::Batch(e) => Box::new(LocalTreeSearch::new(cfg, e)),
            };
        }

        let eval: Arc<dyn BatchEvaluator> = match source {
            EvalSource::Batch(e) => e,
            EvalSource::Device(d) => Arc::new(AccelEvaluator::new(d)),
        };
        match self.scheme {
            Scheme::Serial if self.reuse => Box::new(ReusableSearch::new(cfg, eval)),
            Scheme::Serial => Box::new(SerialSearch::new(cfg, eval)),
            Scheme::SharedTree => match self.coalesce_window {
                Some(w) => Box::new(SharedTreeSearch::with_coalesce_window(cfg, eval, w)),
                None => Box::new(SharedTreeSearch::new(cfg, eval)),
            },
            Scheme::LeafParallel => Box::new(LeafParallelSearch::new(cfg, eval)),
            Scheme::RootParallel => Box::new(RootParallelSearch::new(cfg, eval)),
            Scheme::Speculative => {
                let spec = self.spec.unwrap_or_else(|| {
                    Arc::new(UniformEvaluator::new(eval.input_len(), eval.action_space()))
                });
                // Commit corrections in worker-sized batches, mirroring
                // the pipeline depth a real speculative system would use.
                let commit = self.commit_batch.unwrap_or_else(|| cfg.workers.max(1));
                Box::new(SpeculativeSearch::new(cfg, eval, spec, commit))
            }
            Scheme::LocalTree => unreachable!("handled above"),
        }
    }

    /// Like [`SearchBuilder::build`], but returns the concrete reusable
    /// searcher so callers can query `inherited_nodes`/`retained_nodes`.
    pub fn build_reusable(self) -> ReusableSearch {
        let cfg = self.cfg;
        cfg.validate();
        assert_eq!(
            self.scheme,
            Scheme::Serial,
            "tree reuse requires the serial scheme"
        );
        assert!(
            self.coalesce_window.is_none() && self.spec.is_none() && self.commit_batch.is_none(),
            "shared-tree/speculative knobs do not apply to a reusable serial searcher"
        );
        let eval: Arc<dyn BatchEvaluator> = match self
            .eval
            .expect("SearchBuilder needs an evaluator or device")
        {
            EvalSource::Batch(e) => e,
            EvalSource::Device(d) => Arc::new(AccelEvaluator::new(d)),
        };
        ReusableSearch::new(cfg, eval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use games::tictactoe::TicTacToe;
    use games::Game;

    fn uniform() -> Arc<UniformEvaluator> {
        Arc::new(UniformEvaluator::for_game(&TicTacToe::new()))
    }

    #[test]
    fn builds_every_scheme() {
        for scheme in Scheme::ALL {
            let mut s = SearchBuilder::new(scheme)
                .playouts(40)
                .workers(2)
                .evaluator(uniform())
                .build::<TicTacToe>();
            let r = s.search(&TicTacToe::new());
            assert!(r.stats.playouts >= 40, "{scheme}");
        }
    }

    #[test]
    fn knobs_reach_the_config() {
        let b = SearchBuilder::new(Scheme::SharedTree)
            .playouts(123)
            .workers(7)
            .c_puct(2.5)
            .virtual_loss(VirtualLoss::VisitTracking)
            .lock_kind(LockKind::Atomic)
            .max_nodes(9999)
            .time_budget_ms(250);
        let cfg = b.current_config();
        assert_eq!(cfg.playouts, 123);
        assert_eq!(cfg.workers, 7);
        assert_eq!(cfg.c_puct, 2.5);
        assert_eq!(cfg.virtual_loss, VirtualLoss::VisitTracking);
        assert_eq!(cfg.lock_kind, LockKind::Atomic);
        assert_eq!(cfg.max_nodes, Some(9999));
        assert_eq!(cfg.time_budget_ms, Some(250));
    }

    #[test]
    fn reuse_builds_a_reusable_serial_scheme() {
        let mut s = SearchBuilder::new(Scheme::Serial)
            .playouts(60)
            .evaluator(uniform())
            .reuse(true)
            .build::<TicTacToe>();
        let mut g = TicTacToe::new();
        let r = s.search(&g);
        let a = r.best_action();
        s.advance(a);
        g.apply(a);
        let r2 = s.search(&g);
        assert_eq!(r2.stats.playouts, 60);
        assert_eq!(s.name(), "serial+reuse");
    }

    #[test]
    #[should_panic(expected = "shared-tree scheme")]
    fn coalesce_window_rejected_off_shared_tree() {
        let _ = SearchBuilder::new(Scheme::Serial)
            .evaluator(uniform())
            .coalesce_window(std::time::Duration::from_micros(50))
            .build::<TicTacToe>();
    }

    #[test]
    #[should_panic(expected = "speculative scheme")]
    fn speculative_knobs_rejected_off_speculative() {
        let _ = SearchBuilder::new(Scheme::LocalTree)
            .evaluator(uniform())
            .commit_batch(4)
            .build::<TicTacToe>();
    }

    #[test]
    #[should_panic(expected = "serial scheme")]
    fn reuse_rejects_parallel_schemes() {
        let _ = SearchBuilder::new(Scheme::SharedTree)
            .evaluator(uniform())
            .reuse(true)
            .build::<TicTacToe>();
    }

    #[test]
    #[should_panic(expected = "needs an evaluator")]
    fn missing_evaluator_panics() {
        let _ = SearchBuilder::new(Scheme::Serial).build::<TicTacToe>();
    }

    #[test]
    fn legacy_evaluator_route_works() {
        let legacy: Arc<dyn Evaluator> = uniform();
        let mut s = SearchBuilder::new(Scheme::Serial)
            .playouts(30)
            .legacy_evaluator(legacy)
            .build::<TicTacToe>();
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 30);
    }

    #[test]
    fn device_route_builds_local_and_shared() {
        use accel::{Device, DeviceConfig};
        use nn::{NetConfig, PolicyValueNet};
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 12));
        let dev = Arc::new(Device::new(net, DeviceConfig::instant(2)));
        for scheme in [Scheme::LocalTree, Scheme::SharedTree, Scheme::Serial] {
            let mut s = SearchBuilder::new(scheme)
                .playouts(24)
                .workers(2)
                .device(Arc::clone(&dev))
                .build::<TicTacToe>();
            let r = s.search(&TicTacToe::new());
            assert_eq!(r.stats.playouts, 24, "{scheme}");
        }
        assert!(dev.stats().samples > 0);
    }
}
