//! Tree-parallel DNN-guided Monte-Carlo Tree Search with adaptive
//! parallelism — the core contribution of the reproduced paper.
//!
//! # Batch-first evaluation
//!
//! The search↔inference boundary is batch-first: every scheme consumes a
//! [`BatchEvaluator`] (`evaluate_batch` over `[B, C, H, W]` inputs), and
//! asynchronous backends are driven through an [`EvalClient`]
//! (submit/gather tickets) so one thread can keep many leaves in flight.
//! Legacy single-sample [`Evaluator`] implementations keep working via a
//! blanket adapter (their batches run as sequential calls).
//!
//! # The two parallel schemes
//!
//! * [`shared::SharedTreeSearch`] — §3.1.1: `N` worker threads share one
//!   concurrent tree; per-node locks (or lock-free atomics) protect edge
//!   statistics; virtual loss steers workers onto different paths, and
//!   concurrent evaluations coalesce into shared inference batches.
//! * [`local::LocalTreeSearch`] — §3.1.2: a single master thread owns the
//!   entire tree (no locks, cache-friendly arena) and performs all in-tree
//!   operations, keeping leaves in flight through [`EvalClient`] tickets —
//!   batched CPU inference workers or the accelerator queue's native
//!   async submit/poll interface (Algorithm 3's FIFO pipes).
//!
//! * [`serial::SerialSearch`], [`leaf_parallel::LeafParallelSearch`] and
//!   [`root_parallel::RootParallelSearch`] are the baselines from §2.2.
//!
//! [`adaptive::AdaptiveSearch`] dispatches to the scheme selected by the
//! performance model (see the `perfmodel` crate), reproducing the paper's
//! compile-time adaptive selection.
//!
//! # Resumable budgeted runs
//!
//! Search is an incremental, schedulable unit: every scheme implements
//! [`SearchScheme::begin`] (open a run under a uniform [`Budget`] of
//! playouts / wall-clock deadline / tree memory), [`SearchScheme::step`]
//! (advance by a bounded slice of playouts),
//! [`SearchScheme::partial_result`] (anytime snapshot) and
//! [`SearchScheme::cancel`]. One-shot [`SearchScheme::search`] is a
//! provided loop over `step`, so blocking callers are unchanged — while
//! a serving layer (the `serve` crate) can multiplex many concurrent
//! sessions over a fixed worker pool.
//!
//! # Quickstart
//!
//! Every scheme is constructed through [`SearchBuilder`] (direct
//! constructors exist too and behave identically):
//!
//! ```
//! use games::tictactoe::TicTacToe;
//! use mcts::{Scheme, SearchBuilder, UniformEvaluator};
//! use std::sync::Arc;
//!
//! let mut search = SearchBuilder::new(Scheme::Serial)
//!     .playouts(64)
//!     .evaluator(Arc::new(UniformEvaluator::for_game(&TicTacToe::new())))
//!     .build::<TicTacToe>();
//! let result = search.search(&TicTacToe::new());
//! // 64 playouts: the first expands the root, the rest visit children.
//! assert_eq!(result.visits.iter().sum::<u32>(), 63);
//! ```
//!
//! Keeping many leaves in flight by hand (what the local scheme does
//! internally):
//!
//! ```
//! use mcts::{EvalClient, UniformEvaluator};
//! use std::sync::Arc;
//!
//! let mut client = EvalClient::threaded(Arc::new(UniformEvaluator::new(4, 3)), 2);
//! let a = client.submit(17, &[0.0; 4]); // tag 17, e.g. a leaf id
//! let b = client.submit(42, &[1.0; 4]);
//! assert_eq!((a.tag, b.tag), (17, 42));
//! let done = client.gather_all();
//! assert_eq!(done.len(), 2);
//! assert_eq!(done[0].output.priors.len(), 3);
//! ```

pub mod adaptive;
pub mod analysis;
pub mod arena;
pub mod autotune;
pub mod budget;
pub mod builder;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod coalesce;
pub mod config;
pub mod error;
pub mod evaluator;
pub mod leaf_parallel;
pub mod local;
pub mod noise;
pub mod pool;
pub mod result;
pub mod reuse;
pub mod root_parallel;
pub mod serial;
pub mod shared;
pub mod speculative;
pub mod tree;

pub use adaptive::{AdaptiveSearch, Scheme};
pub use arena::NodeArena;
pub use arena::NodeState;
pub use autotune::{AutotuneReport, BatchTuner, OperatingPoint};
pub use budget::{Budget, StepOutcome};
pub use builder::SearchBuilder;
pub use cache::{CacheStats, CachedEvaluator, EvalCache, EvalCacheConfig};
pub use chaos::{ChaosConfig, ChaosCounters, ChaosEvaluator, ChaosGame};
pub use client::{Completion, EvalClient, Ticket};
pub use coalesce::{CoalesceStats, CoalescingEvaluator};
pub use config::{EvictionPolicy, LockKind, MctsConfig, VirtualLoss};
pub use error::{EvalError, SearchError};
pub use evaluator::{
    AccelEvaluator, BatchEvaluator, EvalOutput, Evaluator, LegacyEvaluator, NnEvaluator, Precision,
    SingleSample, UniformEvaluator,
};
pub use noise::RootNoise;
pub use result::{SearchResult, SearchScheme, SearchStats};
pub use reuse::ReusableSearch;
pub use speculative::SpeculativeSearch;
pub use tree::{Tree, TreeStats};
