//! Tree-parallel DNN-guided Monte-Carlo Tree Search with adaptive
//! parallelism — the core contribution of the reproduced paper.
//!
//! # The two parallel schemes
//!
//! * [`shared::SharedTreeSearch`] — §3.1.1: `N` worker threads share one
//!   concurrent tree; per-node locks (or lock-free atomics) protect edge
//!   statistics; virtual loss steers workers onto different paths. In-tree
//!   operations are parallel, but every worker pays shared-memory access
//!   cost, and node evaluation is serialized *with* in-tree work on each
//!   thread.
//! * [`local::LocalTreeSearch`] — §3.1.2: a single master thread owns the
//!   entire tree (no locks, cache-friendly arena) and performs all in-tree
//!   operations; `N` worker threads only run DNN inference, fed through
//!   FIFO channels. In-tree work is serial but fully overlapped with
//!   parallel inference.
//!
//! * [`serial::SerialSearch`], [`leaf_parallel::LeafParallelSearch`] and
//!   [`root_parallel::RootParallelSearch`] are the baselines from §2.2.
//!
//! [`adaptive::AdaptiveSearch`] dispatches to the scheme selected by the
//! performance model (see the `perfmodel` crate), reproducing the paper's
//! compile-time adaptive selection.
//!
//! # Example
//!
//! ```
//! use games::tictactoe::TicTacToe;
//! use mcts::{MctsConfig, evaluator::UniformEvaluator, serial::SerialSearch, SearchScheme};
//! use std::sync::Arc;
//!
//! let cfg = MctsConfig { playouts: 64, ..MctsConfig::default() };
//! let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
//! let mut search = SerialSearch::new(cfg, eval);
//! let result = search.search(&TicTacToe::new());
//! // 64 playouts: the first expands the root, the rest visit children.
//! assert_eq!(result.visits.iter().sum::<u32>(), 63);
//! ```

pub mod adaptive;
pub mod analysis;
pub mod config;
pub mod evaluator;
pub mod leaf_parallel;
pub mod local;
pub mod noise;
pub mod pool;
pub mod result;
pub mod reuse;
pub mod root_parallel;
pub mod serial;
pub mod shared;
pub mod speculative;
pub mod tree;

pub use adaptive::{AdaptiveSearch, Scheme};
pub use config::{LockKind, MctsConfig, VirtualLoss};
pub use evaluator::{AccelEvaluator, Evaluator, NnEvaluator, UniformEvaluator};
pub use noise::RootNoise;
pub use result::{SearchResult, SearchScheme, SearchStats};
pub use reuse::ReusableSearch;
pub use speculative::SpeculativeSearch;
