//! Speculative DNN-MCTS baseline (after SpecMCTS, Kim et al. 2021 — §2.2).
//!
//! SpecMCTS keeps the sequential in-tree discipline but hides the main
//! model's evaluation latency behind a cheap *speculative* model: the tree
//! is expanded immediately with the fast model's output so selection can
//! continue, and the main model's (slower, better) result later *corrects*
//! the speculatively expanded node — priors are overwritten and the value
//! difference is propagated to the ancestors without extra visits.
//!
//! This serial implementation models that pipeline algorithmically: every
//! leaf is first expanded with the speculative evaluator; once
//! `commit_batch` expansions accumulate, the main evaluator re-scores them
//! **in one [`BatchEvaluator::evaluate_batch`] call** and
//! [`crate::tree::Tree::correct_expansion`] applies the deltas. With
//! `commit_batch = 1` the correction is immediate (maximum fidelity); larger
//! batches model a deeper pipeline (staler corrections, fewer main-model
//! synchronization points) and amortize the main model's per-call cost —
//! the same batching economics as the accelerator queue.

use crate::budget::{Budget, RootSlot, RunGate, StepOutcome};
use crate::config::MctsConfig;
use crate::evaluator::{BatchEvaluator, EvalOutput};
use crate::result::{SearchResult, SearchScheme, SearchStats};
use crate::tree::{mask_and_normalize, SelectOutcome, Tree};
use games::Game;
use std::sync::Arc;
use std::time::Instant;

/// A pending main-model re-evaluation of a speculatively expanded leaf.
struct PendingCorrection {
    leaf: u32,
    encoded: Vec<f32>,
    spec_value: f32,
}

/// Resumable-run state of a speculative search. Pending corrections
/// survive step boundaries; they are flushed when the run finishes.
struct SpecRun {
    tree: Tree,
    stats: SearchStats,
    gate: RunGate,
    action_space: usize,
    pending: Vec<PendingCorrection>,
}

/// Serial search with speculative expansion and deferred main-model
/// correction.
pub struct SpeculativeSearch {
    cfg: MctsConfig,
    /// The accurate (slow) model; its outputs are authoritative.
    main: Arc<dyn BatchEvaluator>,
    /// The cheap model used to keep the tree moving.
    spec: Arc<dyn BatchEvaluator>,
    /// Corrections are committed in batches of this size.
    commit_batch: usize,
    /// Total corrections applied over this searcher's lifetime.
    pub corrections: u64,
    /// Accumulated |v_main − v_spec| over all corrections (speculation
    /// quality diagnostic; large values mean the cheap model misleads).
    pub correction_magnitude: f64,
    encode_buf: Vec<f32>,
    root: RootSlot,
    run: Option<SpecRun>,
}

impl SpeculativeSearch {
    /// Create a speculative searcher. `commit_batch` must be ≥ 1.
    pub fn new(
        cfg: MctsConfig,
        main: Arc<dyn BatchEvaluator>,
        spec: Arc<dyn BatchEvaluator>,
        commit_batch: usize,
    ) -> Self {
        cfg.validate();
        assert!(commit_batch >= 1, "commit batch must be positive");
        assert_eq!(
            main.action_space(),
            spec.action_space(),
            "models must share an action space"
        );
        SpeculativeSearch {
            cfg,
            main,
            spec,
            commit_batch,
            corrections: 0,
            correction_magnitude: 0.0,
            encode_buf: Vec::new(),
            root: RootSlot::new(),
            run: None,
        }
    }

    fn commit(&mut self, tree: &mut Tree, pending: &mut Vec<PendingCorrection>) {
        if pending.is_empty() {
            return;
        }
        // One batched main-model forward re-scores the whole pipeline
        // window.
        let inputs: Vec<&[f32]> = pending.iter().map(|p| p.encoded.as_slice()).collect();
        let mut rescored = vec![EvalOutput::default(); pending.len()];
        self.main.evaluate_batch(&inputs, &mut rescored);
        for (p, o) in pending.drain(..).zip(rescored) {
            let legal = tree.child_actions(p.leaf);
            if legal.is_empty() {
                // Terminal discovered before the correction landed.
                continue;
            }
            let masked = mask_and_normalize(&o.priors, &legal);
            let dv = o.value - p.spec_value;
            tree.correct_expansion(p.leaf, &masked, dv);
            self.corrections += 1;
            self.correction_magnitude += dv.abs() as f64;
        }
    }
}

impl<G: Game> SearchScheme<G> for SpeculativeSearch {
    fn begin(&mut self, root: &G, budget: Budget) {
        SearchScheme::<G>::cancel(self);
        let run_cfg = budget.apply_to(&self.cfg);
        self.root.store(root);
        self.encode_buf.resize(root.encoded_len(), 0.0);
        self.run = Some(SpecRun {
            tree: Tree::new(run_cfg),
            stats: SearchStats::default(),
            gate: RunGate::new(&self.cfg, &budget, root.status().is_terminal()),
            action_space: root.action_space(),
            pending: Vec::with_capacity(self.commit_batch),
        });
    }

    fn step(&mut self, quota: usize) -> StepOutcome {
        let Some(mut run) = self.run.take() else {
            return StepOutcome::Done;
        };
        let step_start = Instant::now();
        let mut used = 0usize;
        while used < quota && !run.gate.exhausted() {
            let mut game = self.root.get::<G>().clone();
            let t0 = Instant::now();
            let (leaf, outcome) = run.tree.select(&mut game);
            run.stats.select_ns += t0.elapsed().as_nanos() as u64;
            match outcome {
                SelectOutcome::TerminalBackedUp => {}
                SelectOutcome::NeedsEval => {
                    let t1 = Instant::now();
                    game.encode(&mut self.encode_buf);
                    let o = self.spec.evaluate_one(&self.encode_buf);
                    run.stats.eval_ns += t1.elapsed().as_nanos() as u64;
                    let t2 = Instant::now();
                    run.tree.expand_and_backup(leaf, &o.priors, o.value);
                    run.stats.backup_ns += t2.elapsed().as_nanos() as u64;
                    run.pending.push(PendingCorrection {
                        leaf,
                        encoded: self.encode_buf.clone(),
                        spec_value: o.value,
                    });
                    if run.pending.len() >= self.commit_batch {
                        let t3 = Instant::now();
                        self.commit(&mut run.tree, &mut run.pending);
                        run.stats.eval_ns += t3.elapsed().as_nanos() as u64;
                    }
                }
                SelectOutcome::Busy => unreachable!("serial speculative search"),
            }
            used += 1;
            run.gate.done += 1;
            run.stats.playouts += 1;
        }
        let outcome = if run.gate.exhausted() {
            // Flush outstanding corrections so the final statistics
            // reflect the main model everywhere.
            let t3 = Instant::now();
            self.commit(&mut run.tree, &mut run.pending);
            run.stats.eval_ns += t3.elapsed().as_nanos() as u64;
            debug_assert_eq!(run.tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            run.tree.check_invariants();
            StepOutcome::Done
        } else {
            StepOutcome::Running
        };
        run.gate.note_step(step_start);
        self.run = Some(run);
        outcome
    }

    fn partial_result(&self) -> SearchResult {
        let Some(run) = &self.run else {
            return SearchResult::default();
        };
        let (visits, probs, value) = run.tree.action_prior(run.action_space);
        let mut stats = run.stats;
        stats.move_ns = run.gate.active_ns;
        stats.seq = run.gate.seq();
        stats.nodes = run.tree.len() as u64;
        SearchResult {
            probs,
            visits,
            value,
            stats,
        }
    }

    fn cancel(&mut self) {
        if let Some(mut run) = self.run.take() {
            // Commit what the pipeline holds so the lifetime correction
            // counters stay meaningful, then drop the run's tree.
            self.commit(&mut run.tree, &mut run.pending);
            debug_assert_eq!(run.tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            run.tree.check_invariants();
        }
    }

    fn name(&self) -> &'static str {
        "speculative"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{Evaluator, UniformEvaluator};
    use crate::serial::SerialSearch;
    use games::tictactoe::TicTacToe;

    /// An evaluator with a fixed bias toward one action and a fixed value.
    struct Biased {
        actions: usize,
        input_len: usize,
        hot: usize,
        value: f32,
    }
    impl Evaluator for Biased {
        fn input_len(&self) -> usize {
            self.input_len
        }
        fn action_space(&self) -> usize {
            self.actions
        }
        fn evaluate(&self, _input: &[f32]) -> (Vec<f32>, f32) {
            let mut p = vec![0.05 / (self.actions as f32 - 1.0); self.actions];
            p[self.hot] = 0.95;
            (p, self.value)
        }
    }

    fn uniform() -> Arc<UniformEvaluator> {
        Arc::new(UniformEvaluator::for_game(&TicTacToe::new()))
    }

    #[test]
    fn identical_models_match_serial_search() {
        let cfg = MctsConfig {
            playouts: 100,
            ..Default::default()
        };
        let mut spec = SpeculativeSearch::new(cfg, uniform(), uniform(), 4);
        let mut serial = SerialSearch::new(cfg, uniform());
        let g = TicTacToe::new();
        let rs = SearchScheme::<TicTacToe>::search(&mut spec, &g);
        let rr = serial.search(&g);
        assert_eq!(rs.visits, rr.visits, "zero-delta corrections are inert");
        assert!(spec.corrections > 0);
        assert!(spec.correction_magnitude < 1e-6);
    }

    #[test]
    fn corrections_move_value_toward_main_model() {
        let cfg = MctsConfig {
            playouts: 50,
            ..Default::default()
        };
        // Spec model says 0.0 everywhere; main model says +0.8.
        let main = Arc::new(Biased {
            actions: 9,
            input_len: 36,
            hot: 4,
            value: 0.8,
        });
        let mut s = SpeculativeSearch::new(cfg, main, uniform(), 1);
        let r = SearchScheme::<TicTacToe>::search(&mut s, &TicTacToe::new());
        assert!(s.corrections >= 50 - 1, "every expansion corrected");
        assert!(s.correction_magnitude > 0.0);
        // Root value reflects the main model's optimism (sign-flipped
        // perspectives alternate, so just check it moved off zero).
        assert!(
            r.value.abs() > 0.05,
            "value {} should be displaced",
            r.value
        );
    }

    #[test]
    fn batched_commit_defers_but_flushes() {
        let cfg = MctsConfig {
            playouts: 10,
            ..Default::default()
        };
        let mut s = SpeculativeSearch::new(cfg, uniform(), uniform(), 64);
        let _ = SearchScheme::<TicTacToe>::search(&mut s, &TicTacToe::new());
        // Batch (64) exceeds playouts (10): all corrections land in the
        // final flush.
        assert!(s.corrections >= 9, "flush must commit stragglers");
    }

    #[test]
    fn playout_budget_respected() {
        let cfg = MctsConfig {
            playouts: 77,
            ..Default::default()
        };
        let mut s = SpeculativeSearch::new(cfg, uniform(), uniform(), 8);
        let r = SearchScheme::<TicTacToe>::search(&mut s, &TicTacToe::new());
        assert_eq!(r.stats.playouts, 77);
    }

    #[test]
    #[should_panic(expected = "commit batch")]
    fn zero_commit_batch_rejected() {
        let cfg = MctsConfig::default();
        let _ = SpeculativeSearch::new(cfg, uniform(), uniform(), 0);
    }

    #[test]
    fn finds_immediate_win_despite_bad_speculation() {
        // Spec model is uniform (uninformative); main model should still
        // steer the search to the winning move via corrections.
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let cfg = MctsConfig {
            playouts: 400,
            ..Default::default()
        };
        let mut s = SpeculativeSearch::new(cfg, uniform(), uniform(), 4);
        let r = SearchScheme::<TicTacToe>::search(&mut s, &g);
        assert_eq!(r.best_action(), 2, "visits {:?}", r.visits);
    }
}
