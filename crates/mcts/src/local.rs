//! The local-tree parallel scheme (§3.1.2, Algorithm 3).
//!
//! A single **master thread** (the caller of [`LocalTreeSearch::search`])
//! owns the complete tree in its local memory and executes *all* in-tree
//! operations — Node Selection, Expansion and BackUp — with no locks.
//! Evaluation flows through an [`EvalClient`]: the master submits each
//! selected leaf as a ticket and opportunistically drains completions
//! (expansion + backup) while more leaves stay in flight.
//!
//! Two backends realize Algorithm 3's FIFO pipes:
//!
//! * **CPU** ([`LocalTreeSearch::new`]) — `N` inference worker threads
//!   serve batches assembled by the client (batch size follows the
//!   evaluator's [`crate::BatchEvaluator::preferred_batch`] hint);
//! * **accelerator** ([`LocalTreeSearch::with_device`]) — tickets feed
//!   the device queue *directly* through its async submit/poll
//!   interface; no per-leaf threads exist at all, and the device's own
//!   streams assemble the hardware batches (§3.3).
//!
//! The master runs the `rollout_n_times` loop: select a leaf, ship its
//! encoding, drain whatever finished. When the in-flight budget is
//! exhausted — or selection lands on a leaf whose evaluation is still
//! pending — the master blocks on the next completion (Algorithm 3,
//! lines 12–13).

use crate::budget::{Budget, RootSlot, RunGate, StepOutcome};
use crate::client::EvalClient;
use crate::config::MctsConfig;
use crate::evaluator::BatchEvaluator;
use crate::result::{SearchResult, SearchScheme, SearchStats};
use crate::tree::{SelectOutcome, Tree};
use accel::Device;
use games::Game;
use std::sync::Arc;
use std::time::Instant;

/// Resumable-run state of a local-tree search. Unlike the serial-family
/// schemes, leaves may stay **in flight across step boundaries** — the
/// pipeline keeps filling device/worker batches while the session is
/// parked — so [`LocalTreeSearch::in_flight`] can be non-zero between
/// steps; `cancel` drains and applies those completions before tearing
/// the run down.
struct LocalRun {
    tree: Tree,
    stats: SearchStats,
    gate: RunGate,
    action_space: usize,
    issued: u64,
}

/// Master-thread local-tree search over an [`EvalClient`].
pub struct LocalTreeSearch {
    cfg: MctsConfig,
    client: EvalClient,
    encode_buf: Vec<f32>,
    root: RootSlot,
    run: Option<LocalRun>,
}

impl LocalTreeSearch {
    /// CPU configuration: `cfg.workers` inference threads (paper's `N`;
    /// the master is the `N+1`-th thread).
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        cfg.validate();
        LocalTreeSearch {
            client: EvalClient::threaded(evaluator, cfg.workers),
            cfg,
            encode_buf: Vec::new(),
            root: RootSlot::new(),
            run: None,
        }
    }

    /// Accelerator configuration: leaves go straight into `device`'s
    /// request queue; completions are polled, never blocked on
    /// per-request. In-flight budget is `max(workers, device batch)` so
    /// the device can always fill a batch.
    pub fn with_device(cfg: MctsConfig, device: Arc<Device>) -> Self {
        cfg.validate();
        let cap = cfg.workers.max(device.batch_size());
        LocalTreeSearch {
            client: EvalClient::for_device(device, cap),
            cfg,
            encode_buf: Vec::new(),
            root: RootSlot::new(),
            run: None,
        }
    }

    /// Build over an explicit client (tests, custom backends).
    pub fn with_client(cfg: MctsConfig, client: EvalClient) -> Self {
        cfg.validate();
        LocalTreeSearch {
            cfg,
            client,
            encode_buf: Vec::new(),
            root: RootSlot::new(),
            run: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MctsConfig {
        &self.cfg
    }

    /// Leaves currently in flight through the evaluation pipe (may be
    /// non-zero between `step` calls — the pipeline spans steps).
    pub fn in_flight(&self) -> usize {
        self.client.in_flight()
    }

    /// Gather one completion (blocking) and apply it to the run's tree.
    fn process_one(client: &mut EvalClient, run: &mut LocalRun) {
        let done = client.gather();
        Self::apply(run, done);
    }

    /// Expansion/backup of one completed evaluation (the tag carries the
    /// leaf id back).
    fn apply(run: &mut LocalRun, done: crate::client::Completion) {
        let t = Instant::now();
        run.tree.expand_and_backup(
            done.ticket.tag as u32,
            &done.output.priors,
            done.output.value,
        );
        run.stats.backup_ns += t.elapsed().as_nanos() as u64;
        run.gate.done += 1;
        run.stats.playouts += 1;
    }
}

impl<G: Game> SearchScheme<G> for LocalTreeSearch {
    fn begin(&mut self, root: &G, budget: Budget) {
        SearchScheme::<G>::cancel(self);
        debug_assert_eq!(self.client.in_flight(), 0);
        let run_cfg = budget.apply_to(&self.cfg);
        self.client.reset_eval_ns();
        self.root.store(root);
        self.encode_buf.resize(root.encoded_len(), 0.0);
        self.run = Some(LocalRun {
            tree: Tree::new(run_cfg),
            stats: SearchStats::default(),
            gate: RunGate::new(&self.cfg, &budget, root.status().is_terminal()),
            action_space: root.action_space(),
            issued: 0,
        });
    }

    fn step(&mut self, quota: usize) -> StepOutcome {
        let Some(mut run) = self.run.take() else {
            return StepOutcome::Done;
        };
        let step_start = Instant::now();
        let cap = self.client.capacity();
        let target = run.gate.target();
        let until = run.gate.done.saturating_add(quota as u64).min(target);

        while run.gate.done < until && !run.gate.out_of_time() {
            if run.issued < target {
                let mut game = self.root.get::<G>().clone();
                let t0 = Instant::now();
                let (leaf, outcome) = run.tree.select(&mut game);
                run.stats.select_ns += t0.elapsed().as_nanos() as u64;
                match outcome {
                    SelectOutcome::TerminalBackedUp => {
                        run.issued += 1;
                        run.gate.done += 1;
                        run.stats.playouts += 1;
                    }
                    SelectOutcome::NeedsEval => {
                        game.encode(&mut self.encode_buf);
                        // Ticket into the FIFO pipe; the tag carries the
                        // leaf id back with the completion.
                        self.client.submit(leaf as u64, &self.encode_buf);
                        run.issued += 1;
                    }
                    SelectOutcome::Busy => {
                        // Selection hit an in-flight leaf; wait for one
                        // result so the tree gains information, then retry.
                        run.stats.collisions += 1;
                        assert!(
                            self.client.in_flight() > 0,
                            "busy leaf with nothing in flight"
                        );
                        Self::process_one(&mut self.client, &mut run);
                    }
                }
            }
            // Algorithm 3 lines 12-13: block while the pipe is saturated.
            while self.client.in_flight() >= cap
                || (run.issued >= target && self.client.in_flight() > 0)
            {
                Self::process_one(&mut self.client, &mut run);
            }
            // Opportunistic non-blocking drain keeps the tree fresh.
            while let Some(done) = self.client.try_gather() {
                Self::apply(&mut run, done);
            }
        }
        let outcome = if run.gate.exhausted() {
            // Finished (budget or deadline): drain the pipe so the run
            // ends with every virtual loss released.
            while self.client.in_flight() > 0 {
                Self::process_one(&mut self.client, &mut run);
            }
            debug_assert_eq!(run.tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            run.tree.check_invariants();
            StepOutcome::Done
        } else {
            // Quota boundary: leaves stay in flight so the pipeline keeps
            // its depth while the session is parked.
            StepOutcome::Running
        };
        run.gate.note_step(step_start);
        self.run = Some(run);
        outcome
    }

    fn partial_result(&self) -> SearchResult {
        let Some(run) = &self.run else {
            return SearchResult::default();
        };
        let (visits, probs, value) = run.tree.action_prior(run.action_space);
        let mut stats = run.stats;
        stats.eval_ns = self.client.eval_ns();
        stats.move_ns = run.gate.active_ns;
        stats.seq = run.gate.seq();
        stats.nodes = run.tree.len() as u64;
        SearchResult {
            probs,
            visits,
            value,
            stats,
        }
    }

    fn cancel(&mut self) {
        if let Some(mut run) = self.run.take() {
            // Drain and apply everything in flight: completions release
            // their virtual loss, so the tree is consistent when dropped
            // (and the walk below can prove it).
            while self.client.in_flight() > 0 {
                Self::process_one(&mut self.client, &mut run);
            }
            debug_assert_eq!(run.tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            run.tree.check_invariants();
        }
    }

    fn name(&self) -> &'static str {
        "local-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{DelayedEvaluator, UniformEvaluator};
    use games::tictactoe::TicTacToe;
    use games::Game;
    use std::time::Duration;

    fn cfg(playouts: usize, workers: usize) -> MctsConfig {
        MctsConfig {
            playouts,
            workers,
            ..Default::default()
        }
    }

    #[test]
    fn completes_exact_playout_budget() {
        let mut s = LocalTreeSearch::new(
            cfg(200, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 200);
        assert_eq!(r.visits.iter().sum::<u32>(), 199);
    }

    #[test]
    fn finds_immediate_win_with_parallel_workers() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = LocalTreeSearch::new(
            cfg(400, 8),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2, "visits {:?}", r.visits);
    }

    #[test]
    fn single_worker_matches_serial_statistics_shape() {
        // With 1 worker the local scheme is nearly serial; the visit
        // distribution must still be a proper distribution.
        let mut s = LocalTreeSearch::new(
            cfg(100, 1),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 100);
        assert!((r.probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn eval_delay_is_overlapped_across_workers() {
        // 32 playouts × 5 ms serial eval = 160 ms; with 8 workers the
        // evals overlap, so the move must take well under the serial time.
        let eval = DelayedEvaluator::new(
            UniformEvaluator::for_game(&TicTacToe::new()),
            Duration::from_millis(5),
        );
        let mut s = LocalTreeSearch::new(cfg(32, 8), Arc::new(eval));
        let t0 = Instant::now();
        let r = s.search(&TicTacToe::new());
        let elapsed = t0.elapsed();
        assert_eq!(r.stats.playouts, 32);
        assert!(
            elapsed < Duration::from_millis(120),
            "no overlap: {elapsed:?}"
        );
    }

    #[test]
    fn terminal_root_returns_empty() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4, 2] {
            g.apply(a);
        }
        assert!(g.status().is_terminal());
        let mut s = LocalTreeSearch::new(
            cfg(10, 2),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.visits.iter().sum::<u32>(), 0);
    }

    #[test]
    fn stats_record_eval_time() {
        let eval = DelayedEvaluator::new(
            UniformEvaluator::for_game(&TicTacToe::new()),
            Duration::from_micros(500),
        );
        let mut s = LocalTreeSearch::new(cfg(20, 2), Arc::new(eval));
        let r = s.search(&TicTacToe::new());
        assert!(r.stats.eval_ns > 0);
        assert!(r.stats.move_ns > 0);
    }

    #[test]
    fn many_workers_small_budget() {
        // More workers than playouts must not deadlock or overrun.
        let mut s = LocalTreeSearch::new(
            cfg(5, 16),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 5);
    }

    #[test]
    fn reusable_across_moves() {
        let mut s = LocalTreeSearch::new(
            cfg(60, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let mut g = TicTacToe::new();
        for _ in 0..3 {
            let r = s.search(&g);
            g.apply(r.best_action());
        }
        assert_eq!(g.move_count(), 3);
    }

    #[test]
    fn device_backend_drives_search_without_worker_threads() {
        use accel::{Device, DeviceConfig};
        use nn::{NetConfig, PolicyValueNet};
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 6));
        let dev = Arc::new(Device::new(net, DeviceConfig::instant(4)));
        let mut s = LocalTreeSearch::with_device(cfg(120, 4), Arc::clone(&dev));
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 120);
        let stats = dev.stats();
        assert!(stats.samples >= 100);
        assert!(stats.max_batch >= 2, "device batching never engaged");
    }
}
