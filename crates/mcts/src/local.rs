//! The local-tree parallel scheme (§3.1.2, Algorithm 3).
//!
//! A single **master thread** (the caller of [`LocalTreeSearch::search`])
//! owns the complete tree in its local memory and executes *all* in-tree
//! operations — Node Selection, Expansion and BackUp — with no locks. `N`
//! **worker threads** are dedicated exclusively to node evaluation (DNN
//! inference); the master communicates with them through FIFO channels
//! (the paper's "communication pipes").
//!
//! The master runs the `rollout_n_times` loop: it repeatedly selects a
//! leaf, ships an evaluation request to the pool, and opportunistically
//! drains completed evaluations (expansion + backup). When all `N` workers
//! are occupied — or when selection lands on a leaf whose evaluation is
//! still in flight — the master blocks on the result pipe (Algorithm 3,
//! lines 12–13).

use crate::config::MctsConfig;
use crate::evaluator::Evaluator;
use crate::pool::WorkerPool;
use crate::result::{SearchResult, SearchScheme, SearchStats};
use crate::tree::{SelectOutcome, Tree};
use crossbeam::channel::unbounded;
use games::Game;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Master/worker local-tree search.
pub struct LocalTreeSearch {
    cfg: MctsConfig,
    evaluator: Arc<dyn Evaluator>,
    pool: WorkerPool,
    eval_ns: Arc<AtomicU64>,
}

/// A completed evaluation flowing back through the result pipe.
struct EvalDone {
    leaf: u32,
    priors: Vec<f32>,
    value: f32,
}

impl LocalTreeSearch {
    /// Spawn the worker pool (`cfg.workers` threads, paper's `N`; the
    /// master is the `N+1`-th thread).
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn Evaluator>) -> Self {
        cfg.validate();
        LocalTreeSearch {
            pool: WorkerPool::new(cfg.workers),
            cfg,
            evaluator,
            eval_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MctsConfig {
        &self.cfg
    }
}

impl<G: Game> SearchScheme<G> for LocalTreeSearch {
    fn search(&mut self, root: &G) -> SearchResult {
        let move_start = Instant::now();
        let mut tree = Tree::new(self.cfg);
        let mut stats = SearchStats::default();
        self.eval_ns.store(0, Ordering::Relaxed);

        if root.status().is_terminal() {
            return empty_result(root.action_space());
        }

        let (res_tx, res_rx) = unbounded::<EvalDone>();
        let n = self.cfg.workers;
        let playouts = self.cfg.playouts;
        let mut issued = 0usize;
        let mut completed = 0usize;
        let mut in_flight = 0usize;
        let mut encode_buf = vec![0.0f32; root.encoded_len()];

        // One blocking receive + expansion/backup of the result.
        let process_one = |tree: &mut Tree,
                               stats: &mut SearchStats,
                               completed: &mut usize,
                               in_flight: &mut usize| {
            let done = res_rx.recv().expect("worker pool alive");
            let t = Instant::now();
            tree.expand_and_backup(done.leaf, &done.priors, done.value);
            stats.backup_ns += t.elapsed().as_nanos() as u64;
            *completed += 1;
            *in_flight -= 1;
        };

        while completed < playouts {
            if issued < playouts {
                let mut game = root.clone();
                let t0 = Instant::now();
                let (leaf, outcome) = tree.select(&mut game);
                stats.select_ns += t0.elapsed().as_nanos() as u64;
                match outcome {
                    SelectOutcome::TerminalBackedUp => {
                        issued += 1;
                        completed += 1;
                    }
                    SelectOutcome::NeedsEval => {
                        game.encode(&mut encode_buf);
                        let input = encode_buf.clone();
                        let tx = res_tx.clone();
                        let eval = Arc::clone(&self.evaluator);
                        let eval_ns = Arc::clone(&self.eval_ns);
                        // Ship to the worker pool (FIFO pipe). The worker
                        // runs only the DNN inference.
                        self.pool.submit(move || {
                            let t = Instant::now();
                            let (priors, value) = eval.evaluate(&input);
                            eval_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            let _ = tx.send(EvalDone { leaf, priors, value });
                        });
                        issued += 1;
                        in_flight += 1;
                    }
                    SelectOutcome::Busy => {
                        // Selection hit an in-flight leaf; wait for one
                        // result so the tree gains information, then retry.
                        stats.collisions += 1;
                        assert!(in_flight > 0, "busy leaf with nothing in flight");
                        process_one(&mut tree, &mut stats, &mut completed, &mut in_flight);
                    }
                }
            }
            // Algorithm 3 lines 12-13: block while the pool is saturated.
            while in_flight >= n || (issued >= playouts && in_flight > 0) {
                process_one(&mut tree, &mut stats, &mut completed, &mut in_flight);
            }
            // Opportunistic non-blocking drain keeps the tree fresh.
            while let Ok(done) = res_rx.try_recv() {
                let t = Instant::now();
                tree.expand_and_backup(done.leaf, &done.priors, done.value);
                stats.backup_ns += t.elapsed().as_nanos() as u64;
                completed += 1;
                in_flight -= 1;
            }
        }

        debug_assert_eq!(in_flight, 0);
        debug_assert_eq!(tree.outstanding_vl(), 0);
        let (visits, probs, value) = tree.action_prior(root.action_space());
        stats.playouts = completed as u64;
        stats.eval_ns = self.eval_ns.load(Ordering::Relaxed);
        stats.move_ns = move_start.elapsed().as_nanos() as u64;
        stats.nodes = tree.len() as u64;
        SearchResult {
            probs,
            visits,
            value,
            stats,
        }
    }

    fn name(&self) -> &'static str {
        "local-tree"
    }
}

pub(crate) fn empty_result(action_space: usize) -> SearchResult {
    SearchResult {
        probs: vec![0.0; action_space],
        visits: vec![0; action_space],
        value: 0.0,
        stats: SearchStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{DelayedEvaluator, UniformEvaluator};
    use games::tictactoe::TicTacToe;
    use games::Game;
    use std::time::Duration;

    fn cfg(playouts: usize, workers: usize) -> MctsConfig {
        MctsConfig {
            playouts,
            workers,
            ..Default::default()
        }
    }

    #[test]
    fn completes_exact_playout_budget() {
        let mut s = LocalTreeSearch::new(
            cfg(200, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 200);
        assert_eq!(r.visits.iter().sum::<u32>(), 199);
    }

    #[test]
    fn finds_immediate_win_with_parallel_workers() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = LocalTreeSearch::new(
            cfg(400, 8),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2, "visits {:?}", r.visits);
    }

    #[test]
    fn single_worker_matches_serial_statistics_shape() {
        // With 1 worker the local scheme is nearly serial; the visit
        // distribution must still be a proper distribution.
        let mut s = LocalTreeSearch::new(
            cfg(100, 1),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 100);
        assert!((r.probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn eval_delay_is_overlapped_across_workers() {
        // 32 playouts × 5 ms serial eval = 160 ms; with 8 workers the
        // evals overlap, so the move must take well under the serial time.
        let eval = DelayedEvaluator::new(
            UniformEvaluator::for_game(&TicTacToe::new()),
            Duration::from_millis(5),
        );
        let mut s = LocalTreeSearch::new(cfg(32, 8), Arc::new(eval));
        let t0 = Instant::now();
        let r = s.search(&TicTacToe::new());
        let elapsed = t0.elapsed();
        assert_eq!(r.stats.playouts, 32);
        assert!(
            elapsed < Duration::from_millis(120),
            "no overlap: {elapsed:?}"
        );
    }

    #[test]
    fn terminal_root_returns_empty() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4, 2] {
            g.apply(a);
        }
        assert!(g.status().is_terminal());
        let mut s = LocalTreeSearch::new(
            cfg(10, 2),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.visits.iter().sum::<u32>(), 0);
    }

    #[test]
    fn stats_record_eval_time() {
        let eval = DelayedEvaluator::new(
            UniformEvaluator::for_game(&TicTacToe::new()),
            Duration::from_micros(500),
        );
        let mut s = LocalTreeSearch::new(cfg(20, 2), Arc::new(eval));
        let r = s.search(&TicTacToe::new());
        assert!(r.stats.eval_ns > 0);
        assert!(r.stats.move_ns > 0);
    }

    #[test]
    fn many_workers_small_budget() {
        // More workers than playouts must not deadlock or overrun.
        let mut s = LocalTreeSearch::new(
            cfg(5, 16),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 5);
    }

    #[test]
    fn reusable_across_moves() {
        let mut s = LocalTreeSearch::new(
            cfg(60, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let mut g = TicTacToe::new();
        for _ in 0..3 {
            let r = s.search(&g);
            g.apply(r.best_action());
        }
        assert_eq!(g.move_count(), 3);
    }
}
