//! The local-tree parallel scheme (§3.1.2, Algorithm 3).
//!
//! A single **master thread** (the caller of [`LocalTreeSearch::search`])
//! owns the complete tree in its local memory and executes *all* in-tree
//! operations — Node Selection, Expansion and BackUp — with no locks.
//! Evaluation flows through an [`EvalClient`]: the master submits each
//! selected leaf as a ticket and opportunistically drains completions
//! (expansion + backup) while more leaves stay in flight.
//!
//! Two backends realize Algorithm 3's FIFO pipes:
//!
//! * **CPU** ([`LocalTreeSearch::new`]) — `N` inference worker threads
//!   serve batches assembled by the client (batch size follows the
//!   evaluator's [`crate::BatchEvaluator::preferred_batch`] hint);
//! * **accelerator** ([`LocalTreeSearch::with_device`]) — tickets feed
//!   the device queue *directly* through its async submit/poll
//!   interface; no per-leaf threads exist at all, and the device's own
//!   streams assemble the hardware batches (§3.3).
//!
//! The master runs the `rollout_n_times` loop: select a leaf, ship its
//! encoding, drain whatever finished. When the in-flight budget is
//! exhausted — or selection lands on a leaf whose evaluation is still
//! pending — the master blocks on the next completion (Algorithm 3,
//! lines 12–13).

use crate::client::EvalClient;
use crate::config::MctsConfig;
use crate::evaluator::BatchEvaluator;
use crate::result::{SearchResult, SearchScheme, SearchStats};
use crate::tree::{SelectOutcome, Tree};
use accel::Device;
use games::Game;
use std::sync::Arc;
use std::time::Instant;

/// Master-thread local-tree search over an [`EvalClient`].
pub struct LocalTreeSearch {
    cfg: MctsConfig,
    client: EvalClient,
}

impl LocalTreeSearch {
    /// CPU configuration: `cfg.workers` inference threads (paper's `N`;
    /// the master is the `N+1`-th thread).
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        cfg.validate();
        LocalTreeSearch {
            client: EvalClient::threaded(evaluator, cfg.workers),
            cfg,
        }
    }

    /// Accelerator configuration: leaves go straight into `device`'s
    /// request queue; completions are polled, never blocked on
    /// per-request. In-flight budget is `max(workers, device batch)` so
    /// the device can always fill a batch.
    pub fn with_device(cfg: MctsConfig, device: Arc<Device>) -> Self {
        cfg.validate();
        let cap = cfg.workers.max(device.batch_size());
        LocalTreeSearch {
            client: EvalClient::for_device(device, cap),
            cfg,
        }
    }

    /// Build over an explicit client (tests, custom backends).
    pub fn with_client(cfg: MctsConfig, client: EvalClient) -> Self {
        cfg.validate();
        LocalTreeSearch { cfg, client }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MctsConfig {
        &self.cfg
    }
}

impl<G: Game> SearchScheme<G> for LocalTreeSearch {
    fn search(&mut self, root: &G) -> SearchResult {
        let move_start = Instant::now();
        let mut tree = Tree::new(self.cfg);
        let mut stats = SearchStats::default();
        self.client.reset_eval_ns();

        if root.status().is_terminal() {
            return empty_result(root.action_space());
        }

        let cap = self.client.capacity();
        let playouts = self.cfg.playouts;
        let mut issued = 0usize;
        let mut completed = 0usize;
        let mut encode_buf = vec![0.0f32; root.encoded_len()];

        // Expansion/backup of one completed evaluation (the tag carries
        // the leaf id back).
        let apply = |tree: &mut Tree,
                     stats: &mut SearchStats,
                     completed: &mut usize,
                     done: crate::client::Completion| {
            let t = Instant::now();
            tree.expand_and_backup(
                done.ticket.tag as u32,
                &done.output.priors,
                done.output.value,
            );
            stats.backup_ns += t.elapsed().as_nanos() as u64;
            *completed += 1;
        };
        // One blocking gather + apply.
        let process_one = |client: &mut EvalClient,
                           tree: &mut Tree,
                           stats: &mut SearchStats,
                           completed: &mut usize| {
            let done = client.gather();
            apply(tree, stats, completed, done);
        };

        while completed < playouts {
            if issued < playouts {
                let mut game = root.clone();
                let t0 = Instant::now();
                let (leaf, outcome) = tree.select(&mut game);
                stats.select_ns += t0.elapsed().as_nanos() as u64;
                match outcome {
                    SelectOutcome::TerminalBackedUp => {
                        issued += 1;
                        completed += 1;
                    }
                    SelectOutcome::NeedsEval => {
                        game.encode(&mut encode_buf);
                        // Ticket into the FIFO pipe; the tag carries the
                        // leaf id back with the completion.
                        self.client.submit(leaf as u64, &encode_buf);
                        issued += 1;
                    }
                    SelectOutcome::Busy => {
                        // Selection hit an in-flight leaf; wait for one
                        // result so the tree gains information, then retry.
                        stats.collisions += 1;
                        assert!(
                            self.client.in_flight() > 0,
                            "busy leaf with nothing in flight"
                        );
                        process_one(&mut self.client, &mut tree, &mut stats, &mut completed);
                    }
                }
            }
            // Algorithm 3 lines 12-13: block while the pipe is saturated.
            while self.client.in_flight() >= cap
                || (issued >= playouts && self.client.in_flight() > 0)
            {
                process_one(&mut self.client, &mut tree, &mut stats, &mut completed);
            }
            // Opportunistic non-blocking drain keeps the tree fresh.
            while let Some(done) = self.client.try_gather() {
                apply(&mut tree, &mut stats, &mut completed, done);
            }
        }

        debug_assert_eq!(self.client.in_flight(), 0);
        debug_assert_eq!(tree.outstanding_vl(), 0);
        #[cfg(feature = "invariants")]
        tree.check_invariants();
        let (visits, probs, value) = tree.action_prior(root.action_space());
        stats.playouts = completed as u64;
        stats.eval_ns = self.client.eval_ns();
        stats.move_ns = move_start.elapsed().as_nanos() as u64;
        stats.nodes = tree.len() as u64;
        SearchResult {
            probs,
            visits,
            value,
            stats,
        }
    }

    fn name(&self) -> &'static str {
        "local-tree"
    }
}

pub(crate) fn empty_result(action_space: usize) -> SearchResult {
    SearchResult {
        probs: vec![0.0; action_space],
        visits: vec![0; action_space],
        value: 0.0,
        stats: SearchStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{DelayedEvaluator, UniformEvaluator};
    use games::tictactoe::TicTacToe;
    use games::Game;
    use std::time::Duration;

    fn cfg(playouts: usize, workers: usize) -> MctsConfig {
        MctsConfig {
            playouts,
            workers,
            ..Default::default()
        }
    }

    #[test]
    fn completes_exact_playout_budget() {
        let mut s = LocalTreeSearch::new(
            cfg(200, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 200);
        assert_eq!(r.visits.iter().sum::<u32>(), 199);
    }

    #[test]
    fn finds_immediate_win_with_parallel_workers() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = LocalTreeSearch::new(
            cfg(400, 8),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2, "visits {:?}", r.visits);
    }

    #[test]
    fn single_worker_matches_serial_statistics_shape() {
        // With 1 worker the local scheme is nearly serial; the visit
        // distribution must still be a proper distribution.
        let mut s = LocalTreeSearch::new(
            cfg(100, 1),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 100);
        assert!((r.probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn eval_delay_is_overlapped_across_workers() {
        // 32 playouts × 5 ms serial eval = 160 ms; with 8 workers the
        // evals overlap, so the move must take well under the serial time.
        let eval = DelayedEvaluator::new(
            UniformEvaluator::for_game(&TicTacToe::new()),
            Duration::from_millis(5),
        );
        let mut s = LocalTreeSearch::new(cfg(32, 8), Arc::new(eval));
        let t0 = Instant::now();
        let r = s.search(&TicTacToe::new());
        let elapsed = t0.elapsed();
        assert_eq!(r.stats.playouts, 32);
        assert!(
            elapsed < Duration::from_millis(120),
            "no overlap: {elapsed:?}"
        );
    }

    #[test]
    fn terminal_root_returns_empty() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4, 2] {
            g.apply(a);
        }
        assert!(g.status().is_terminal());
        let mut s = LocalTreeSearch::new(
            cfg(10, 2),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.visits.iter().sum::<u32>(), 0);
    }

    #[test]
    fn stats_record_eval_time() {
        let eval = DelayedEvaluator::new(
            UniformEvaluator::for_game(&TicTacToe::new()),
            Duration::from_micros(500),
        );
        let mut s = LocalTreeSearch::new(cfg(20, 2), Arc::new(eval));
        let r = s.search(&TicTacToe::new());
        assert!(r.stats.eval_ns > 0);
        assert!(r.stats.move_ns > 0);
    }

    #[test]
    fn many_workers_small_budget() {
        // More workers than playouts must not deadlock or overrun.
        let mut s = LocalTreeSearch::new(
            cfg(5, 16),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 5);
    }

    #[test]
    fn reusable_across_moves() {
        let mut s = LocalTreeSearch::new(
            cfg(60, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let mut g = TicTacToe::new();
        for _ in 0..3 {
            let r = s.search(&g);
            g.apply(r.best_action());
        }
        assert_eq!(g.move_count(), 3);
    }

    #[test]
    fn device_backend_drives_search_without_worker_threads() {
        use accel::{Device, DeviceConfig};
        use nn::{NetConfig, PolicyValueNet};
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 6));
        let dev = Arc::new(Device::new(net, DeviceConfig::instant(4)));
        let mut s = LocalTreeSearch::with_device(cfg(120, 4), Arc::clone(&dev));
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 120);
        let stats = dev.stats();
        assert!(stats.samples >= 100);
        assert!(stats.max_batch >= 2, "device batching never engaged");
    }
}
