//! Post-search tree analysis: principal variation, depth/branching
//! statistics. Useful for debugging search behaviour and for studying the
//! obsolete-information effect the paper discusses in §5.5 (parallel
//! workers see stale statistics, which reshapes the tree).

use crate::tree::{NodeState, Tree};
use games::Action;
use serde::{Deserialize, Serialize};

/// Shape statistics of a search tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeShape {
    /// Total nodes allocated.
    pub nodes: usize,
    /// Expanded (internal) nodes.
    pub expanded: usize,
    /// Terminal nodes discovered.
    pub terminals: usize,
    /// Maximum depth reached (root = 0).
    pub max_depth: usize,
    /// Mean depth over all nodes.
    pub mean_depth: f64,
    /// Mean children per expanded node.
    pub mean_branching: f64,
}

/// How much two search policies disagree — the quantitative form of the
/// paper's §5.5 observation that parallel workers acting on stale ("not
/// the newest") node statistics generate different training samples than
/// the serial baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyDivergence {
    /// KL(p ‖ q) with ε-smoothing, nats. 0 = identical distributions.
    pub kl: f64,
    /// Total-variation distance `½ Σ |p − q|` in `[0, 1]`.
    pub total_variation: f64,
    /// Whether both policies agree on the argmax (the move actually played
    /// in greedy evaluation).
    pub same_best: bool,
}

/// Compare two visit distributions over the same action space. Both are
/// normalized internally, so raw visit counts work as well as
/// probabilities.
pub fn policy_divergence(p: &[f32], q: &[f32]) -> PolicyDivergence {
    assert_eq!(p.len(), q.len(), "distributions over the same action space");
    assert!(!p.is_empty());
    let norm = |v: &[f32]| -> Vec<f64> {
        let s: f64 = v.iter().map(|&x| x.max(0.0) as f64).sum();
        if s <= 0.0 {
            vec![1.0 / v.len() as f64; v.len()]
        } else {
            v.iter().map(|&x| x.max(0.0) as f64 / s).collect()
        }
    };
    let (pn, qn) = (norm(p), norm(q));
    const EPS: f64 = 1e-9;
    let mut kl = 0.0;
    let mut tv = 0.0;
    for (a, b) in pn.iter().zip(&qn) {
        kl += (a + EPS) * ((a + EPS) / (b + EPS)).ln();
        tv += (a - b).abs();
    }
    let argmax = |v: &[f64]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    };
    PolicyDivergence {
        kl: kl.max(0.0),
        total_variation: 0.5 * tv,
        same_best: argmax(&pn) == argmax(&qn),
    }
}

/// Extract the principal variation from `tree`: the most-visited action
/// chain from the root, up to `max_len` plies.
pub fn principal_variation(tree: &Tree, max_len: usize) -> Vec<Action> {
    let mut pv = Vec::new();
    let mut cur = tree.root();
    for _ in 0..max_len {
        let children = tree.children(cur);
        if children.is_empty() {
            break;
        }
        let best = children
            .max_by_key(|&c| tree.n(c))
            .expect("non-empty children");
        if tree.n(best) == 0 {
            break;
        }
        pv.push(tree.action(best));
        cur = best;
    }
    pv
}

/// Compute shape statistics by walking the tree from its root (after
/// in-place re-rooting, arena order no longer orders parents before
/// children, so depths come from the walk, not from a forward pass).
pub fn tree_shape(tree: &Tree) -> TreeShape {
    let mut expanded = 0usize;
    let mut terminals = 0usize;
    let mut max_depth = 0usize;
    let mut depth_sum = 0usize;
    let mut child_sum = 0usize;
    let mut nodes = 0usize;
    let mut stack = vec![(tree.root(), 0usize)];
    while let Some((id, d)) = stack.pop() {
        nodes += 1;
        max_depth = max_depth.max(d);
        depth_sum += d;
        match tree.state(id) {
            NodeState::Expanded => {
                expanded += 1;
                child_sum += tree.children(id).len();
            }
            NodeState::Terminal(_) => terminals += 1,
            _ => {}
        }
        for c in tree.children(id) {
            stack.push((c, d + 1));
        }
    }
    TreeShape {
        nodes,
        expanded,
        terminals,
        max_depth,
        mean_depth: if nodes == 0 {
            0.0
        } else {
            depth_sum as f64 / nodes as f64
        },
        mean_branching: if expanded == 0 {
            0.0
        } else {
            child_sum as f64 / expanded as f64
        },
    }
}

#[cfg(test)]
#[allow(clippy::clone_on_copy)] // Copy test games cloned for symmetry with non-Copy ones
mod tests {
    use super::*;
    use crate::config::MctsConfig;
    use crate::tree::SelectOutcome;
    use games::tictactoe::TicTacToe;
    use games::Game;

    fn grown_tree(playouts: usize) -> Tree {
        let mut t = Tree::new(MctsConfig {
            playouts,
            ..Default::default()
        });
        let base = TicTacToe::new();
        let priors = vec![1.0 / 9.0; 9];
        for _ in 0..playouts {
            let mut g = base.clone();
            let (leaf, out) = t.select(&mut g);
            if out == SelectOutcome::NeedsEval {
                t.expand_and_backup(leaf, &priors, 0.0);
            }
        }
        t
    }

    #[test]
    fn pv_is_a_legal_action_chain() {
        let t = grown_tree(300);
        let pv = principal_variation(&t, 9);
        assert!(!pv.is_empty());
        // Replaying the PV on the game must be legal at every step.
        let mut g = TicTacToe::new();
        for &a in &pv {
            assert!(g.is_legal(a), "pv move {a} illegal");
            g.apply(a);
        }
    }

    #[test]
    fn pv_first_move_is_most_visited() {
        let t = grown_tree(200);
        let pv = principal_variation(&t, 1);
        let (visits, _, _) = t.action_prior(9);
        let best = visits.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
        assert_eq!(pv[0] as usize, best);
    }

    #[test]
    fn shape_statistics_are_consistent() {
        let t = grown_tree(250);
        let s = tree_shape(&t);
        assert_eq!(s.nodes, t.len());
        assert!(s.expanded > 0);
        assert!(s.max_depth >= 1);
        assert!(s.mean_depth > 0.0 && s.mean_depth <= s.max_depth as f64);
        // TicTacToe branching shrinks with depth but stays ≤ 9.
        assert!(s.mean_branching > 1.0 && s.mean_branching <= 9.0);
        assert!(s.max_depth <= 9, "TicTacToe depth bound");
    }

    #[test]
    fn empty_tree_has_trivial_shape() {
        let t = Tree::new(MctsConfig::default());
        let s = tree_shape(&t);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.expanded, 0);
        assert_eq!(s.max_depth, 0);
        assert!(principal_variation(&t, 5).is_empty());
    }

    #[test]
    fn pv_respects_max_len() {
        let t = grown_tree(400);
        assert!(principal_variation(&t, 2).len() <= 2);
    }

    #[test]
    fn identical_policies_have_zero_divergence() {
        let p = vec![0.1, 0.2, 0.7];
        let d = policy_divergence(&p, &p);
        assert!(d.kl < 1e-6);
        assert!(d.total_variation < 1e-9);
        assert!(d.same_best);
    }

    #[test]
    fn disjoint_policies_have_maximal_tv() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        let d = policy_divergence(&p, &q);
        assert!((d.total_variation - 1.0).abs() < 1e-9);
        assert!(d.kl > 1.0, "disjoint supports produce large KL");
        assert!(!d.same_best);
    }

    #[test]
    fn divergence_accepts_raw_visit_counts() {
        // Same shape at different scales: zero divergence.
        let p = vec![10.0, 20.0, 70.0];
        let q = vec![1.0, 2.0, 7.0];
        let d = policy_divergence(&p, &q);
        assert!(d.kl < 1e-6);
        assert!(d.same_best);
    }

    #[test]
    fn divergence_is_asymmetric_but_tv_symmetric() {
        let p = vec![0.9, 0.1];
        let q = vec![0.5, 0.5];
        let d1 = policy_divergence(&p, &q);
        let d2 = policy_divergence(&q, &p);
        assert!((d1.total_variation - d2.total_variation).abs() < 1e-12);
        assert!(d1.kl > 0.0 && d2.kl > 0.0);
    }

    #[test]
    fn zero_distributions_fall_back_to_uniform() {
        let d = policy_divergence(&[0.0, 0.0], &[0.0, 0.0]);
        assert!(d.kl < 1e-6);
        assert!(d.same_best);
    }

    #[test]
    #[should_panic(expected = "same action space")]
    fn mismatched_lengths_rejected() {
        let _ = policy_divergence(&[0.5, 0.5], &[1.0]);
    }
}
