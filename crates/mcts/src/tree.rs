//! The single-owner search tree used by the serial baseline, the
//! local-tree scheme's master thread, and the re-rooting reuse searcher.
//!
//! Nodes live in a [`crate::arena::NodeArena`] — a struct-of-arrays store
//! with contiguous child ranges and a block free-list (see the arena
//! module docs for the layout). No synchronization: exactly one thread
//! owns the tree. The same layout, with atomic cells, backs the
//! shared-tree scheme, so every scheme searches over one node store
//! design.
//!
//! Each node doubles as the edge from its parent (storing `prior`, `N`,
//! `W`), following the AlphaZero formulation where statistics live on
//! edges. `W` is accumulated from the perspective of the player who *moved
//! into* the node, so `Q(s,a) = W(child)/N(child)` is directly the expected
//! reward for the player choosing `a` at `s`.
//!
//! Claiming a leaf for evaluation pre-allocates its child block and writes
//! the legal actions into it, so expansion needs no game replay and the
//! steady-state search loop performs no heap allocation: selection,
//! claiming, expansion, backup and [`Tree::advance_root`] all run on
//! recycled arena slots and reused scratch buffers.

use crate::arena::{ArenaStats, NodeArena};
use crate::config::{MctsConfig, VirtualLoss};
use games::{Action, Game, Status};

pub use crate::arena::{NodeState, NIL};

/// What [`Tree::select`] found at the end of the traversed path.
#[derive(Debug, PartialEq)]
pub enum SelectOutcome {
    /// Leaf claimed for evaluation; caller must evaluate the game state it
    /// was handed and then call [`Tree::expand_and_backup`].
    NeedsEval,
    /// A terminal node; its value has been backed up already.
    TerminalBackedUp,
    /// The leaf is already being evaluated by another in-flight playout;
    /// the path's virtual loss has been reverted. Caller should process a
    /// pending result before retrying.
    Busy,
}

/// Node accounting of a [`Tree`] (see [`Tree::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TreeStats {
    /// Nodes currently part of the tree.
    pub live: usize,
    /// Free-list slots awaiting reuse.
    pub free: usize,
    /// Slots currently backing the arena columns (`live + free`) — the
    /// memory footprint of this tree's lifetime since its last
    /// [`Tree::reset_in_place`] (a reset truncates the count but keeps
    /// the columns' reserved capacity for reuse).
    pub high_water: usize,
    /// Cumulative nodes reclaimed onto the free-list by re-rooting,
    /// capacity eviction/pruning and in-place resets over this tree's
    /// lifetime.
    pub reclaimed_total: u64,
    /// Cumulative nodes discarded by deepest-fringe capacity pruning
    /// (subset of `reclaimed_total`).
    pub pruned: u64,
    /// Cumulative nodes discarded by LRU capacity eviction (subset of
    /// `reclaimed_total`).
    pub evicted: u64,
    /// Bytes currently backing node storage (`high_water ×`
    /// [`NodeArena::slot_bytes`](crate::arena::NodeArena::slot_bytes)).
    pub bytes: usize,
}

/// Single-owner MCTS tree over the shared arena layout.
pub struct Tree {
    a: NodeArena,
    cfg: MctsConfig,
    /// Current root node id (0 for a fresh tree; re-rooting moves it).
    root: u32,
    /// Per-tree nonce mixed into the root-noise seed (refreshed on
    /// re-root: one logical tree per move).
    noise_nonce: u64,
    /// Cumulative nodes reclaimed (re-root + evict/prune + reset).
    reclaimed_total: u64,
    /// Cumulative nodes discarded by deepest-fringe capacity pruning.
    pruned_nodes: u64,
    /// Cumulative nodes discarded by LRU capacity eviction.
    evicted_nodes: u64,
    /// Running total of outstanding virtual losses (kept in sync by
    /// select/backup/revert so the between-moves check is O(1); the
    /// column scan in [`Tree::outstanding_vl`] stays authoritative and
    /// [`Tree::check_invariants`] pins the two together).
    vl_outstanding: u64,
    /// Scratch: legal actions captured at claim time.
    legal_scratch: Vec<Action>,
    /// Scratch: masked/normalized priors during expansion.
    priors_scratch: Vec<f32>,
    /// Scratch: DFS stack for reclaiming walks.
    walk_stack: Vec<u32>,
    /// Scratch: (node, depth) stack for pruning/invariant walks.
    depth_stack: Vec<(u32, u32)>,
    /// Optional transposition index: position hash → expanded node id
    /// ([`MctsConfig::transpositions`]). Cleared by every operation that
    /// returns node slots to the free-list (re-root, in-place reset,
    /// capacity prune): a recycled slot may be re-expanded for a
    /// *different* position, so ids must never outlive their allocation.
    tt: Option<std::collections::HashMap<u64, u32>>,
}

impl Tree {
    /// Fresh tree containing only an unexpanded root. With
    /// [`MctsConfig::max_nodes`] or [`MctsConfig::arena_budget_bytes`]
    /// set, the arena never exceeds the derived slot bound (expansion
    /// reclaims live subtrees per [`MctsConfig::eviction`] when full).
    pub fn new(cfg: MctsConfig) -> Self {
        let mut a = NodeArena::new(1024, cfg.node_budget());
        let root = a
            .alloc_block(1)
            .expect("arena bound must allow at least the root");
        debug_assert_eq!(root, 0);
        a.prior[0] = 1.0;
        Tree {
            a,
            cfg,
            root: 0,
            noise_nonce: crate::noise::next_nonce(),
            reclaimed_total: 0,
            pruned_nodes: 0,
            evicted_nodes: 0,
            vl_outstanding: 0,
            legal_scratch: Vec::new(),
            priors_scratch: Vec::new(),
            walk_stack: Vec::new(),
            depth_stack: Vec::new(),
            tt: cfg.transpositions.then(std::collections::HashMap::new),
        }
    }

    /// Current root index (0 until the first in-place re-root).
    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Replace the search hyper-parameters (selection constants,
    /// virtual-loss policy, root noise) for subsequent playouts. The
    /// arena's capacity bound is deliberately left untouched —
    /// re-bounding a live arena is not supported; use
    /// [`Tree::set_config`] for a full reconfiguration.
    pub fn set_search_params(&mut self, cfg: MctsConfig) {
        self.cfg = cfg;
        self.reconcile_tt();
    }

    /// Create or drop the transposition index to match
    /// [`MctsConfig::transpositions`]; an index kept across the call is
    /// cleared (the caller is changing search regimes — stale reuse is
    /// not worth auditing against the new parameters).
    fn reconcile_tt(&mut self) {
        match (&mut self.tt, self.cfg.transpositions) {
            (tt @ None, true) => *tt = Some(std::collections::HashMap::new()),
            (tt @ Some(_), false) => *tt = None,
            (Some(tt), true) => tt.clear(),
            (None, false) => {}
        }
    }

    /// Reconfigure for a fresh logical session: apply `cfg` *including*
    /// a new arena capacity bound, clearing the tree in place (column
    /// memory is kept, so a pooled tree re-warms instantly). Must be
    /// called between moves (no playouts in flight).
    pub fn set_config(&mut self, cfg: MctsConfig) {
        self.cfg = cfg;
        self.a.set_bound(cfg.node_budget());
        self.reconcile_tt();
        self.reset_in_place();
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.a.live()
    }

    /// True if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Node accounting: live/free/high-water plus cumulative reclaim and
    /// prune counters.
    pub fn stats(&self) -> TreeStats {
        let ArenaStats {
            live,
            free,
            high_water,
        } = self.a.stats();
        TreeStats {
            live,
            free,
            high_water,
            reclaimed_total: self.reclaimed_total,
            pruned: self.pruned_nodes,
            evicted: self.evicted_nodes,
            bytes: self.a.bytes(),
        }
    }

    // -- column accessors ---------------------------------------------------

    /// Parent index (`NIL` for the root).
    #[inline]
    pub fn parent(&self, id: u32) -> u32 {
        self.a.parent[id as usize]
    }

    /// Action taken at the parent to reach `id`.
    #[inline]
    pub fn action(&self, id: u32) -> Action {
        self.a.action[id as usize]
    }

    /// DNN prior probability `P(s,a)` of that action.
    #[inline]
    pub fn prior(&self, id: u32) -> f32 {
        self.a.prior[id as usize]
    }

    /// Completed visits `N`.
    #[inline]
    pub fn n(&self, id: u32) -> u32 {
        self.a.n[id as usize]
    }

    /// Accumulated value `W` (perspective of the player who moved here).
    #[inline]
    pub fn w(&self, id: u32) -> f64 {
        self.a.w[id as usize]
    }

    /// In-flight playouts through `id` (virtual-loss count).
    #[inline]
    pub fn vl(&self, id: u32) -> u32 {
        self.a.vl[id as usize]
    }

    /// Expansion state.
    #[inline]
    pub fn state(&self, id: u32) -> NodeState {
        self.a.state[id as usize]
    }

    /// The contiguous child id range of `id` (empty when unexpanded or
    /// terminal; present from claim time for pending nodes).
    #[inline]
    pub fn children(&self, id: u32) -> std::ops::Range<u32> {
        let first = self.a.first_child[id as usize];
        let count = self.a.child_count[id as usize];
        if count == 0 {
            0..0
        } else {
            first..first + count
        }
    }

    /// Mean action value `Q` of `id` adjusted for virtual loss.
    fn q(&self, id: u32) -> f32 {
        let i = id as usize;
        match self.cfg.virtual_loss {
            VirtualLoss::Constant(c) => {
                let n_eff = self.a.n[i] + self.a.vl[i];
                if n_eff == 0 {
                    self.cfg.q_init
                } else {
                    ((self.a.w[i] - c as f64 * self.a.vl[i] as f64) / n_eff as f64) as f32
                }
            }
            VirtualLoss::VisitTracking => {
                if self.a.n[i] == 0 {
                    self.cfg.q_init
                } else {
                    (self.a.w[i] / self.a.n[i] as f64) as f32
                }
            }
        }
    }

    /// Effective visit count (real + in-flight) used in the UCT terms.
    #[inline]
    fn n_eff(&self, id: u32) -> u32 {
        self.a.n[id as usize] + self.a.vl[id as usize]
    }

    // -- search -------------------------------------------------------------

    /// Traverse from the root following UCT (Eq. 1), applying virtual loss
    /// to every edge stepped through, and advancing `game` along the path.
    ///
    /// Returns the reached leaf and what to do with it. On
    /// [`SelectOutcome::NeedsEval`] the leaf has been marked
    /// [`NodeState::Pending`], its child block pre-allocated with the
    /// legal actions, and `game` is positioned at the leaf's state.
    pub fn select<G: Game>(&mut self, game: &mut G) -> (u32, SelectOutcome) {
        let mut cur = self.root;
        loop {
            match self.a.state[cur as usize] {
                NodeState::Terminal(v) => {
                    self.backup(cur, v);
                    return (cur, SelectOutcome::TerminalBackedUp);
                }
                NodeState::Pending => {
                    self.revert_path(cur);
                    return (cur, SelectOutcome::Busy);
                }
                NodeState::Unexpanded => {
                    // Claim for evaluation: pre-allocate the child block
                    // and record the legal actions in it.
                    let mut legal = std::mem::take(&mut self.legal_scratch);
                    legal.clear();
                    game.legal_actions_into(&mut legal);
                    debug_assert!(!legal.is_empty(), "ongoing state with no moves");
                    self.claim_children(cur, &legal);
                    self.legal_scratch = legal;
                    return (cur, SelectOutcome::NeedsEval);
                }
                NodeState::Expanded => {
                    // Touch-on-visit: every expanded node on the selection
                    // path moves to the warm end of the LRU list, so the
                    // principal lines stay resident and eviction targets
                    // branches selection has abandoned. List maintenance
                    // only — never affects which child is selected.
                    self.a.lru_touch(cur);
                    let best = self.select_child(cur);
                    self.a.vl[best as usize] += 1;
                    self.vl_outstanding += 1;
                    game.apply(self.a.action[best as usize]);
                    cur = best;
                    // First arrival at a terminal state: freeze its value.
                    let status = game.status();
                    if status.is_terminal() && self.a.state[cur as usize] == NodeState::Unexpanded {
                        let v = terminal_value(status, game);
                        self.a.state[cur as usize] = NodeState::Terminal(v);
                    }
                }
                NodeState::Free => unreachable!("selection reached a free slot"),
            }
        }
    }

    /// Pick the child of `parent` maximizing the UCT score (Eq. 1).
    fn select_child(&self, parent: u32) -> u32 {
        let children = self.children(parent);
        debug_assert!(!children.is_empty(), "select on childless node");
        let sum_n: u32 = children.clone().map(|c| self.n_eff(c)).sum();
        let sqrt_sum = (sum_n as f32).sqrt();
        let mut best = children.start;
        let mut best_score = f32::NEG_INFINITY;
        for c in children {
            let u = self.q(c)
                + self.cfg.c_puct * self.a.prior[c as usize] * sqrt_sum
                    / (1.0 + self.n_eff(c) as f32);
            if u > best_score {
                best_score = u;
                best = c;
            }
        }
        best
    }

    /// Allocate the child block for a claimed leaf. At the capacity
    /// bound, escalate: defragment the free-list (coalesce adjacent
    /// ranges), then reclaim a live subtree per [`MctsConfig::eviction`]
    /// — the coldest (LRU) or the deepest fringe — until the block fits.
    fn claim_children(&mut self, leaf: u32, legal: &[Action]) {
        let count = legal.len();
        let mut coalesced = false;
        let first = loop {
            match self.a.alloc_block(count) {
                Some(first) => break first,
                // Fragments may sum to a fitting range even when no single
                // one serves the request; merging them is far cheaper than
                // discarding live statistics — so coalesce before every
                // eviction (each one creates fresh mergeable neighbors).
                None if !coalesced => {
                    self.a.coalesce();
                    coalesced = true;
                }
                None => {
                    let reclaimed = match self.cfg.eviction {
                        crate::config::EvictionPolicy::Lru => self.evict_coldest(),
                        crate::config::EvictionPolicy::DeepestFringe => self.prune_deepest(),
                    };
                    assert!(
                        reclaimed,
                        "arena at its bound ({} slots) with nothing evictable; raise the bound",
                        self.a.capacity_bound()
                    );
                    coalesced = false;
                }
            }
        };
        for (i, &a) in legal.iter().enumerate() {
            let id = first as usize + i;
            self.a.parent[id] = leaf;
            self.a.action[id] = a;
        }
        self.a.first_child[leaf as usize] = first;
        self.a.child_count[leaf as usize] = count as u32;
        self.a.state[leaf as usize] = NodeState::Pending;
        // The leaf now owns a child block: it joins the LRU list at the
        // warm end (it is, by definition, the most recently visited).
        self.a.lru_push_front(leaf);
    }

    /// Expand a pending leaf with DNN priors (masked to the legal actions
    /// captured at claim time, renormalized) and back up `value`.
    ///
    /// `value` is from the perspective of the player to move at the leaf —
    /// the evaluator's output convention.
    pub fn expand_and_backup(&mut self, leaf: u32, priors: &[f32], value: f32) {
        assert!(
            self.a.state[leaf as usize] == NodeState::Pending,
            "expand_and_backup on non-pending node ({:?})",
            self.a.state[leaf as usize]
        );
        let children = self.children(leaf);
        debug_assert!(!children.is_empty());
        let (lo, hi) = (children.start as usize, children.end as usize);

        let mut masked = std::mem::take(&mut self.priors_scratch);
        mask_and_normalize_into(priors, &self.a.action[lo..hi], &mut masked);
        // AlphaZero self-play: mix Dirichlet noise into the ROOT priors.
        if leaf == self.root {
            if let Some(noise) = self.cfg.root_noise {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    noise.seed ^ self.noise_nonce.rotate_left(17),
                );
                crate::noise::mix_noise(&mut rng, &noise, &mut masked);
            }
        }
        self.a.prior[lo..hi].copy_from_slice(&masked);
        self.priors_scratch = masked;
        self.a.state[leaf as usize] = NodeState::Expanded;
        self.backup(leaf, value);
    }

    /// Propagate `value` (leaf player's perspective) from `leaf` to the
    /// root: increment `N`, accumulate sign-alternating `W`, and release
    /// one unit of virtual loss per edge.
    pub fn backup(&mut self, leaf: u32, value: f32) {
        let mut cur = leaf;
        // W at a node is from the mover's (parent player's) perspective,
        // so the leaf itself receives -value.
        let mut sign = -1.0f64;
        loop {
            let i = cur as usize;
            self.a.n[i] += 1;
            self.a.w[i] += sign * value as f64;
            if self.a.parent[i] == NIL {
                break;
            }
            debug_assert!(self.a.vl[i] > 0, "backup without matching virtual loss");
            self.a.vl[i] = self.a.vl[i].saturating_sub(1);
            self.vl_outstanding = self.vl_outstanding.saturating_sub(1);
            cur = self.a.parent[i];
            sign = -sign;
        }
    }

    /// Undo the virtual loss applied along the path ending at `leaf`
    /// (used when a playout attempt is aborted).
    pub fn revert_path(&mut self, leaf: u32) {
        let mut cur = leaf;
        while self.a.parent[cur as usize] != NIL {
            let i = cur as usize;
            debug_assert!(self.a.vl[i] > 0, "revert without matching virtual loss");
            self.a.vl[i] = self.a.vl[i].saturating_sub(1);
            self.vl_outstanding = self.vl_outstanding.saturating_sub(1);
            cur = self.a.parent[i];
        }
    }

    // -- transpositions -----------------------------------------------------

    /// Expanded node currently indexed under position `hash`, if the
    /// transposition index is enabled and holds one. Entries reverted by
    /// a capacity prune are filtered out by state.
    pub fn tt_lookup(&self, hash: u64) -> Option<u32> {
        let id = *self.tt.as_ref()?.get(&hash)?;
        (self.a.state[id as usize] == NodeState::Expanded).then_some(id)
    }

    /// Index the just-expanded `node` under position `hash`. No-op when
    /// the transposition index is disabled.
    pub fn tt_record(&mut self, hash: u64, node: u32) {
        debug_assert_eq!(self.a.state[node as usize], NodeState::Expanded);
        if let Some(tt) = &mut self.tt {
            tt.insert(hash, node);
        }
    }

    /// Expand a pending leaf from `src` — an expanded node holding the
    /// *same position* reached by a different move order — copying its
    /// child priors and backing up its current mean value, with no
    /// evaluator call. The leaf keeps independent visit statistics
    /// (priors/value reuse only, no cross-path stat merging, so PUCT
    /// visit counts stay sound).
    pub fn expand_from_transposition(&mut self, leaf: u32, src: u32) {
        assert!(
            self.a.state[leaf as usize] == NodeState::Pending,
            "expand_from_transposition on non-pending leaf ({:?})",
            self.a.state[leaf as usize]
        );
        assert!(
            self.a.state[src as usize] == NodeState::Expanded,
            "transposition source must be expanded ({:?})",
            self.a.state[src as usize]
        );
        let lc = self.children(leaf);
        let sc = self.children(src);
        assert_eq!(
            lc.len(),
            sc.len(),
            "same position must yield identical legal actions"
        );
        debug_assert!(
            lc.clone()
                .zip(sc.clone())
                .all(|(l, s)| self.a.action[l as usize] == self.a.action[s as usize]),
            "transposition child actions diverge: hash collision?"
        );
        let (llo, lhi) = (lc.start as usize, lc.end as usize);
        let (slo, shi) = (sc.start as usize, sc.end as usize);
        let mut masked = std::mem::take(&mut self.priors_scratch);
        masked.clear();
        masked.extend_from_slice(&self.a.prior[slo..shi]);
        // Same root-noise policy as a fresh expansion: the root's priors
        // get noise even when they arrive via a transposition.
        if leaf == self.root {
            if let Some(noise) = self.cfg.root_noise {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    noise.seed ^ self.noise_nonce.rotate_left(17),
                );
                crate::noise::mix_noise(&mut rng, &noise, &mut masked);
            }
        }
        self.a.prior[llo..lhi].copy_from_slice(&masked);
        self.priors_scratch = masked;
        self.a.state[leaf as usize] = NodeState::Expanded;
        // src's W is from the perspective of the player who moved into
        // it; same hash ⇒ same player to move at both nodes, so the
        // value for the leaf's player is -(W/N). N ≥ 1: expansion backed
        // up at least once.
        let n = self.a.n[src as usize];
        debug_assert!(n > 0, "expanded node with no visits");
        let value = (-(self.a.w[src as usize] / n as f64)) as f32;
        self.backup(leaf, value);
    }

    /// Root visit counts over the full action space plus the normalized
    /// distribution and the root value estimate (current player's view).
    pub fn action_prior(&self, action_space: usize) -> (Vec<u32>, Vec<f32>, f32) {
        let mut visits = Vec::new();
        let mut probs = Vec::new();
        let value = self.action_prior_into(action_space, &mut visits, &mut probs);
        (visits, probs, value)
    }

    /// [`Tree::action_prior`] into caller-owned buffers (no allocation
    /// once the buffers have capacity). Returns the root value estimate.
    pub fn action_prior_into(
        &self,
        action_space: usize,
        visits: &mut Vec<u32>,
        probs: &mut Vec<f32>,
    ) -> f32 {
        visits.clear();
        visits.resize(action_space, 0);
        if self.a.state[self.root as usize] == NodeState::Expanded {
            for c in self.children(self.root) {
                visits[self.a.action[c as usize] as usize] = self.a.n[c as usize];
            }
        }
        let total: u32 = visits.iter().sum();
        probs.clear();
        if total == 0 {
            probs.resize(action_space, 0.0);
        } else {
            probs.extend(visits.iter().map(|&v| v as f32 / total as f32));
        }
        let root_n = self.a.n[self.root as usize];
        if root_n == 0 {
            0.0
        } else {
            (-(self.a.w[self.root as usize] / root_n as f64)) as f32
        }
    }

    /// Find the root child reached by `action`, if the root is expanded and
    /// the action was explored.
    pub fn root_child_for(&self, action: Action) -> Option<u32> {
        if self.a.state[self.root as usize] != NodeState::Expanded {
            return None;
        }
        self.children(self.root)
            .find(|&c| self.a.action[c as usize] == action)
    }

    // -- re-rooting ---------------------------------------------------------

    /// Re-root the tree **in place** at the child reached by `action`:
    /// mark nothing, move nothing — walk the discarded region (everything
    /// outside the kept child's subtree) exactly once and return its slots
    /// to the free-list. Kept node ids stay stable; the whole operation is
    /// `O(discarded nodes)` and allocation-free in steady state.
    ///
    /// If the root is unexpanded or the action's child holds no subtree
    /// worth keeping, the tree resets in place instead (same arena, bare
    /// root). Returns `true` when a subtree was kept.
    ///
    /// Must be called between moves: panics if any virtual loss is
    /// outstanding (re-rooting under in-flight playouts would freeze
    /// their unreleased losses into the kept subtree and silently skew
    /// every later Q value).
    pub fn advance_root(&mut self, action: Action) -> bool {
        // O(1) thanks to the running counter, so the O(discarded) re-root
        // cost holds even with the guard always on.
        assert_eq!(self.vl_outstanding, 0, "advance with in-flight playouts");
        if let Some(tt) = &mut self.tt {
            // Freed slots may be recycled for other positions; dropping
            // the whole index is the only O(1)-per-entry-safe policy
            // (entries do not know which subtree their id lives in).
            tt.clear();
        }
        match self.root_child_for(action) {
            Some(keep) => {
                let old = self.root;
                let freed = self.free_subtree_except(old, keep);
                self.reclaimed_total += freed;
                self.a.parent[keep as usize] = NIL;
                self.a.action[keep as usize] = 0;
                self.a.prior[keep as usize] = 1.0;
                self.root = keep;
                // Refresh the noise nonce so a re-rooted root that is
                // still unexpanded draws fresh noise when it expands.
                // (A reused root that is already expanded keeps its mixed
                // priors — same policy as the old copy-based re-root.)
                self.noise_nonce = crate::noise::next_nonce();
                true
            }
            None => {
                self.reset_in_place();
                false
            }
        }
    }

    /// Drop every node but keep the arena's memory: the next search grows
    /// into already-reserved columns (no heap allocation up to the
    /// previous high-water mark).
    pub fn reset_in_place(&mut self) {
        debug_assert_eq!(self.vl_outstanding, 0, "reset with in-flight playouts");
        self.vl_outstanding = 0;
        if let Some(tt) = &mut self.tt {
            tt.clear();
        }
        self.reclaimed_total += self.a.live() as u64;
        self.a.clear();
        let root = self.a.alloc_block(1).expect("cleared arena fits a root");
        debug_assert_eq!(root, 0);
        self.a.prior[0] = 1.0;
        self.root = 0;
        self.noise_nonce = crate::noise::next_nonce();
    }

    /// Free the subtree of `top` except the subtree of `keep` (which must
    /// lie inside it). Visits each discarded node exactly once: the walk
    /// descends from `top` but never enters `keep`. Returns the number of
    /// slots freed.
    fn free_subtree_except(&mut self, top: u32, keep: u32) -> u64 {
        let mut stack = std::mem::take(&mut self.walk_stack);
        stack.clear();
        stack.push(top);
        let mut freed = 0u64;
        while let Some(id) = stack.pop() {
            if id == keep {
                continue; // kept subtree: neither freed nor descended into
            }
            let first = self.a.first_child[id as usize];
            let count = self.a.child_count[id as usize];
            if count > 0 {
                // The discarded node loses its block (and its slot below):
                // off the LRU list before the slots go back to the free-list.
                self.a.lru_unlink(id);
                let (lo, hi) = (first, first + count);
                if (lo..hi).contains(&keep) {
                    // The kept child shares this block with its siblings:
                    // free the ranges on either side of it.
                    self.a.free_range(lo, keep - lo);
                    self.a.free_range(keep + 1, hi - keep - 1);
                    freed += count as u64 - 1;
                } else {
                    self.a.free_range(lo, count);
                    freed += count as u64;
                }
                // Descend after freeing: only the state column is stamped,
                // child ranges stay readable until the slots are reused.
                stack.extend(lo..hi);
            }
        }
        // `top`'s own slot belongs to no freed block (its old parent block
        // is outside the walk).
        self.a.free_range(top, 1);
        freed += 1;
        self.walk_stack = stack;
        freed
    }

    /// Prune the deepest fringe subtree: the expanded node farthest from
    /// the root all of whose children are leaves (and nothing in flight
    /// through it) loses its child block and reverts to
    /// [`NodeState::Unexpanded`], keeping its visit statistics. Returns
    /// `false` when no candidate exists.
    ///
    /// Each call walks the live tree (`O(live)`): capacity pruning is a
    /// memory backstop, not a steady-state mode — a bound sized well
    /// below the search's natural tree turns every expansion into a
    /// prune-and-rewalk (see the bound-sizing note on
    /// [`MctsConfig::max_nodes`]).
    fn prune_deepest(&mut self) -> bool {
        let mut stack = std::mem::take(&mut self.depth_stack);
        stack.clear();
        stack.push((self.root, 0));
        let mut best: Option<(u32, u32)> = None;
        while let Some((id, d)) = stack.pop() {
            let children = self.children(id);
            if children.is_empty() {
                continue;
            }
            let mut fringe = true;
            for c in children.clone() {
                if self.a.child_count[c as usize] > 0 {
                    fringe = false;
                    stack.push((c, d + 1));
                } else if self.a.vl[c as usize] > 0 {
                    // An in-flight selection path ends at this child
                    // (e.g. the very claim that triggered the prune).
                    fringe = false;
                }
            }
            if fringe
                && id != self.root
                && self.a.state[id as usize] == NodeState::Expanded
                && self.a.vl[id as usize] == 0
                && best.is_none_or(|(_, bd)| d > bd)
            {
                best = Some((id, d));
            }
        }
        self.depth_stack = stack;
        let Some((id, _)) = best else {
            return false;
        };
        if let Some(tt) = &mut self.tt {
            // The freed child slots (and the reverted node itself) may be
            // re-expanded for different positions; pruning is a rare
            // memory backstop, so dropping the index wholesale is cheap.
            tt.clear();
        }
        let children = self.children(id);
        let count = children.len() as u64;
        // Stats-preserving detach (see `evict_coldest` for the identity).
        let child_sum: u32 = children.clone().map(|c| self.a.n[c as usize]).sum();
        self.a.lru_unlink(id);
        self.a.free_range(children.start, children.len() as u32);
        self.a.first_child[id as usize] = NIL;
        self.a.child_count[id as usize] = 0;
        self.a.state[id as usize] = NodeState::Unexpanded;
        self.a.n_detached[id as usize] = self.a.n_detached[id as usize]
            .saturating_add(child_sum)
            .saturating_add(1);
        self.pruned_nodes += count;
        self.reclaimed_total += count;
        true
    }

    /// Evict the coldest subtree: walk the intrusive LRU list from the
    /// tail and detach the first block owner that is neither the root
    /// nor on any in-flight path. The victim's **whole subtree** goes
    /// back to the free-list (`O(evicted)` — no tree-wide walk) and the
    /// victim reverts to [`NodeState::Unexpanded`] keeping its visit
    /// statistics. Returns `false` when no candidate exists.
    ///
    /// Safety of taking the victim alone as the quiescence witness:
    /// every in-flight selection path holds one unit of virtual loss on
    /// each *descended-into* node, so `vl == 0` on a non-root node means
    /// no in-flight path passes through it — and therefore none through
    /// any of its descendants (their paths would traverse the victim).
    /// A pending evaluation inside the subtree is likewise impossible:
    /// its claim path still holds virtual loss on the victim's edge.
    /// The root's immediate children are never freed by eviction (their
    /// only proper ancestor is the root, which is never a victim), so
    /// root statistics survive any eviction schedule intact.
    fn evict_coldest(&mut self) -> bool {
        let mut v = self.a.lru_tail;
        while v != NIL {
            if v != self.root
                && self.a.state[v as usize] == NodeState::Expanded
                && self.a.vl[v as usize] == 0
            {
                break;
            }
            v = self.a.lru_prev[v as usize];
        }
        if v == NIL {
            return false;
        }
        if let Some(tt) = &mut self.tt {
            // Freed slots may be recycled for other positions; eviction
            // at the bound is the memory backstop, so dropping the index
            // wholesale is the same policy as pruning and re-rooting.
            tt.clear();
        }
        let children = self.children(v);
        let child_sum: u32 = children.clone().map(|c| self.a.n[c as usize]).sum();
        let mut stack = std::mem::take(&mut self.walk_stack);
        stack.clear();
        stack.extend(children.clone());
        self.a.lru_unlink(v);
        self.a.free_range(children.start, children.len() as u32);
        let mut freed = children.len() as u64;
        // Descend after freeing: only the state column is stamped, so
        // child ranges of already-freed slots stay readable until reuse
        // (same walk discipline as `free_subtree_except`).
        while let Some(id) = stack.pop() {
            let first = self.a.first_child[id as usize];
            let count = self.a.child_count[id as usize];
            if count > 0 {
                self.a.lru_unlink(id);
                self.a.free_range(first, count);
                freed += count as u64;
                stack.extend(first..first + count);
            }
        }
        self.walk_stack = stack;
        // Stats-preserving detach: the victim keeps `N`/`W`; `n_detached`
        // absorbs the visits that descended into the discarded children
        // plus the one extra self-visit a future re-expansion will add,
        // keeping the visit identity in `check_invariants` exact.
        self.a.first_child[v as usize] = NIL;
        self.a.child_count[v as usize] = 0;
        self.a.state[v as usize] = NodeState::Unexpanded;
        self.a.n_detached[v as usize] = self.a.n_detached[v as usize]
            .saturating_add(child_sum)
            .saturating_add(1);
        self.evicted_nodes += freed;
        self.reclaimed_total += freed;
        true
    }

    /// Copy the subtree rooted at `new_root` into a fresh arena, making it
    /// the root. Statistics (`N`, `W`, priors, expansion state) are
    /// preserved; the new root's edge data is reset (it no longer has a
    /// parent).
    ///
    /// This is the **copy-based re-rooting reference**, superseded by the
    /// in-place [`Tree::advance_root`] on the hot path and retained as the
    /// independent oracle for the differential re-root proptest
    /// (`tests/proptest_reroot.rs`).
    ///
    /// Must be called between moves: panics if any virtual loss is
    /// outstanding inside the subtree.
    pub fn extract_subtree(&self, new_root: u32) -> Tree {
        let mut out = Tree::new(self.cfg);
        assert_eq!(
            self.a.vl[new_root as usize], 0,
            "extract_subtree with in-flight playouts"
        );
        out.a.n[0] = self.a.n[new_root as usize];
        out.a.w[0] = self.a.w[new_root as usize];
        out.a.state[0] = self.a.state[new_root as usize];
        out.a.n_detached[0] = self.a.n_detached[new_root as usize];
        // BFS copy: parents before children, block by block.
        let mut queue = std::collections::VecDeque::from([(new_root, 0u32)]);
        while let Some((old, new)) = queue.pop_front() {
            let children = self.children(old);
            if children.is_empty() {
                continue;
            }
            let count = children.len();
            let first = out
                .a
                .alloc_block(count)
                .expect("copy target within capacity");
            out.a.first_child[new as usize] = first;
            out.a.child_count[new as usize] = count as u32;
            // Thread the copy's LRU list too (membership == owns a child
            // block); BFS order stands in for the original recency order,
            // which the source tree no longer remembers per-copy.
            out.a.lru_push_front(new);
            for (i, oc) in children.enumerate() {
                assert_eq!(
                    self.a.vl[oc as usize], 0,
                    "extract_subtree with in-flight playouts"
                );
                let nc = first + i as u32;
                let (o, n) = (oc as usize, nc as usize);
                out.a.parent[n] = new;
                out.a.action[n] = self.a.action[o];
                out.a.prior[n] = self.a.prior[o];
                out.a.n[n] = self.a.n[o];
                out.a.w[n] = self.a.w[o];
                out.a.state[n] = self.a.state[o];
                out.a.n_detached[n] = self.a.n_detached[o];
                queue.push_back((oc, nc));
            }
        }
        out
    }

    /// Replace the priors of `node`'s children with `masked` (one entry per
    /// child, already legal-masked and normalized) and add `dv` to the
    /// subtree values along the path to the root *without* changing visit
    /// counts. Used by speculative search to correct a node first expanded
    /// with a cheap model once the main model's evaluation arrives.
    pub fn correct_expansion(&mut self, node: u32, masked: &[f32], dv: f32) {
        let children = self.children(node);
        assert_eq!(
            children.len(),
            masked.len(),
            "corrected priors must cover every child"
        );
        self.a.prior[children.start as usize..children.end as usize].copy_from_slice(masked);
        // Same sign convention as `backup`: the node's own W is from the
        // perspective of the player who moved into it.
        let mut cur = node;
        let mut sign = -1.0f64;
        loop {
            let i = cur as usize;
            self.a.w[i] += sign * dv as f64;
            if self.a.parent[i] == NIL {
                break;
            }
            cur = self.a.parent[i];
            sign = -sign;
        }
    }

    /// Legal actions captured when `node` was claimed/expanded, in child
    /// order (empty for unexpanded nodes).
    pub fn child_actions(&self, node: u32) -> Vec<Action> {
        self.children(node)
            .map(|c| self.a.action[c as usize])
            .collect()
    }

    /// Sum of outstanding virtual losses (0 when no playouts in flight).
    pub fn outstanding_vl(&self) -> u64 {
        self.a
            .vl
            .iter()
            .zip(&self.a.state)
            .filter(|(_, s)| !matches!(s, NodeState::Free))
            .map(|(&v, _)| v as u64)
            .sum()
    }

    /// Consistency check: walks the tree from the root and asserts the
    /// structural invariants — every live node is reachable exactly once
    /// (free-list accounting matches), child/parent links agree, no slot
    /// on a path is free, all virtual losses are released, the intrusive
    /// LRU list is exactly a permutation of the live block-owning nodes,
    /// and the visit identity holds **exactly**: for every expanded node
    /// `N == Σ N(children) + n_detached + (0|1)`, and for a detached
    /// node awaiting re-expansion `N == n_detached`. Stats-preserving
    /// detach records discarded-subtree visits in `n_detached`, so the
    /// identity needs no relaxed mode once eviction or pruning has
    /// occurred (the pre-LRU carve-out is gone).
    ///
    /// Always compiled; the `invariants` cargo feature additionally runs
    /// it at the end of every search in every scheme.
    pub fn check_invariants(&self) {
        assert_eq!(self.outstanding_vl(), 0, "dangling virtual loss");
        assert_eq!(self.vl_outstanding, 0, "vl running counter drifted");

        // LRU list first: consistent prev/next links, no cycle, no free
        // slot, every member owns a child block. The reachability walk
        // below then checks the converse (every block owner is listed),
        // making the list exactly a permutation of the block owners.
        let hw = self.a.high_water();
        let mut on_list = vec![false; hw];
        let mut list_len = 0usize;
        let mut prev = NIL;
        let mut cur = self.a.lru_head;
        while cur != NIL {
            let i = cur as usize;
            assert!(!on_list[i], "node {cur}: appears twice in the LRU list");
            on_list[i] = true;
            assert_eq!(self.a.lru_prev[i], prev, "node {cur}: LRU prev link");
            assert!(
                !matches!(self.a.state[i], NodeState::Free),
                "node {cur}: free slot on the LRU list"
            );
            assert!(
                self.a.child_count[i] > 0,
                "node {cur}: LRU member without a child block"
            );
            list_len += 1;
            assert!(list_len <= hw, "LRU list cycle");
            prev = cur;
            cur = self.a.lru_next[i];
        }
        assert_eq!(self.a.lru_tail, prev, "LRU tail link");

        let mut stack = vec![self.root];
        let mut reached = 0usize;
        let mut block_owners = 0usize;
        while let Some(id) = stack.pop() {
            reached += 1;
            let i = id as usize;
            assert!(
                !matches!(self.a.state[i], NodeState::Free),
                "node {id}: free slot reachable from the root"
            );
            let children = self.children(id);
            if !children.is_empty() {
                block_owners += 1;
                assert!(
                    on_list[i],
                    "node {id}: owns a child block but is not on the LRU list"
                );
            }
            if self.a.state[i] == NodeState::Expanded {
                assert!(!children.is_empty(), "expanded node {id} without children");
                let child_sum: u32 = children.clone().map(|c| self.a.n[c as usize]).sum();
                let accounted = child_sum as u64 + self.a.n_detached[i] as u64;
                // Every visit to an expanded node either terminated here
                // (the expansion visit), descended into a current child,
                // or descended into a child block since detached.
                assert!(
                    self.a.n[i] as u64 >= accounted,
                    "node {id}: N={} < children {child_sum} + detached {}",
                    self.a.n[i],
                    self.a.n_detached[i]
                );
                assert!(
                    self.a.n[i] as u64 - accounted <= 1,
                    "node {id}: more than one self-visit: N={} children={child_sum} detached={}",
                    self.a.n[i],
                    self.a.n_detached[i]
                );
            } else if !matches!(self.a.state[i], NodeState::Terminal(_)) && self.a.n[i] > 0 {
                // A leaf with visits must be a detached former interior
                // node: all of its visits are accounted by `n_detached`.
                assert_eq!(
                    self.a.n[i], self.a.n_detached[i],
                    "node {id}: visited leaf whose visits are not detach-accounted"
                );
            }
            for c in children {
                assert_eq!(self.a.parent[c as usize], id, "parent link of {c}");
                stack.push(c);
            }
        }
        assert_eq!(
            reached,
            self.len(),
            "live-node accounting: reachable {reached} != live {}",
            self.len()
        );
        assert_eq!(
            block_owners, list_len,
            "LRU membership: {block_owners} block owners vs {list_len} listed"
        );
    }
}

/// Terminal value from the perspective of the player to move at the state.
pub fn terminal_value<G: Game>(status: Status, game: &G) -> f32 {
    status.reward_for(game.to_move())
}

/// Mask full-action-space `priors` down to `legal` actions and normalize;
/// falls back to uniform when the legal prior mass vanishes.
pub(crate) fn mask_and_normalize(priors: &[f32], legal: &[Action]) -> Vec<f32> {
    let mut out = Vec::with_capacity(legal.len());
    mask_and_normalize_into(priors, legal, &mut out);
    out
}

/// [`mask_and_normalize`] into a caller-owned buffer (no allocation once
/// the buffer has capacity).
pub(crate) fn mask_and_normalize_into(priors: &[f32], legal: &[Action], out: &mut Vec<f32>) {
    let mut total: f32 = legal.iter().map(|&a| priors[a as usize].max(0.0)).sum();
    let uniform = total <= 1e-8 || !total.is_finite();
    if uniform {
        total = legal.len() as f32;
    }
    out.clear();
    out.extend(legal.iter().map(|&a| {
        if uniform {
            1.0 / total
        } else {
            priors[a as usize].max(0.0) / total
        }
    }));
}

#[cfg(test)]
#[allow(clippy::clone_on_copy)] // Copy test games cloned for symmetry with non-Copy ones
mod tests {
    use super::*;
    use games::tictactoe::TicTacToe;

    fn cfg(playouts: usize) -> MctsConfig {
        MctsConfig {
            playouts,
            ..Default::default()
        }
    }

    fn uniform_priors(n: usize) -> Vec<f32> {
        vec![1.0 / n as f32; n]
    }

    /// Grow a tree with `playouts` uniform-prior playouts from `base`.
    fn grow(t: &mut Tree, base: &TicTacToe, playouts: usize) {
        for _ in 0..playouts {
            let mut g = base.clone();
            let (leaf, out) = t.select(&mut g);
            if out == SelectOutcome::NeedsEval {
                t.expand_and_backup(leaf, &uniform_priors(9), 0.0);
            }
        }
    }

    #[test]
    fn fresh_tree_has_unexpanded_root() {
        let t = Tree::new(cfg(10));
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.state(0), NodeState::Unexpanded);
    }

    #[test]
    fn first_select_claims_root() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let (leaf, out) = t.select(&mut g);
        assert_eq!(leaf, 0);
        assert_eq!(out, SelectOutcome::NeedsEval);
        assert_eq!(t.state(0), NodeState::Pending);
        // The claim pre-allocated the child block with the legal actions.
        assert_eq!(t.children(0).len(), 9);
        assert_eq!(t.child_actions(0), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn expand_creates_children_for_legal_moves() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.3);
        assert_eq!(t.children(0).len(), 9);
        assert_eq!(t.n(0), 1);
        // Root W accumulates from the "mover into root" perspective: -v.
        assert!((t.w(0) + 0.3).abs() < 1e-6);
        t.check_invariants();
    }

    #[test]
    fn second_select_descends_and_applies_vl() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let mut g2 = TicTacToe::new();
        let (leaf, out) = t.select(&mut g2);
        assert_ne!(leaf, 0);
        assert_eq!(out, SelectOutcome::NeedsEval);
        assert_eq!(t.vl(leaf), 1, "virtual loss on traversed edge");
        assert_eq!(g2.move_count(), 1, "game advanced one ply");
        t.expand_and_backup(leaf, &uniform_priors(9), 0.5);
        assert_eq!(t.vl(leaf), 0, "virtual loss released by backup");
        t.check_invariants();
    }

    #[test]
    fn pending_leaf_reports_busy_and_reverts() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        // Root pending; another selection attempt must see Busy and leave
        // no dangling VL.
        let mut g2 = TicTacToe::new();
        let (leaf, out) = t.select(&mut g2);
        assert_eq!(out, SelectOutcome::Busy);
        assert_eq!(leaf, 0);
        assert_eq!(t.outstanding_vl(), 0);
    }

    #[test]
    fn virtual_loss_diverts_second_playout() {
        // With constant VL, an in-flight playout through the best child
        // must push the next selection to a different child.
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let mut g1 = TicTacToe::new();
        let (leaf1, _) = t.select(&mut g1);
        let mut g2 = TicTacToe::new();
        let (leaf2, _) = t.select(&mut g2);
        assert_ne!(leaf1, leaf2, "VL should steer workers apart");
        t.revert_path(leaf1);
        t.revert_path(leaf2);
        // Pending claims stay (they model in-flight evals); just check VL.
        assert_eq!(t.outstanding_vl(), 0);
    }

    #[test]
    fn terminal_nodes_back_up_true_outcome() {
        // Play a nearly-finished game: X has two in a row; drive search to
        // discover the winning terminal.
        let mut base = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            base.apply(a);
        }
        // X to move, playing 2 wins.
        let mut t = Tree::new(cfg(100));
        let mut g = base.clone();
        let _ = t.select(&mut g);
        let legal = base.legal_actions();
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        assert_eq!(t.children(0).len(), legal.len());

        // Run many playouts with uniform priors; terminal discovery should
        // make the winning move dominate.
        grow(&mut t, &base, 200);
        let (visits, probs, value) = t.action_prior(9);
        assert_eq!(
            tensor::ops::argmax(&probs),
            2,
            "winning move must dominate: visits {visits:?}"
        );
        assert!(value > 0.5, "root value should favor X, got {value}");
        t.check_invariants();
    }

    #[test]
    fn priors_masked_and_renormalized() {
        let mut t = Tree::new(cfg(10));
        let mut base = TicTacToe::new();
        base.apply(4); // center occupied → action 4 illegal
        let mut g = base.clone();
        let _ = t.select(&mut g);
        let mut priors = vec![0.0f32; 9];
        priors[4] = 0.9; // mass on an illegal action
        priors[0] = 0.05;
        priors[1] = 0.05;
        t.expand_and_backup(0, &priors, 0.0);
        let total: f32 = t.children(0).map(|c| t.prior(c)).sum();
        assert!((total - 1.0).abs() < 1e-5, "renormalized priors sum to 1");
        assert!(t.children(0).all(|c| t.action(c) != 4));
    }

    #[test]
    fn zero_prior_mass_falls_back_to_uniform() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &[0.0; 9], 0.0);
        for c in t.children(0) {
            assert!((t.prior(c) - 1.0 / 9.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backup_alternates_signs() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let mut g2 = TicTacToe::new();
        let (leaf, _) = t.select(&mut g2);
        t.expand_and_backup(leaf, &uniform_priors(9), 1.0);
        // Leaf: -1 (value from leaf player's view is +1 ⇒ mover's view -1).
        assert!((t.w(leaf) + 1.0).abs() < 1e-6);
        // Root (one level up): +1, plus 0 from its own expansion backup.
        assert!((t.w(0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn action_prior_normalizes_to_one() {
        let mut t = Tree::new(cfg(50));
        let base = TicTacToe::new();
        grow(&mut t, &base, 51);
        let (visits, probs, _) = t.action_prior(9);
        assert_eq!(visits.iter().sum::<u32>(), 51 - 1);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        t.check_invariants();
    }

    #[test]
    fn extract_subtree_preserves_statistics() {
        let mut t = Tree::new(cfg(100));
        let base = TicTacToe::new();
        grow(&mut t, &base, 61);
        let child = t.children(0).nth(3).unwrap();
        let sub = t.extract_subtree(child);
        assert_eq!(sub.n(0), t.n(child));
        assert!((sub.w(0) - t.w(child)).abs() < 1e-9);
        assert_eq!(sub.children(0).len(), t.children(child).len());
        // Child priors carried over in order.
        for (sc, tc) in sub.children(0).zip(t.children(child)) {
            assert_eq!(sub.prior(sc), t.prior(tc));
            assert_eq!(sub.action(sc), t.action(tc));
            assert_eq!(sub.n(sc), t.n(tc));
        }
        sub.check_invariants();
    }

    #[test]
    fn extract_subtree_of_unexpanded_child_is_fresh() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let child = t.children(0).next().unwrap();
        let sub = t.extract_subtree(child);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.state(0), NodeState::Unexpanded);
    }

    #[test]
    fn root_child_for_finds_action() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let c = t.root_child_for(4).expect("center child exists");
        assert_eq!(t.action(c), 4);
        assert_eq!(t.root_child_for(100), None);
    }

    #[test]
    fn correct_expansion_updates_priors_and_values() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.2);
        let w_before = t.w(0);
        let new_priors = vec![1.0 / 9.0; 9];
        t.correct_expansion(0, &new_priors, 0.5);
        // Root W shifts by -dv (mover's perspective).
        assert!((t.w(0) - (w_before - 0.5)).abs() < 1e-6);
        // N unchanged.
        assert_eq!(t.n(0), 1);
    }

    #[test]
    fn visit_tracking_vl_mode_also_diverges() {
        let mut t = Tree::new(MctsConfig {
            virtual_loss: VirtualLoss::VisitTracking,
            ..cfg(10)
        });
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let mut g1 = TicTacToe::new();
        let (l1, _) = t.select(&mut g1);
        let mut g2 = TicTacToe::new();
        let (l2, _) = t.select(&mut g2);
        assert_ne!(l1, l2, "unobserved-count VL must also steer apart");
        t.revert_path(l1);
        t.revert_path(l2);
        assert_eq!(t.outstanding_vl(), 0);
    }

    // -- in-place re-rooting & capacity bound ------------------------------

    #[test]
    fn advance_root_matches_copy_reroot() {
        let mut t = Tree::new(cfg(100));
        let base = TicTacToe::new();
        grow(&mut t, &base, 80);
        let played = 3u16;
        let child = t.root_child_for(played).unwrap();
        let reference = t.extract_subtree(child);
        let live_before = t.len();
        assert!(t.advance_root(played));

        assert_eq!(t.len(), reference.len(), "same live node count");
        assert_eq!(t.n(t.root()), reference.n(0));
        assert!((t.w(t.root()) - reference.w(0)).abs() < 1e-12);
        assert_eq!(t.parent(t.root()), NIL);
        // Structural equality, pairwise over BFS order.
        let mut pairs = vec![(t.root(), 0u32)];
        while let Some((a, b)) = pairs.pop() {
            assert_eq!(t.state(a), reference.state(b));
            assert_eq!(t.children(a).len(), reference.children(b).len());
            for (ca, cb) in t.children(a).zip(reference.children(b)) {
                assert_eq!(t.action(ca), reference.action(cb));
                assert_eq!(t.prior(ca), reference.prior(cb));
                assert_eq!(t.n(ca), reference.n(cb));
                pairs.push((ca, cb));
            }
        }
        // Everything discarded went to the free-list, nothing leaked.
        let s = t.stats();
        assert_eq!(s.live + s.free, s.high_water);
        assert_eq!(s.reclaimed_total, (live_before - t.len()) as u64);
        t.check_invariants();
    }

    #[test]
    fn advance_root_on_unexplored_action_resets_in_place() {
        let mut t = Tree::new(cfg(10));
        // Root never expanded: advance falls back to a bare root.
        assert!(!t.advance_root(4));
        assert_eq!(t.len(), 1);
        assert_eq!(t.state(t.root()), NodeState::Unexpanded);
        // And the tree still searches fine afterwards.
        grow(&mut t, &TicTacToe::new(), 20);
        t.check_invariants();
    }

    #[test]
    fn advance_root_reuses_freed_slots() {
        let mut t = Tree::new(cfg(200));
        let mut game = TicTacToe::new();
        grow(&mut t, &game, 120);
        let high_water_after_first = t.stats().high_water;
        // Two more (search, advance) cycles: the arena recycles freed
        // blocks, so the high-water mark stays close to one move's tree.
        for _ in 0..2 {
            let (visits, _, _) = t.action_prior(9);
            let a = (0..9u16).max_by_key(|&a| visits[a as usize]).unwrap();
            t.advance_root(a);
            game.apply(a);
            if game.status().is_terminal() {
                break;
            }
            grow(&mut t, &game, 120);
            t.check_invariants();
        }
        assert!(
            t.stats().high_water <= 2 * high_water_after_first,
            "recycling keeps memory near one move's worth: {} vs {}",
            t.stats().high_water,
            high_water_after_first
        );
        assert!(t.stats().reclaimed_total > 0);
    }

    #[test]
    fn capacity_bound_prunes_instead_of_growing() {
        let cap = 200usize;
        let mut t = Tree::new(MctsConfig {
            max_nodes: Some(cap),
            eviction: crate::config::EvictionPolicy::DeepestFringe,
            ..cfg(500)
        });
        let base = TicTacToe::new();
        grow(&mut t, &base, 500);
        let s = t.stats();
        assert!(
            s.high_water <= cap,
            "hard bound respected: {} > {cap}",
            s.high_water
        );
        assert!(s.pruned > 0, "bounded search must have pruned");
        assert_eq!(s.evicted, 0, "fringe policy never LRU-evicts");
        t.check_invariants();
        // The search still produces a sane root distribution.
        let (visits, probs, _) = t.action_prior(9);
        assert_eq!(visits.iter().sum::<u32>(), 500 - 1);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn capacity_bound_evicts_coldest_by_default() {
        let cap = 200usize;
        let mut t = Tree::new(MctsConfig {
            max_nodes: Some(cap),
            ..cfg(500)
        });
        assert_eq!(t.cfg.eviction, crate::config::EvictionPolicy::Lru);
        let base = TicTacToe::new();
        grow(&mut t, &base, 500);
        let s = t.stats();
        assert!(
            s.high_water <= cap,
            "hard bound respected: {} > {cap}",
            s.high_water
        );
        assert!(s.evicted > 0, "bounded search must have evicted");
        assert_eq!(s.pruned, 0, "LRU policy never fringe-prunes");
        t.check_invariants();
        // Root statistics survive eviction untouched: every playout is
        // still accounted at the root, and the distribution is sane.
        let (visits, probs, _) = t.action_prior(9);
        assert_eq!(visits.iter().sum::<u32>(), 500 - 1);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn byte_budget_bounds_the_arena() {
        let slot = NodeArena::slot_bytes();
        let budget = 200 * slot;
        let mut t = Tree::new(MctsConfig {
            arena_budget_bytes: Some(budget),
            ..cfg(500)
        });
        grow(&mut t, &TicTacToe::new(), 500);
        let s = t.stats();
        assert!(
            s.bytes <= budget,
            "byte bound respected: {} > {budget}",
            s.bytes
        );
        assert_eq!(s.bytes, s.high_water * slot);
        assert!(s.evicted > 0, "tight byte budget must force eviction");
        t.check_invariants();
    }

    #[test]
    fn eviction_preserves_detached_stats_and_allows_reexpansion() {
        // Drive a bounded LRU search, then keep searching: detached
        // victims must come back (re-expansion) without tripping the
        // exact visit identity.
        let mut t = Tree::new(MctsConfig {
            max_nodes: Some(150),
            ..cfg(800)
        });
        let base = TicTacToe::new();
        grow(&mut t, &base, 400);
        let evicted_mid = t.stats().evicted;
        assert!(evicted_mid > 0);
        grow(&mut t, &base, 400);
        assert!(t.stats().evicted > evicted_mid, "eviction keeps cycling");
        t.check_invariants();
        assert_eq!(t.n(t.root()), 800, "root visits intact across evictions");
    }

    // -- transposition index ------------------------------------------------

    /// Drive playouts the way a transposition-aware scheme does: look up
    /// the position hash before evaluating, reuse on hit, record on miss.
    fn grow_tt(t: &mut Tree, base: &TicTacToe, playouts: usize) -> u64 {
        let mut tt_hits = 0;
        for _ in 0..playouts {
            let mut g = base.clone();
            let (leaf, out) = t.select(&mut g);
            if out == SelectOutcome::NeedsEval {
                if let Some(src) = t.tt_lookup(g.hash()) {
                    t.expand_from_transposition(leaf, src);
                    tt_hits += 1;
                } else {
                    t.expand_and_backup(leaf, &uniform_priors(9), 0.0);
                    t.tt_record(g.hash(), leaf);
                }
            }
        }
        tt_hits
    }

    fn tt_cfg(playouts: usize) -> MctsConfig {
        MctsConfig {
            transpositions: true,
            ..cfg(playouts)
        }
    }

    #[test]
    fn transpositions_fire_and_preserve_invariants() {
        let mut t = Tree::new(tt_cfg(400));
        let hits = grow_tt(&mut t, &TicTacToe::new(), 400);
        // TicTacToe transposes heavily from depth 3 on (e.g. X0,O1,X2 ==
        // X2,O1,X0): 400 playouts must reuse at least one expansion.
        assert!(hits > 0, "no transpositions in 400 tictactoe playouts");
        assert_eq!(t.outstanding_vl(), 0);
        t.check_invariants();
        let (visits, probs, _) = t.action_prior(9);
        assert_eq!(visits.iter().sum::<u32>(), 400 - 1);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn transposition_copies_priors_and_value() {
        // Two claimed Connect-4 siblings: every depth-1 state has the
        // identical legal set (all 7 columns), so the positional copy in
        // expand_from_transposition is well-defined. Expanding the second
        // leaf from the first must copy priors exactly and back up
        // -(W/N) without an evaluator call.
        use games::connect4::Connect4;
        let mut t = Tree::new(tt_cfg(10));
        let base = Connect4::new();
        let mut g = base.clone();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &[1.0 / 7.0; 7], 0.0);
        let mut g1 = base.clone();
        let (l1, o1) = t.select(&mut g1);
        assert_eq!(o1, SelectOutcome::NeedsEval);
        let mut priors = vec![0.0f32; 7];
        for (i, p) in priors.iter_mut().enumerate() {
            *p = (i + 1) as f32 / 28.0;
        }
        t.expand_and_backup(l1, &priors, 0.8);
        t.tt_record(g1.hash(), l1);
        let mut g2 = base.clone();
        let (l2, o2) = t.select(&mut g2);
        assert_eq!(o2, SelectOutcome::NeedsEval);
        assert_ne!(l1, l2);
        let src = t.tt_lookup(g1.hash()).expect("recorded entry");
        assert_eq!(src, l1);
        let n_before = t.n(l2);
        t.expand_from_transposition(l2, src);
        assert_eq!(t.state(l2), NodeState::Expanded);
        assert_eq!(t.n(l2), n_before + 1);
        // Value backed up at l2 is -(W/N) of src; the leaf's own W gets
        // -value, i.e. +W(src)/N(src).
        let mean_src = t.w(l1) / t.n(l1) as f64;
        assert!((t.w(l2) - mean_src).abs() < 1e-6);
        // Priors copied positionally.
        for (cs, cl) in t.children(src).zip(t.children(l2)) {
            assert_eq!(t.prior(cs), t.prior(cl));
        }
        assert_eq!(t.outstanding_vl(), 0);
        t.check_invariants();
    }

    #[test]
    fn advance_root_clears_transposition_index() {
        let mut t = Tree::new(tt_cfg(200));
        let base = TicTacToe::new();
        grow_tt(&mut t, &base, 150);
        let mut s = base.clone();
        s.apply(0);
        // Some depth-1 hash is indexed before the re-root…
        let indexed: Vec<u64> = (0..9u16)
            .filter_map(|a| {
                let mut g = base.clone();
                g.apply(a);
                t.tt_lookup(g.hash()).map(|_| g.hash())
            })
            .collect();
        assert!(!indexed.is_empty(), "depth-1 states should be indexed");
        t.advance_root(0);
        for h in indexed {
            assert_eq!(t.tt_lookup(h), None, "stale entry survived re-root");
        }
        // And the tree keeps searching correctly from the new root.
        grow_tt(&mut t, &s, 100);
        t.check_invariants();
    }

    #[test]
    fn disabled_transpositions_never_index() {
        let mut t = Tree::new(cfg(50));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        t.tt_record(g.hash(), 0); // silently ignored
        assert_eq!(t.tt_lookup(g.hash()), None);
    }

    #[test]
    fn reset_in_place_keeps_arena_memory() {
        let mut t = Tree::new(cfg(100));
        grow(&mut t, &TicTacToe::new(), 60);
        let hw = t.stats().high_water;
        assert!(hw > 1);
        t.reset_in_place();
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats().high_water, 1, "columns truncated to the root");
        // Regrowing reuses the reserved memory (no panic, same shape).
        grow(&mut t, &TicTacToe::new(), 60);
        assert_eq!(t.stats().high_water, hw, "deterministic regrowth");
        t.check_invariants();
    }
}
