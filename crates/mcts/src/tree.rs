//! The single-owner search tree used by the serial baseline and by the
//! local-tree scheme's master thread.
//!
//! Nodes live in a flat arena (`Vec<Node>`, `u32` indices) — the paper's
//! "dynamically allocated array of node structs" — which keeps the whole
//! tree compact and cache-friendly, the property the local-tree method
//! exploits (§3.1.2). No synchronization: exactly one thread owns the tree.
//!
//! Each node doubles as the edge from its parent (storing `prior`, `N`,
//! `W`), following the AlphaZero formulation where statistics live on
//! edges. `W` is accumulated from the perspective of the player who *moved
//! into* the node, so `Q(s,a) = W(child)/N(child)` is directly the expected
//! reward for the player choosing `a` at `s`.

use crate::config::{MctsConfig, VirtualLoss};
use games::{Action, Game, Status};

/// Sentinel "no node" index.
pub const NIL: u32 = u32::MAX;

/// Expansion state of a node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeState {
    /// Never evaluated; children unknown.
    Unexpanded,
    /// Claimed by an in-flight evaluation (local scheme). Holds the legal
    /// actions captured at claim time so expansion needs no game replay.
    Pending(Vec<Action>),
    /// Children created; selection may descend.
    Expanded,
    /// Game over at this node; the payload is the terminal value from the
    /// perspective of the player to move at this node.
    Terminal(f32),
}

/// One tree node / incoming edge.
#[derive(Debug, Clone)]
pub struct Node {
    /// Parent index (`NIL` for the root).
    pub parent: u32,
    /// Action taken at the parent to reach this node.
    pub action: Action,
    /// DNN prior probability `P(s,a)` of that action.
    pub prior: f32,
    /// Completed visits `N`.
    pub n: u32,
    /// Accumulated value `W` (perspective of the player who moved here).
    pub w: f64,
    /// In-flight playouts through this node (virtual-loss count /
    /// WU-UCT's unobserved count `O`).
    pub vl: u32,
    /// Child indices (empty unless `Expanded`).
    pub children: Vec<u32>,
    /// Expansion state.
    pub state: NodeState,
}

impl Node {
    fn new(parent: u32, action: Action, prior: f32) -> Self {
        Node {
            parent,
            action,
            prior,
            n: 0,
            w: 0.0,
            vl: 0,
            children: Vec::new(),
            state: NodeState::Unexpanded,
        }
    }

    /// Mean action value `Q` adjusted for virtual loss.
    fn q(&self, vl_kind: VirtualLoss, q_init: f32) -> f32 {
        match vl_kind {
            VirtualLoss::Constant(c) => {
                let n_eff = self.n + self.vl;
                if n_eff == 0 {
                    q_init
                } else {
                    ((self.w - c as f64 * self.vl as f64) / n_eff as f64) as f32
                }
            }
            VirtualLoss::VisitTracking => {
                if self.n == 0 {
                    q_init
                } else {
                    (self.w / self.n as f64) as f32
                }
            }
        }
    }

    /// Effective visit count (real + in-flight) used in the UCT terms.
    #[inline]
    fn n_eff(&self) -> u32 {
        self.n + self.vl
    }
}

/// What [`Tree::select`] found at the end of the traversed path.
#[derive(Debug, PartialEq)]
pub enum SelectOutcome {
    /// Leaf claimed for evaluation; caller must evaluate the game state it
    /// was handed and then call [`Tree::expand_and_backup`].
    NeedsEval,
    /// A terminal node; its value has been backed up already.
    TerminalBackedUp,
    /// The leaf is already being evaluated by another in-flight playout;
    /// the path's virtual loss has been reverted. Caller should process a
    /// pending result before retrying.
    Busy,
}

/// Single-owner MCTS tree.
pub struct Tree {
    nodes: Vec<Node>,
    cfg: MctsConfig,
    /// Per-tree nonce mixed into the root-noise seed (one tree per move).
    noise_nonce: u64,
}

impl Tree {
    /// Fresh tree containing only an unexpanded root.
    pub fn new(cfg: MctsConfig) -> Self {
        let mut nodes = Vec::with_capacity(1024.min(cfg.arena_capacity(64)));
        nodes.push(Node::new(NIL, 0, 1.0));
        Tree {
            nodes,
            cfg,
            noise_nonce: crate::noise::next_nonce(),
        }
    }

    /// Root index (always 0).
    #[inline]
    pub fn root(&self) -> u32 {
        0
    }

    /// Number of allocated nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Immutable node access.
    pub fn node(&self, id: u32) -> &Node {
        &self.nodes[id as usize]
    }

    /// Traverse from the root following UCT (Eq. 1), applying virtual loss
    /// to every edge stepped through, and advancing `game` along the path.
    ///
    /// Returns the reached leaf and what to do with it. On
    /// `SelectOutcome::NeedsEval` the leaf has been marked
    /// [`NodeState::Pending`] and `game` is positioned at the leaf's state.
    pub fn select<G: Game>(&mut self, game: &mut G) -> (u32, SelectOutcome) {
        let mut cur = self.root();
        loop {
            match &self.nodes[cur as usize].state {
                NodeState::Terminal(v) => {
                    let v = *v;
                    self.backup(cur, v);
                    return (cur, SelectOutcome::TerminalBackedUp);
                }
                NodeState::Pending(_) => {
                    self.revert_path(cur);
                    return (cur, SelectOutcome::Busy);
                }
                NodeState::Unexpanded => {
                    // Claim for evaluation, remembering the legal actions.
                    let mut legal = Vec::new();
                    game.legal_actions_into(&mut legal);
                    debug_assert!(!legal.is_empty(), "ongoing state with no moves");
                    self.nodes[cur as usize].state = NodeState::Pending(legal);
                    return (cur, SelectOutcome::NeedsEval);
                }
                NodeState::Expanded => {
                    let best = self.select_child(cur);
                    self.nodes[best as usize].vl += 1;
                    let action = self.nodes[best as usize].action;
                    game.apply(action);
                    cur = best;
                    // First arrival at a terminal state: freeze its value.
                    let status = game.status();
                    if status.is_terminal()
                        && matches!(self.nodes[cur as usize].state, NodeState::Unexpanded)
                    {
                        let v = terminal_value(status, game);
                        self.nodes[cur as usize].state = NodeState::Terminal(v);
                    }
                }
            }
        }
    }

    /// Pick the child of `parent` maximizing the UCT score (Eq. 1).
    fn select_child(&self, parent: u32) -> u32 {
        let p = &self.nodes[parent as usize];
        debug_assert!(!p.children.is_empty(), "select on childless node");
        let sum_n: u32 = p
            .children
            .iter()
            .map(|&c| self.nodes[c as usize].n_eff())
            .sum();
        let sqrt_sum = (sum_n as f32).sqrt();
        let mut best = p.children[0];
        let mut best_score = f32::NEG_INFINITY;
        for &cid in &p.children {
            let c = &self.nodes[cid as usize];
            let q = c.q(self.cfg.virtual_loss, self.cfg.q_init);
            let u = q + self.cfg.c_puct * c.prior * sqrt_sum / (1.0 + c.n_eff() as f32);
            if u > best_score {
                best_score = u;
                best = cid;
            }
        }
        best
    }

    /// Expand a pending leaf with DNN priors (masked to the legal actions
    /// captured at claim time, renormalized) and back up `value`.
    ///
    /// `value` is from the perspective of the player to move at the leaf —
    /// the evaluator's output convention.
    pub fn expand_and_backup(&mut self, leaf: u32, priors: &[f32], value: f32) {
        let legal =
            match std::mem::replace(&mut self.nodes[leaf as usize].state, NodeState::Expanded) {
                NodeState::Pending(legal) => legal,
                other => panic!("expand_and_backup on non-pending node ({other:?})"),
            };
        debug_assert!(!legal.is_empty());

        let mut masked = mask_and_normalize(priors, &legal);
        // AlphaZero self-play: mix Dirichlet noise into the ROOT priors.
        if leaf == self.root() {
            if let Some(noise) = self.cfg.root_noise {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    noise.seed ^ self.noise_nonce.rotate_left(17),
                );
                crate::noise::mix_noise(&mut rng, &noise, &mut masked);
            }
        }
        let mut children = Vec::with_capacity(legal.len());
        for (&a, &p) in legal.iter().zip(&masked) {
            let id = self.nodes.len() as u32;
            self.nodes.push(Node::new(leaf, a, p));
            children.push(id);
        }
        self.nodes[leaf as usize].children = children;
        self.backup(leaf, value);
    }

    /// Propagate `value` (leaf player's perspective) from `leaf` to the
    /// root: increment `N`, accumulate sign-alternating `W`, and release
    /// one unit of virtual loss per edge.
    pub fn backup(&mut self, leaf: u32, value: f32) {
        let mut cur = leaf;
        // W at a node is from the mover's (parent player's) perspective,
        // so the leaf itself receives -value.
        let mut sign = -1.0f64;
        loop {
            let node = &mut self.nodes[cur as usize];
            node.n += 1;
            node.w += sign * value as f64;
            if node.parent == NIL {
                break;
            }
            debug_assert!(node.vl > 0, "backup without matching virtual loss");
            node.vl = node.vl.saturating_sub(1);
            cur = node.parent;
            sign = -sign;
        }
    }

    /// Undo the virtual loss applied along the path ending at `leaf`
    /// (used when a playout attempt is aborted).
    pub fn revert_path(&mut self, leaf: u32) {
        let mut cur = leaf;
        while self.nodes[cur as usize].parent != NIL {
            let node = &mut self.nodes[cur as usize];
            debug_assert!(node.vl > 0, "revert without matching virtual loss");
            node.vl = node.vl.saturating_sub(1);
            cur = node.parent;
        }
    }

    /// Root visit counts over the full action space plus the normalized
    /// distribution and the root value estimate (current player's view).
    pub fn action_prior(&self, action_space: usize) -> (Vec<u32>, Vec<f32>, f32) {
        let mut visits = vec![0u32; action_space];
        let root = &self.nodes[0];
        for &cid in &root.children {
            let c = &self.nodes[cid as usize];
            visits[c.action as usize] = c.n;
        }
        let total: u32 = visits.iter().sum();
        let probs = if total == 0 {
            vec![0.0; action_space]
        } else {
            visits.iter().map(|&v| v as f32 / total as f32).collect()
        };
        let value = if root.n == 0 {
            0.0
        } else {
            (-(root.w / root.n as f64)) as f32
        };
        (visits, probs, value)
    }

    /// Find the root child reached by `action`, if the root is expanded and
    /// the action was explored.
    pub fn root_child_for(&self, action: Action) -> Option<u32> {
        self.nodes[0]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c as usize].action == action)
    }

    /// Copy the subtree rooted at `new_root` into a fresh arena, making it
    /// the root. Statistics (`N`, `W`, priors, expansion state) are
    /// preserved; the new root's edge data is reset (it no longer has a
    /// parent). Used for tree reuse across moves: after playing action `a`,
    /// the child's subtree becomes the next search's starting tree.
    ///
    /// Must be called between moves: panics if any virtual loss is
    /// outstanding inside the subtree.
    pub fn extract_subtree(&self, new_root: u32) -> Tree {
        let mut out = Tree::new(self.cfg);
        // Map old index → new index; BFS copy keeps parents before children.
        let mut map = std::collections::HashMap::new();
        map.insert(new_root, 0u32);
        let src_root = &self.nodes[new_root as usize];
        assert_eq!(src_root.vl, 0, "extract_subtree with in-flight playouts");
        out.nodes[0] = Node {
            parent: NIL,
            action: 0,
            prior: 1.0,
            n: src_root.n,
            w: src_root.w,
            vl: 0,
            children: Vec::new(), // fixed up below
            state: src_root.state.clone(),
        };
        let mut queue = std::collections::VecDeque::from([new_root]);
        while let Some(old_id) = queue.pop_front() {
            let new_id = map[&old_id];
            let mut new_children = Vec::with_capacity(self.nodes[old_id as usize].children.len());
            for &old_child in &self.nodes[old_id as usize].children {
                let c = &self.nodes[old_child as usize];
                assert_eq!(c.vl, 0, "extract_subtree with in-flight playouts");
                let new_child = out.nodes.len() as u32;
                out.nodes.push(Node {
                    parent: new_id,
                    action: c.action,
                    prior: c.prior,
                    n: c.n,
                    w: c.w,
                    vl: 0,
                    children: Vec::new(),
                    state: c.state.clone(),
                });
                map.insert(old_child, new_child);
                new_children.push(new_child);
                queue.push_back(old_child);
            }
            out.nodes[new_id as usize].children = new_children;
        }
        out
    }

    /// Replace the priors of `node`'s children with `masked` (one entry per
    /// child, already legal-masked and normalized) and add `dv` to the
    /// subtree values along the path to the root *without* changing visit
    /// counts. Used by speculative search to correct a node first expanded
    /// with a cheap model once the main model's evaluation arrives.
    pub fn correct_expansion(&mut self, node: u32, masked: &[f32], dv: f32) {
        assert_eq!(
            self.nodes[node as usize].children.len(),
            masked.len(),
            "corrected priors must cover every child"
        );
        // Index-based walk: cloning the child vector here put a heap
        // allocation on every speculative correction.
        for (i, &p) in masked.iter().enumerate() {
            let cid = self.nodes[node as usize].children[i];
            self.nodes[cid as usize].prior = p;
        }
        // Same sign convention as `backup`: the node's own W is from the
        // perspective of the player who moved into it.
        let mut cur = node;
        let mut sign = -1.0f64;
        loop {
            let n = &mut self.nodes[cur as usize];
            n.w += sign * dv as f64;
            if n.parent == NIL {
                break;
            }
            cur = n.parent;
            sign = -sign;
        }
    }

    /// Legal actions captured when `node` was claimed/expanded, in child
    /// order (empty for unexpanded nodes).
    pub fn child_actions(&self, node: u32) -> Vec<Action> {
        self.nodes[node as usize]
            .children
            .iter()
            .map(|&c| self.nodes[c as usize].action)
            .collect()
    }

    /// Sum of outstanding virtual losses (0 when no playouts in flight).
    pub fn outstanding_vl(&self) -> u64 {
        self.nodes.iter().map(|n| n.vl as u64).sum()
    }

    /// Consistency check used by tests: for every expanded node,
    /// `N(node) == Σ N(children) + (playouts that ended at node)` and all
    /// virtual losses are released.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert_eq!(self.outstanding_vl(), 0, "dangling virtual loss");
        for (id, node) in self.nodes.iter().enumerate() {
            if node.state == NodeState::Expanded {
                let child_sum: u32 = node
                    .children
                    .iter()
                    .map(|&c| self.nodes[c as usize].n)
                    .sum();
                // Every visit to an expanded node either terminated here
                // (the expansion visit) or descended into a child.
                assert!(
                    node.n >= child_sum,
                    "node {id}: N={} < children {}",
                    node.n,
                    child_sum
                );
                assert!(
                    node.n - child_sum <= 1,
                    "node {id}: more than one self-visit: N={} children={}",
                    node.n,
                    child_sum
                );
            }
            for &c in &node.children {
                assert_eq!(self.nodes[c as usize].parent as usize, id, "parent link");
            }
        }
    }
}

/// Terminal value from the perspective of the player to move at the state.
pub fn terminal_value<G: Game>(status: Status, game: &G) -> f32 {
    status.reward_for(game.to_move())
}

/// Mask full-action-space `priors` down to `legal` actions and normalize;
/// falls back to uniform when the legal prior mass vanishes.
pub(crate) fn mask_and_normalize(priors: &[f32], legal: &[Action]) -> Vec<f32> {
    let mut total: f32 = legal.iter().map(|&a| priors[a as usize].max(0.0)).sum();
    let uniform = total <= 1e-8 || !total.is_finite();
    if uniform {
        total = legal.len() as f32;
    }
    legal
        .iter()
        .map(|&a| {
            if uniform {
                1.0 / total
            } else {
                priors[a as usize].max(0.0) / total
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::clone_on_copy)] // Copy test games cloned for symmetry with non-Copy ones
mod tests {
    use super::*;
    use games::tictactoe::TicTacToe;

    fn cfg(playouts: usize) -> MctsConfig {
        MctsConfig {
            playouts,
            ..Default::default()
        }
    }

    fn uniform_priors(n: usize) -> Vec<f32> {
        vec![1.0 / n as f32; n]
    }

    #[test]
    fn fresh_tree_has_unexpanded_root() {
        let t = Tree::new(cfg(10));
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.node(0).state, NodeState::Unexpanded);
    }

    #[test]
    fn first_select_claims_root() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let (leaf, out) = t.select(&mut g);
        assert_eq!(leaf, 0);
        assert_eq!(out, SelectOutcome::NeedsEval);
        assert!(matches!(t.node(0).state, NodeState::Pending(_)));
    }

    #[test]
    fn expand_creates_children_for_legal_moves() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.3);
        assert_eq!(t.node(0).children.len(), 9);
        assert_eq!(t.node(0).n, 1);
        // Root W accumulates from the "mover into root" perspective: -v.
        assert!((t.node(0).w + 0.3).abs() < 1e-6);
        t.check_invariants();
    }

    #[test]
    fn second_select_descends_and_applies_vl() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let mut g2 = TicTacToe::new();
        let (leaf, out) = t.select(&mut g2);
        assert_ne!(leaf, 0);
        assert_eq!(out, SelectOutcome::NeedsEval);
        assert_eq!(t.node(leaf).vl, 1, "virtual loss on traversed edge");
        assert_eq!(g2.move_count(), 1, "game advanced one ply");
        t.expand_and_backup(leaf, &uniform_priors(9), 0.5);
        assert_eq!(t.node(leaf).vl, 0, "virtual loss released by backup");
        t.check_invariants();
    }

    #[test]
    fn pending_leaf_reports_busy_and_reverts() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        // Root pending; another selection attempt must see Busy and leave
        // no dangling VL.
        let mut g2 = TicTacToe::new();
        let (leaf, out) = t.select(&mut g2);
        assert_eq!(out, SelectOutcome::Busy);
        assert_eq!(leaf, 0);
        assert_eq!(t.outstanding_vl(), 0);
    }

    #[test]
    fn virtual_loss_diverts_second_playout() {
        // With constant VL, an in-flight playout through the best child
        // must push the next selection to a different child.
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let mut g1 = TicTacToe::new();
        let (leaf1, _) = t.select(&mut g1);
        let mut g2 = TicTacToe::new();
        let (leaf2, _) = t.select(&mut g2);
        assert_ne!(leaf1, leaf2, "VL should steer workers apart");
        t.revert_path(leaf1);
        t.revert_path(leaf2);
        // Reverts must also clear the Pending claims for reuse… pending
        // claims stay (they model in-flight evals); just check VL.
        assert_eq!(t.outstanding_vl(), 0);
    }

    #[test]
    fn terminal_nodes_back_up_true_outcome() {
        // Play a nearly-finished game: X has two in a row; drive search to
        // discover the winning terminal.
        let mut base = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            base.apply(a);
        }
        // X to move, playing 2 wins.
        let mut t = Tree::new(cfg(100));
        let mut g = base.clone();
        let _ = t.select(&mut g);
        let legal = base.legal_actions();
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        assert_eq!(t.node(0).children.len(), legal.len());

        // Run many playouts with uniform priors; terminal discovery should
        // make the winning move dominate.
        for _ in 0..200 {
            let mut g = base.clone();
            let (leaf, out) = t.select(&mut g);
            match out {
                SelectOutcome::NeedsEval => {
                    let n = g.legal_actions().len().max(1);
                    let _ = n;
                    t.expand_and_backup(leaf, &uniform_priors(9), 0.0);
                }
                SelectOutcome::TerminalBackedUp => {}
                SelectOutcome::Busy => unreachable!("serial use"),
            }
        }
        let (visits, probs, value) = t.action_prior(9);
        assert_eq!(
            tensor::ops::argmax(&probs),
            2,
            "winning move must dominate: visits {visits:?}"
        );
        assert!(value > 0.5, "root value should favor X, got {value}");
        t.check_invariants();
    }

    #[test]
    fn priors_masked_and_renormalized() {
        let mut t = Tree::new(cfg(10));
        let mut base = TicTacToe::new();
        base.apply(4); // center occupied → action 4 illegal
        let mut g = base.clone();
        let _ = t.select(&mut g);
        let mut priors = vec![0.0f32; 9];
        priors[4] = 0.9; // mass on an illegal action
        priors[0] = 0.05;
        priors[1] = 0.05;
        t.expand_and_backup(0, &priors, 0.0);
        let total: f32 = t.node(0).children.iter().map(|&c| t.node(c).prior).sum();
        assert!((total - 1.0).abs() < 1e-5, "renormalized priors sum to 1");
        assert!(t.node(0).children.iter().all(|&c| t.node(c).action != 4));
    }

    #[test]
    fn zero_prior_mass_falls_back_to_uniform() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &[0.0; 9], 0.0);
        for &c in &t.node(0).children {
            assert!((t.node(c).prior - 1.0 / 9.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backup_alternates_signs() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let mut g2 = TicTacToe::new();
        let (leaf, _) = t.select(&mut g2);
        t.expand_and_backup(leaf, &uniform_priors(9), 1.0);
        // Leaf: -1 (value from leaf player's view is +1 ⇒ mover's view -1).
        assert!((t.node(leaf).w + 1.0).abs() < 1e-6);
        // Root (one level up): +1, plus 0 from its own expansion backup.
        assert!((t.node(0).w - 1.0).abs() < 1e-6);
    }

    #[test]
    fn action_prior_normalizes_to_one() {
        let mut t = Tree::new(cfg(50));
        let base = TicTacToe::new();
        let mut g = base.clone();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        for _ in 0..50 {
            let mut g = base.clone();
            let (leaf, out) = t.select(&mut g);
            if out == SelectOutcome::NeedsEval {
                t.expand_and_backup(leaf, &uniform_priors(9), 0.0);
            }
        }
        let (visits, probs, _) = t.action_prior(9);
        assert_eq!(visits.iter().sum::<u32>(), 51 - 1);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        t.check_invariants();
    }

    #[test]
    fn extract_subtree_preserves_statistics() {
        let mut t = Tree::new(cfg(100));
        let base = TicTacToe::new();
        let mut g = base.clone();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        for _ in 0..60 {
            let mut g = base.clone();
            let (leaf, out) = t.select(&mut g);
            if out == SelectOutcome::NeedsEval {
                t.expand_and_backup(leaf, &uniform_priors(9), 0.1);
            }
        }
        let child = t.node(0).children[3];
        let sub = t.extract_subtree(child);
        assert_eq!(sub.node(0).n, t.node(child).n);
        assert!((sub.node(0).w - t.node(child).w).abs() < 1e-9);
        assert_eq!(sub.node(0).children.len(), t.node(child).children.len());
        // Child priors carried over in order.
        for (&sc, &tc) in sub.node(0).children.iter().zip(&t.node(child).children) {
            assert_eq!(sub.node(sc).prior, t.node(tc).prior);
            assert_eq!(sub.node(sc).action, t.node(tc).action);
            assert_eq!(sub.node(sc).n, t.node(tc).n);
        }
        sub.check_invariants();
    }

    #[test]
    fn extract_subtree_of_unexpanded_child_is_fresh() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let child = t.node(0).children[0];
        let sub = t.extract_subtree(child);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.node(0).state, NodeState::Unexpanded);
    }

    #[test]
    fn root_child_for_finds_action() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let c = t.root_child_for(4).expect("center child exists");
        assert_eq!(t.node(c).action, 4);
        assert_eq!(t.root_child_for(100), None);
    }

    #[test]
    fn correct_expansion_updates_priors_and_values() {
        let mut t = Tree::new(cfg(10));
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.2);
        let w_before = t.node(0).w;
        let new_priors = vec![1.0 / 9.0; 9];
        t.correct_expansion(0, &new_priors, 0.5);
        // Root W shifts by -dv (mover's perspective).
        assert!((t.node(0).w - (w_before - 0.5)).abs() < 1e-6);
        // N unchanged.
        assert_eq!(t.node(0).n, 1);
    }

    #[test]
    fn visit_tracking_vl_mode_also_diverges() {
        let mut t = Tree::new(MctsConfig {
            virtual_loss: VirtualLoss::VisitTracking,
            ..cfg(10)
        });
        let mut g = TicTacToe::new();
        let _ = t.select(&mut g);
        t.expand_and_backup(0, &uniform_priors(9), 0.0);
        let mut g1 = TicTacToe::new();
        let (l1, _) = t.select(&mut g1);
        let mut g2 = TicTacToe::new();
        let (l2, _) = t.select(&mut g2);
        assert_ne!(l1, l2, "unobserved-count VL must also steer apart");
        t.revert_path(l1);
        t.revert_path(l2);
        assert_eq!(t.outstanding_vl(), 0);
    }
}
