//! Sharded, fixed-capacity evaluation cache for DNN leaf evaluations.
//!
//! Serving workloads re-search the same popular positions constantly:
//! every leaf expansion pays a full network forward even when an
//! identical state was evaluated moments ago by another session. This
//! module adds the missing memoization layer between the search schemes
//! and the coalescing/inference stack:
//!
//! * [`EvalCache`] — a lock-striped, set-associative hash cache keyed by
//!   `(model_epoch, state_hash)` storing compact entries (u16-quantized
//!   policy priors + exact f32 value) under a **hard byte budget**, with
//!   bucketed age-based replacement and atomic [`CacheStats`];
//! * [`CachedEvaluator`] — a [`BatchEvaluator`] wrapper that splits each
//!   *keyed* batch into hits and misses, forwards only the misses to the
//!   inner evaluator, and scatters results back in order. Composed
//!   **above** a shared [`crate::CoalescingEvaluator`], cross-session
//!   coalescing still sees the residual miss batch.
//!
//! # Epoch semantics
//!
//! Entries are tagged with the cache's *model epoch* at insertion time.
//! [`EvalCache::bump_epoch`] is O(1): it increments the epoch counter,
//! after which every existing entry stops matching lookups and ages out
//! through normal replacement — swapping network weights never serves
//! stale priors and never stalls serving on a flush.
//!
//! # Correctness precondition
//!
//! Keys are [`games::Game::hash`] values, which every game guarantees to
//! distinguish reachable states *including side-to-move* (see the hash
//! unit tests and the cross-game proptest in `tests/proptest_hash.rs`).
//! Values are cached bitwise; priors are quantized to `u16` (worst-case
//! error `1/131070` per entry), which PUCT tolerates freely.

use crate::evaluator::{BatchEvaluator, EvalOutput};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for an [`EvalCache`].
#[derive(Debug, Clone, Copy)]
pub struct EvalCacheConfig {
    /// Hard byte budget across all shards. The cache rounds *down* to
    /// whole power-of-two bucket arrays, so actual residency never
    /// exceeds this.
    pub capacity_bytes: usize,
    /// Number of independently locked shards (striping the key space).
    pub shards: usize,
    /// Bucket associativity: candidate slots per key. Replacement picks
    /// the oldest of these `ways` when the bucket is full.
    pub ways: usize,
    /// Entry time-to-live. `None` means entries live until evicted or
    /// the epoch moves on.
    pub ttl: Option<Duration>,
}

/// Default byte budget: 32 MiB, roomy for ~10⁵ Gomoku-sized entries.
pub const DEFAULT_CACHE_BYTES: usize = 32 << 20;

impl Default for EvalCacheConfig {
    fn default() -> Self {
        EvalCacheConfig {
            capacity_bytes: DEFAULT_CACHE_BYTES,
            shards: 16,
            ways: 8,
            ttl: None,
        }
    }
}

impl EvalCacheConfig {
    /// A config with the given byte budget and defaults elsewhere.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        EvalCacheConfig {
            capacity_bytes,
            ..Default::default()
        }
    }
}

/// Monotonic cache counters. All fields are lifetime totals; subtract
/// snapshots to get interval rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (absent, wrong epoch, or expired).
    pub misses: u64,
    /// Entries written (first fills, refreshes and replacements).
    pub inserts: u64,
    /// Entries overwritten while still live (bucket pressure).
    pub evictions: u64,
    /// Bytes currently resident (monotone until capacity, then flat).
    pub bytes: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups so far (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another stats snapshot into this one (bytes add too: used
    /// when merging per-cache totals into service/cluster aggregates).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.bytes += other.bytes;
    }
}

/// One cache slot. `priors.is_empty()` marks a vacant slot; filled slots
/// always hold exactly `action_space` quantized priors.
struct Slot {
    key: u64,
    epoch: u32,
    /// Milliseconds since cache construction at last touch (insert or
    /// hit) — drives both TTL expiry and oldest-first replacement.
    stamp: u32,
    value: f32,
    priors: Vec<u16>,
}

struct Shard {
    slots: Vec<Slot>,
}

/// Sharded, lock-striped, set-associative evaluation cache keyed by
/// `(model_epoch, state_hash)`. See the [module docs](self) for the
/// design; all methods are safe to call concurrently.
pub struct EvalCache {
    shards: Vec<Mutex<Shard>>,
    /// Buckets per shard (power of two).
    buckets: usize,
    ways: usize,
    action_space: usize,
    entry_bytes: usize,
    capacity_bytes: usize,
    ttl_ms: Option<u32>,
    epoch: AtomicU32,
    birth: Instant,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

/// splitmix64 finalizer: spreads game hashes (which may be structured,
/// e.g. connect4's arithmetic key) uniformly over shards and buckets.
#[inline]
fn mix(key: u64, epoch: u32) -> u64 {
    let mut z = key ^ (epoch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl EvalCache {
    /// Build a cache for priors of length `action_space` under
    /// `cfg.capacity_bytes`. Slot counts round *down* so residency never
    /// exceeds the budget; a tiny budget still yields one bucket per
    /// shard (the cache degrades, it never panics).
    pub fn new(cfg: EvalCacheConfig, action_space: usize) -> Self {
        assert!(action_space > 0, "action space must be positive");
        let shards = cfg.shards.max(1);
        let ways = cfg.ways.max(1);
        let entry_bytes = std::mem::size_of::<Slot>() + 2 * action_space;
        let total_slots = (cfg.capacity_bytes / entry_bytes).max(shards * ways);
        let per_shard = (total_slots / shards).max(ways);
        // Round buckets down to a power of two for mask indexing.
        let buckets = {
            let raw = (per_shard / ways).max(1);
            let mut p = 1usize;
            while p * 2 <= raw {
                p *= 2;
            }
            p
        };
        let shard_vec = (0..shards)
            .map(|_| {
                let n = buckets * ways;
                let mut slots = Vec::with_capacity(n);
                slots.resize_with(n, || Slot {
                    key: 0,
                    epoch: 0,
                    stamp: 0,
                    value: 0.0,
                    priors: Vec::new(),
                });
                Mutex::new(Shard { slots })
            })
            .collect();
        EvalCache {
            shards: shard_vec,
            buckets,
            ways,
            action_space,
            entry_bytes,
            capacity_bytes: cfg.capacity_bytes,
            ttl_ms: cfg
                .ttl
                .map(|d| (d.as_millis().min(u32::MAX as u128)) as u32),
            epoch: AtomicU32::new(0),
            birth: Instant::now(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Prior-vector length entries are stored at.
    pub fn action_space(&self) -> usize {
        self.action_space
    }

    /// Configured hard byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes one resident entry accounts for (slot header + quantized
    /// priors). Exposed so tests can reason about the budget exactly.
    pub fn entry_bytes(&self) -> usize {
        self.entry_bytes
    }

    /// Total slot capacity in entries (all shards).
    pub fn capacity_entries(&self) -> usize {
        self.shards.len() * self.buckets * self.ways
    }

    /// Current model epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance the model epoch: O(1) invalidation of every cached entry
    /// (they stop matching and age out through replacement). Call on
    /// model weight swaps.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    #[inline]
    fn now_ms(&self) -> u32 {
        (self.birth.elapsed().as_millis().min(u32::MAX as u128)) as u32
    }

    #[inline]
    fn locate(&self, mixed: u64) -> (usize, usize) {
        let shard = ((mixed >> 48) as usize) % self.shards.len();
        let bucket = (mixed as usize) & (self.buckets - 1);
        (shard, bucket * self.ways)
    }

    /// Look up `key` at the current epoch. On a hit, dequantized priors
    /// and the exact value are written into `out` (recycling its
    /// allocation) and the entry's age refreshes. Returns whether it hit.
    pub fn get(&self, key: u64, out: &mut EvalOutput) -> bool {
        let epoch = self.epoch();
        let mixed = mix(key, epoch);
        let (shard, base) = self.locate(mixed);
        let now = self.now_ms();
        let mut guard = self.shards[shard].lock();
        for slot in &mut guard.slots[base..base + self.ways] {
            if slot.key == key && slot.epoch == epoch && !slot.priors.is_empty() {
                if let Some(ttl) = self.ttl_ms {
                    if now.saturating_sub(slot.stamp) > ttl {
                        // Expired: leave for replacement to reclaim.
                        break;
                    }
                }
                slot.stamp = now;
                out.value = slot.value;
                out.priors.clear();
                out.priors
                    .extend(slot.priors.iter().map(|&q| q as f32 / 65535.0));
                drop(guard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        drop(guard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Insert (or refresh) an entry for `key` at the current epoch.
    /// Replacement order within a bucket: same key, then any vacant or
    /// dead-epoch/expired slot, then the oldest live entry (counted as
    /// an eviction).
    pub fn insert(&self, key: u64, priors: &[f32], value: f32) {
        debug_assert_eq!(priors.len(), self.action_space);
        let epoch = self.epoch();
        let mixed = mix(key, epoch);
        let (shard, base) = self.locate(mixed);
        let now = self.now_ms();
        let mut guard = self.shards[shard].lock();
        let bucket = &mut guard.slots[base..base + self.ways];
        let mut victim = 0usize;
        let mut victim_dead = false;
        let mut victim_stamp = u32::MAX;
        for (i, slot) in bucket.iter().enumerate() {
            if slot.key == key && slot.epoch == epoch && !slot.priors.is_empty() {
                victim = i;
                victim_dead = true; // same-key refresh is never an eviction
                break;
            }
            let dead = slot.priors.is_empty()
                || slot.epoch != epoch
                || self
                    .ttl_ms
                    .is_some_and(|ttl| now.saturating_sub(slot.stamp) > ttl);
            if dead && !victim_dead {
                victim = i;
                victim_dead = true;
            } else if !victim_dead && slot.stamp < victim_stamp {
                victim = i;
                victim_stamp = slot.stamp;
            }
        }
        let slot = &mut bucket[victim];
        let was_vacant = slot.priors.is_empty();
        if !victim_dead {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        slot.key = key;
        slot.epoch = epoch;
        slot.stamp = now;
        slot.value = value;
        slot.priors.clear();
        slot.priors.extend(
            priors
                .iter()
                .map(|&p| (p.clamp(0.0, 1.0) * 65535.0).round() as u16),
        );
        drop(guard);
        if was_vacant {
            self.bytes
                .fetch_add(self.entry_bytes as u64, Ordering::Relaxed);
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the atomic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Scratch recycled across [`CachedEvaluator::evaluate_batch_keyed`]
/// calls on a thread: miss indices and miss outputs (whose prior `Vec`s
/// swap back and forth with the caller's, so capacity is never dropped).
struct CacheScratch {
    miss_idx: Vec<usize>,
    miss_out: Vec<EvalOutput>,
}

thread_local! {
    static CACHE_SCRATCH: RefCell<CacheScratch> = const {
        RefCell::new(CacheScratch {
            miss_idx: Vec::new(),
            miss_out: Vec::new(),
        })
    };
}

/// A [`BatchEvaluator`] that serves keyed lookups from an [`EvalCache`]
/// and forwards only the residual misses to the inner evaluator in one
/// batch, scattering results back in request order.
///
/// * Keyed entry points ([`BatchEvaluator::evaluate_batch_keyed`],
///   [`BatchEvaluator::evaluate_one_keyed`]) consult the cache.
/// * The keyless [`BatchEvaluator::evaluate_batch`] passes straight
///   through — without a position hash there is nothing sound to key on,
///   so unkeyed callers observe the inner evaluator exactly.
///
/// Batching metadata (`preferred_batch`, `coalesces_internally`) is
/// forwarded unchanged, so stacking this above a shared
/// [`crate::CoalescingEvaluator`] leaves the serve-layer composition
/// rules intact.
pub struct CachedEvaluator {
    inner: Arc<dyn BatchEvaluator>,
    cache: Arc<EvalCache>,
}

impl CachedEvaluator {
    /// Wrap `inner` with `cache`. The cache must have been sized for the
    /// same action space.
    pub fn new(inner: Arc<dyn BatchEvaluator>, cache: Arc<EvalCache>) -> Self {
        assert_eq!(
            cache.action_space(),
            inner.action_space(),
            "cache sized for a different action space"
        );
        CachedEvaluator { inner, cache }
    }

    /// The shared cache (e.g. to read [`EvalCache::stats`]).
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &Arc<dyn BatchEvaluator> {
        &self.inner
    }
}

impl BatchEvaluator for CachedEvaluator {
    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn action_space(&self) -> usize {
        self.inner.action_space()
    }

    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        self.inner.evaluate_batch(inputs, out);
    }

    fn preferred_batch(&self) -> usize {
        self.inner.preferred_batch()
    }

    fn coalesces_internally(&self) -> bool {
        self.inner.coalesces_internally()
    }

    fn evaluate_batch_keyed(&self, keys: &[u64], inputs: &[&[f32]], out: &mut [EvalOutput]) {
        debug_assert_eq!(keys.len(), inputs.len());
        debug_assert_eq!(keys.len(), out.len());
        // Take the scratch out of the RefCell for the duration: the
        // inner evaluator may live on this thread too (NnEvaluator uses
        // its own thread-local), and holding a borrow across its call
        // would make reentrancy a panic instead of a slow path.
        let mut scratch = CACHE_SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            CacheScratch {
                miss_idx: std::mem::take(&mut s.miss_idx),
                miss_out: std::mem::take(&mut s.miss_out),
            }
        });
        scratch.miss_idx.clear();
        for (i, (&key, o)) in keys.iter().zip(out.iter_mut()).enumerate() {
            if !self.cache.get(key, o) {
                scratch.miss_idx.push(i);
            }
        }
        if !scratch.miss_idx.is_empty() {
            let miss_inputs: Vec<&[f32]> = scratch.miss_idx.iter().map(|&i| inputs[i]).collect();
            scratch
                .miss_out
                .resize_with(scratch.miss_idx.len(), EvalOutput::default);
            self.inner.evaluate_batch(
                &miss_inputs,
                &mut scratch.miss_out[..scratch.miss_idx.len()],
            );
            for (j, &i) in scratch.miss_idx.iter().enumerate() {
                let o = &mut scratch.miss_out[j];
                self.cache.insert(keys[i], &o.priors, o.value);
                std::mem::swap(&mut out[i], o);
            }
        }
        CACHE_SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            s.miss_idx = scratch.miss_idx;
            s.miss_out = scratch.miss_out;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;
    use std::sync::atomic::AtomicUsize;

    /// Deterministic per-key evaluator that counts samples it sees.
    struct CountingEval {
        actions: usize,
        samples: AtomicUsize,
        batches: AtomicUsize,
    }

    impl CountingEval {
        fn new(actions: usize) -> Self {
            CountingEval {
                actions,
                samples: AtomicUsize::new(0),
                batches: AtomicUsize::new(0),
            }
        }
    }

    impl BatchEvaluator for CountingEval {
        fn input_len(&self) -> usize {
            1
        }

        fn action_space(&self) -> usize {
            self.actions
        }

        fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.samples.fetch_add(inputs.len(), Ordering::Relaxed);
            for (x, o) in inputs.iter().zip(out.iter_mut()) {
                let seed = x[0];
                o.priors.clear();
                let raw: Vec<f32> = (0..self.actions)
                    .map(|a| 1.0 + ((a as f32) + seed).sin().abs())
                    .collect();
                let sum: f32 = raw.iter().sum();
                o.priors.extend(raw.iter().map(|p| p / sum));
                o.value = (seed * 0.1).tanh();
            }
        }
    }

    fn tiny_cache(actions: usize) -> EvalCache {
        EvalCache::new(
            EvalCacheConfig {
                capacity_bytes: 1 << 16,
                shards: 4,
                ways: 4,
                ttl: None,
            },
            actions,
        )
    }

    #[test]
    fn roundtrip_value_bitwise_priors_quantized() {
        let cache = tiny_cache(5);
        let priors = [0.05f32, 0.1, 0.2, 0.3, 0.35];
        cache.insert(42, &priors, -0.637_21);
        let mut out = EvalOutput::default();
        assert!(cache.get(42, &mut out));
        assert_eq!(out.value, -0.637_21, "values roundtrip bitwise");
        for (a, b) in out.priors.iter().zip(&priors) {
            assert!((a - b).abs() <= 1.0 / 65535.0, "{a} vs {b}");
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 0, 1));
        assert_eq!(s.bytes, cache.entry_bytes() as u64);
    }

    #[test]
    fn absent_key_misses() {
        let cache = tiny_cache(3);
        let mut out = EvalOutput::default();
        assert!(!cache.get(7, &mut out));
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn epoch_bump_invalidates_everything() {
        let cache = tiny_cache(3);
        cache.insert(1, &[0.2, 0.3, 0.5], 0.5);
        let mut out = EvalOutput::default();
        assert!(cache.get(1, &mut out));
        cache.bump_epoch();
        assert!(!cache.get(1, &mut out), "old-epoch entry must not match");
        // Re-inserting at the new epoch works immediately.
        cache.insert(1, &[0.5, 0.3, 0.2], -0.25);
        assert!(cache.get(1, &mut out));
        assert_eq!(out.value, -0.25);
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = EvalCache::new(
            EvalCacheConfig {
                capacity_bytes: 1 << 14,
                shards: 1,
                ways: 2,
                ttl: Some(Duration::from_millis(30)),
            },
            2,
        );
        cache.insert(9, &[0.6, 0.4], 0.1);
        let mut out = EvalOutput::default();
        assert!(cache.get(9, &mut out), "fresh entry hits");
        std::thread::sleep(Duration::from_millis(60));
        assert!(!cache.get(9, &mut out), "expired entry misses");
    }

    #[test]
    fn byte_budget_is_hard_and_evictions_count() {
        let cfg = EvalCacheConfig {
            capacity_bytes: 4096,
            shards: 2,
            ways: 2,
            ttl: None,
        };
        let cache = EvalCache::new(cfg, 4);
        let cap = cache.capacity_entries();
        assert!(
            cap * cache.entry_bytes() <= 4096 || cap == 2 * 2,
            "rounded down"
        );
        // Insert far more distinct keys than slots.
        for k in 0..(cap as u64 * 8) {
            cache.insert(k, &[0.25; 4], 0.0);
        }
        let s = cache.stats();
        assert!(
            s.bytes <= cache.capacity_entries() as u64 * cache.entry_bytes() as u64,
            "residency exceeds slot capacity"
        );
        assert!(s.evictions > 0, "overflow must evict");
        assert_eq!(s.inserts, cap as u64 * 8);
    }

    #[test]
    fn same_key_refresh_is_not_an_eviction() {
        let cache = tiny_cache(2);
        cache.insert(5, &[0.5, 0.5], 0.0);
        cache.insert(5, &[0.9, 0.1], 1.0);
        let s = cache.stats();
        assert_eq!(s.inserts, 2);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.bytes, cache.entry_bytes() as u64, "one resident entry");
        let mut out = EvalOutput::default();
        assert!(cache.get(5, &mut out));
        assert_eq!(out.value, 1.0, "refresh wins");
    }

    #[test]
    fn cached_evaluator_splits_hits_from_misses() {
        let inner = Arc::new(CountingEval::new(4));
        let cache = Arc::new(tiny_cache(4));
        let eval = CachedEvaluator::new(
            Arc::clone(&inner) as Arc<dyn BatchEvaluator>,
            Arc::clone(&cache),
        );
        let xs: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32]).collect();
        let refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();
        let keys: Vec<u64> = (0..4).map(|i| 100 + i).collect();
        let mut out = vec![EvalOutput::default(); 4];

        // Cold: all four miss, inner sees ONE batch of four.
        eval.evaluate_batch_keyed(&keys, &refs, &mut out);
        assert_eq!(inner.samples.load(Ordering::Relaxed), 4);
        assert_eq!(inner.batches.load(Ordering::Relaxed), 1);
        let cold = out.clone();

        // Warm: all four hit, inner untouched; values bitwise, priors
        // within quantization error.
        let mut out2 = vec![EvalOutput::default(); 4];
        eval.evaluate_batch_keyed(&keys, &refs, &mut out2);
        assert_eq!(inner.samples.load(Ordering::Relaxed), 4, "no new samples");
        for (a, b) in out2.iter().zip(&cold) {
            assert_eq!(a.value, b.value);
            for (p, q) in a.priors.iter().zip(&b.priors) {
                assert!((p - q).abs() <= 1.0 / 65535.0);
            }
        }

        // Mixed: two known keys, two fresh — inner sees exactly the two
        // misses, and results land at the right indices.
        let xs3: Vec<Vec<f32>> = vec![vec![0.0], vec![9.0], vec![1.0], vec![8.0]];
        let refs3: Vec<&[f32]> = xs3.iter().map(Vec::as_slice).collect();
        let keys3 = [100, 900, 101, 800];
        let mut out3 = vec![EvalOutput::default(); 4];
        eval.evaluate_batch_keyed(&keys3, &refs3, &mut out3);
        assert_eq!(inner.samples.load(Ordering::Relaxed), 6, "only the misses");
        assert_eq!(out3[0].value, cold[0].value);
        assert_eq!(out3[2].value, cold[1].value);
        let direct = inner.evaluate_one(&[9.0]);
        assert_eq!(out3[1].value, direct.value);
        assert_eq!(cache.stats().hits, 6);
    }

    #[test]
    fn keyless_path_is_transparent() {
        let inner = Arc::new(CountingEval::new(3));
        let cache = Arc::new(tiny_cache(3));
        let eval = CachedEvaluator::new(
            Arc::clone(&inner) as Arc<dyn BatchEvaluator>,
            Arc::clone(&cache),
        );
        let x = [2.0f32];
        let mut out = vec![EvalOutput::default(); 1];
        eval.evaluate_batch(&[&x], &mut out);
        eval.evaluate_batch(&[&x], &mut out);
        assert_eq!(inner.samples.load(Ordering::Relaxed), 2, "no caching");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (0, 0, 0));
    }

    #[test]
    fn legacy_single_sample_evaluators_accept_keyed_calls() {
        // The defaulted trait method must work through the blanket impl.
        let e = crate::UniformEvaluator::new(4, 2);
        let o = BatchEvaluator::evaluate_one_keyed(&e, 77, &[0.0; 4]);
        assert_eq!(o.priors, vec![0.5, 0.5]);
        let _ = Evaluator::action_space(&e);
    }
}
