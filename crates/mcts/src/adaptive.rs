//! Adaptive scheme selection and uniform dispatch (§3.2).
//!
//! The paper's program template takes a `flag_local` input (Algorithm 1)
//! decided at compile time by the design-configuration workflow. Here
//! [`Scheme`] is that flag (generalized to all implemented schemes) and
//! [`AdaptiveSearch`] is the template: construct it with the scheme the
//! performance model selected (see `perfmodel::configurator`) and call
//! [`SearchScheme::search`] as usual.

use crate::config::MctsConfig;
use crate::evaluator::BatchEvaluator;
use crate::result::{SearchResult, SearchScheme};
use games::Game;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which parallel implementation to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Single-thread baseline.
    Serial,
    /// §3.1.1: `N` threads, one lock-protected tree.
    SharedTree,
    /// §3.1.2: master thread + `N` inference workers.
    LocalTree,
    /// Baseline: replicate evaluations at one leaf.
    LeafParallel,
    /// Baseline: independent trees merged at the root.
    RootParallel,
    /// Baseline (§2.2 \[7\], SpecMCTS-style): serial in-tree discipline with
    /// cheap speculative expansion corrected by the main model. Built with
    /// a uniform-prior speculative model; for a custom cheap model use
    /// [`crate::speculative::SpeculativeSearch`] directly.
    Speculative,
}

impl Scheme {
    /// All schemes (for sweeps/benches).
    pub const ALL: [Scheme; 6] = [
        Scheme::Serial,
        Scheme::SharedTree,
        Scheme::LocalTree,
        Scheme::LeafParallel,
        Scheme::RootParallel,
        Scheme::Speculative,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Serial => "serial",
            Scheme::SharedTree => "shared-tree",
            Scheme::LocalTree => "local-tree",
            Scheme::LeafParallel => "leaf-parallel",
            Scheme::RootParallel => "root-parallel",
            Scheme::Speculative => "speculative",
        }
    }

    /// Instantiate this scheme for game type `G` (one-liner convenience
    /// over [`crate::builder::SearchBuilder`], which is the full API).
    pub fn build<G: Game>(
        self,
        cfg: MctsConfig,
        evaluator: Arc<dyn BatchEvaluator>,
    ) -> Box<dyn SearchScheme<G>> {
        crate::builder::SearchBuilder::new(self)
            .config(cfg)
            .evaluator(evaluator)
            .build()
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The adaptive program template: one object, any scheme.
pub struct AdaptiveSearch<G: Game> {
    scheme: Scheme,
    inner: Box<dyn SearchScheme<G>>,
}

impl<G: Game> AdaptiveSearch<G> {
    /// Build the selected scheme.
    pub fn new(scheme: Scheme, cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        AdaptiveSearch {
            scheme,
            inner: scheme.build(cfg, evaluator),
        }
    }

    /// The scheme in use.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }
}

impl<G: Game> SearchScheme<G> for AdaptiveSearch<G> {
    fn begin(&mut self, root: &G, budget: crate::budget::Budget) {
        self.inner.begin(root, budget)
    }

    fn step(&mut self, quota: usize) -> crate::budget::StepOutcome {
        self.inner.step(quota)
    }

    fn partial_result(&self) -> SearchResult {
        self.inner.partial_result()
    }

    fn cancel(&mut self) {
        self.inner.cancel()
    }

    fn search(&mut self, root: &G) -> SearchResult {
        self.inner.search(root)
    }

    fn advance(&mut self, action: games::Action) {
        self.inner.advance(action)
    }

    fn reset(&mut self) {
        self.inner.reset()
    }

    fn name(&self) -> &'static str {
        self.scheme.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;
    use games::tictactoe::TicTacToe;
    use games::Game;

    #[test]
    fn every_scheme_builds_and_searches() {
        let cfg = MctsConfig {
            playouts: 40,
            workers: 2,
            ..Default::default()
        };
        for scheme in Scheme::ALL {
            let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
            let mut s = AdaptiveSearch::<TicTacToe>::new(scheme, cfg, eval);
            let r = s.search(&TicTacToe::new());
            assert!(
                r.stats.playouts >= 40,
                "{scheme}: {} playouts",
                r.stats.playouts
            );
            assert_eq!(s.scheme(), scheme);
            assert_eq!(SearchScheme::<TicTacToe>::name(&s), scheme.name());
        }
    }

    #[test]
    fn all_schemes_agree_on_forced_win() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let cfg = MctsConfig {
            playouts: 300,
            workers: 4,
            ..Default::default()
        };
        for scheme in Scheme::ALL {
            let eval = Arc::new(UniformEvaluator::for_game(&TicTacToe::new()));
            let mut s = AdaptiveSearch::<TicTacToe>::new(scheme, cfg, eval);
            let r = s.search(&g);
            assert_eq!(r.best_action(), 2, "{scheme} missed the win");
        }
    }

    #[test]
    fn scheme_names_unique() {
        let mut names: Vec<_> = Scheme::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Scheme::ALL.len());
    }
}
