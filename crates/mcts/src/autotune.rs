//! Measurement-driven batch tuning: an online forward-time-vs-batch-size
//! curve per backend, and the operating point (target batch + coalescing
//! window) that maximizes positions per second.
//!
//! The serving layer historically batched with two constants: a fixed
//! `coalesce_window` and the backend's static `preferred_batch` hint.
//! [`BatchTuner`] replaces both with measurement. At backend registration a
//! one-shot calibration times a zero-input forward at each power-of-two
//! batch size, seeding the curve; every observed production forward then
//! refines its bucket by EWMA (7/8 old, 1/8 new — the same blend the
//! coalescer's window heuristic uses). The operating point re-derives from
//! the curve on demand:
//!
//! * **target batch** — the bucket maximizing `batch / t(batch)`
//!   (positions/s), i.e. keep growing the batch while the forward stays
//!   sublinear, stop where it turns linear;
//! * **window** — the chosen bucket's forward time (while one batch is in
//!   flight, arrivals have exactly that long to fill the next round),
//!   clamped to the configured ceiling.
//!
//! All state is atomic; `record` is wait-free and called from every
//! coalescing leader, `operating_point`/`curve` are read-side only. The
//! curve and chosen point export through `ClusterStats` as an
//! [`AutotuneReport`] so the feedback loop is observable from the outside.

use crate::evaluator::{BatchEvaluator, EvalOutput};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// EWMA blend: `new = (old * 7 + sample) / 8`.
const EWMA_OLD_WEIGHT: u64 = 7;

/// Floor for the derived window (matches the coalescer's floor).
const MIN_WINDOW: Duration = Duration::from_micros(2);

/// An online forward-time-vs-batch-size curve for one backend.
#[derive(Debug)]
pub struct BatchTuner {
    /// Bucket batch sizes: powers of two up to the backend's max batch
    /// (always including the max itself).
    sizes: Vec<usize>,
    /// EWMA forward nanoseconds per bucket; 0 = no observation yet.
    ewma_ns: Vec<AtomicU64>,
    /// Ceiling for the derived coalescing window.
    window_cap: Duration,
    /// Whether a calibration pass seeded the curve.
    calibrated: AtomicBool,
}

/// The tuner's current choice: assemble batches of about `batch`, waiting
/// at most `window` for them to fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatingPoint {
    pub batch: usize,
    pub window: Duration,
}

/// Machine-readable snapshot of one backend's tuning state, exported via
/// cluster stats.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AutotuneReport {
    /// Shard index (filled in by the cluster when aggregating).
    pub shard: usize,
    /// Whether the curve was seeded by a calibration pass.
    pub calibrated: bool,
    /// Chosen target batch size.
    pub batch: usize,
    /// Chosen coalescing window, microseconds.
    pub window_us: u64,
    /// Estimated throughput at the operating point, positions per second.
    pub positions_per_sec: f64,
    /// The measured curve: `(batch_size, ewma_forward_ns)` for every
    /// bucket with at least one observation.
    pub curve: Vec<(usize, u64)>,
}

impl BatchTuner {
    /// A tuner for a backend whose hard batch cap is `max_batch`, deriving
    /// windows no longer than `window_cap`.
    pub fn new(max_batch: usize, window_cap: Duration) -> Self {
        let max_batch = max_batch.max(1);
        let mut sizes = Vec::new();
        let mut b = 1usize;
        while b < max_batch {
            sizes.push(b);
            b *= 2;
        }
        sizes.push(max_batch);
        let ewma_ns = sizes.iter().map(|_| AtomicU64::new(0)).collect();
        BatchTuner {
            sizes,
            ewma_ns,
            window_cap,
            calibrated: AtomicBool::new(false),
        }
    }

    /// Largest batch the tuner will ever choose.
    pub fn max_batch(&self) -> usize {
        *self.sizes.last().unwrap()
    }

    /// Bucket index for an observed batch size: the smallest bucket that
    /// holds it (observations above the cap land in the top bucket).
    fn bucket(&self, batch: usize) -> usize {
        self.sizes
            .iter()
            .position(|&s| s >= batch)
            .unwrap_or(self.sizes.len() - 1)
    }

    /// Fold one observed forward (`batch` positions in `elapsed`) into the
    /// curve. Wait-free; races between concurrent recorders lose at most
    /// one sample.
    pub fn record(&self, batch: usize, elapsed: Duration) {
        if batch == 0 {
            return;
        }
        let ns = (elapsed.as_nanos() as u64).max(1);
        let slot = &self.ewma_ns[self.bucket(batch)];
        let old = slot.load(Ordering::Relaxed);
        let blended = if old == 0 {
            ns
        } else {
            (old * EWMA_OLD_WEIGHT + ns) / (EWMA_OLD_WEIGHT + 1)
        };
        slot.store(blended, Ordering::Relaxed);
    }

    /// One-shot calibration: time a zero-input forward at every bucket
    /// size, seeding the curve so the first operating point is informed
    /// rather than default. Runs against `backend` directly — call it with
    /// the *raw* backend (not a resilience wrapper) so calibration cannot
    /// trip breakers or count as production traffic. A panicking backend
    /// aborts calibration silently; the curve then fills from production
    /// EWMA alone.
    pub fn calibrate(&self, backend: &dyn BatchEvaluator) {
        let input_len = backend.input_len();
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Warm up caches/pools so the seed measures steady state.
            let warm = vec![0.0f32; input_len];
            let mut out = vec![EvalOutput::default(); 1];
            backend.evaluate_batch(&[&warm], &mut out);
            for (i, &size) in self.sizes.iter().enumerate() {
                let flat = vec![0.0f32; input_len * size];
                let inputs: Vec<&[f32]> = (0..size)
                    .map(|s| &flat[s * input_len..(s + 1) * input_len])
                    .collect();
                let mut out = vec![EvalOutput::default(); size];
                let start = Instant::now();
                backend.evaluate_batch(&inputs, &mut out);
                let ns = (start.elapsed().as_nanos() as u64).max(1);
                self.ewma_ns[i].store(ns, Ordering::Relaxed);
            }
        }));
        if result.is_ok() {
            self.calibrated.store(true, Ordering::Relaxed);
        }
    }

    /// True when [`BatchTuner::calibrate`] completed successfully.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated.load(Ordering::Relaxed)
    }

    /// True when every bucket has at least one observation — the curve
    /// covers the full batch range, so the operating point compares all
    /// the options rather than just the sizes traffic happened to
    /// produce. Consumers that *steer* batch sizes by the operating
    /// point should require this (a partial curve self-reinforces: a
    /// tuner targeting bucket `b` only ever observes batches ≤ `b` and
    /// would never discover that larger ones amortize better).
    pub fn fully_observed(&self) -> bool {
        self.ewma_ns.iter().all(|ns| ns.load(Ordering::Relaxed) > 0)
    }

    /// The current operating point. With an empty curve (no calibration,
    /// no traffic yet) this falls back to the max batch and the window
    /// ceiling — the pre-tuner behavior.
    pub fn operating_point(&self) -> OperatingPoint {
        let mut best: Option<(usize, u64, f64)> = None;
        for (i, &size) in self.sizes.iter().enumerate() {
            let ns = self.ewma_ns[i].load(Ordering::Relaxed);
            if ns == 0 {
                continue;
            }
            let rate = size as f64 / ns as f64;
            // Strictly-greater keeps the smallest batch among equal rates:
            // same throughput at lower latency.
            if best.is_none_or(|(_, _, r)| rate > r) {
                best = Some((size, ns, rate));
            }
        }
        match best {
            Some((batch, ns, _)) => OperatingPoint {
                batch,
                window: Duration::from_nanos(ns).clamp(MIN_WINDOW, self.window_cap),
            },
            None => OperatingPoint {
                batch: self.max_batch(),
                window: self.window_cap,
            },
        }
    }

    /// The measured curve: `(batch, ewma_ns)` for every observed bucket.
    pub fn curve(&self) -> Vec<(usize, u64)> {
        self.sizes
            .iter()
            .zip(&self.ewma_ns)
            .filter_map(|(&s, ns)| {
                let v = ns.load(Ordering::Relaxed);
                (v > 0).then_some((s, v))
            })
            .collect()
    }

    /// Snapshot for stats export. `shard` is left 0; aggregators fill it.
    pub fn report(&self) -> AutotuneReport {
        let op = self.operating_point();
        let curve = self.curve();
        let positions_per_sec = curve
            .iter()
            .find(|&&(s, _)| s == op.batch)
            .map_or(0.0, |&(s, ns)| s as f64 / (ns as f64 / 1e9));
        AutotuneReport {
            shard: 0,
            calibrated: self.is_calibrated(),
            batch: op.batch,
            window_us: op.window.as_micros() as u64,
            positions_per_sec,
            curve,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;

    #[test]
    fn buckets_are_powers_of_two_plus_cap() {
        let t = BatchTuner::new(24, Duration::from_millis(1));
        assert_eq!(t.sizes, vec![1, 2, 4, 8, 16, 24]);
        assert_eq!(t.max_batch(), 24);
        let t1 = BatchTuner::new(1, Duration::from_millis(1));
        assert_eq!(t1.sizes, vec![1]);
    }

    #[test]
    fn unseeded_tuner_falls_back_to_cap_and_window() {
        let t = BatchTuner::new(16, Duration::from_micros(150));
        let op = t.operating_point();
        assert_eq!(op.batch, 16);
        assert_eq!(op.window, Duration::from_micros(150));
        assert!(t.curve().is_empty());
        assert!(!t.is_calibrated());
    }

    #[test]
    fn picks_the_knee_of_a_sublinear_curve() {
        let t = BatchTuner::new(16, Duration::from_millis(10));
        // Sublinear up to 8 (batching amortizes), linear after: 8 wins.
        t.record(1, Duration::from_micros(100));
        t.record(2, Duration::from_micros(120));
        t.record(4, Duration::from_micros(160));
        t.record(8, Duration::from_micros(240));
        t.record(16, Duration::from_micros(520));
        let op = t.operating_point();
        assert_eq!(op.batch, 8);
        // Window tracks the chosen bucket's forward time.
        assert_eq!(op.window, Duration::from_micros(240));
    }

    #[test]
    fn window_respects_cap_and_floor() {
        let t = BatchTuner::new(4, Duration::from_micros(150));
        t.record(4, Duration::from_millis(5));
        assert_eq!(t.operating_point().window, Duration::from_micros(150));
        let t2 = BatchTuner::new(4, Duration::from_micros(150));
        t2.record(4, Duration::from_nanos(10));
        assert_eq!(t2.operating_point().window, MIN_WINDOW);
    }

    #[test]
    fn ewma_converges_toward_recent_samples() {
        let t = BatchTuner::new(2, Duration::from_millis(1));
        t.record(2, Duration::from_micros(800));
        for _ in 0..60 {
            t.record(2, Duration::from_micros(100));
        }
        let (_, ns) = t.curve().pop().unwrap();
        assert!(ns < 120_000, "EWMA should approach 100µs, got {ns}ns");
    }

    #[test]
    fn oversized_observations_land_in_top_bucket() {
        let t = BatchTuner::new(8, Duration::from_millis(1));
        t.record(64, Duration::from_micros(300));
        assert_eq!(t.curve(), vec![(8, 300_000)]);
    }

    #[test]
    fn fully_observed_requires_every_bucket() {
        let t = BatchTuner::new(8, Duration::from_millis(1));
        assert!(!t.fully_observed());
        t.record(1, Duration::from_micros(50));
        t.record(2, Duration::from_micros(60));
        t.record(4, Duration::from_micros(80));
        assert!(!t.fully_observed(), "top bucket still unobserved");
        t.record(8, Duration::from_micros(120));
        assert!(t.fully_observed());
    }

    #[test]
    fn calibration_seeds_every_bucket() {
        let eval = UniformEvaluator::new(4, 9);
        let t = BatchTuner::new(8, Duration::from_millis(1));
        t.calibrate(&eval);
        assert!(t.is_calibrated());
        assert_eq!(t.curve().len(), 4, "buckets 1,2,4,8");
        let report = t.report();
        assert!(report.calibrated);
        assert!(report.batch >= 1);
        assert!(report.positions_per_sec > 0.0);
    }

    #[test]
    fn report_round_trips_operating_point() {
        let t = BatchTuner::new(4, Duration::from_millis(1));
        t.record(1, Duration::from_micros(50));
        t.record(4, Duration::from_micros(80));
        let r = t.report();
        assert_eq!(r.batch, 4);
        assert_eq!(r.window_us, 80);
        assert_eq!(r.curve, vec![(1, 50_000), (4, 80_000)]);
        assert!((r.positions_per_sec - 4.0 / 80e-6).abs() / (4.0 / 80e-6) < 1e-9);
    }
}
