//! Search hyper-parameters shared by every scheme.

use serde::{Deserialize, Serialize};

/// Virtual-loss policy applied to edges traversed by in-flight playouts
/// (§2.1: VL can be "a pre-defined constant value \[2\], or a number tracking
/// visit counts of child nodes \[8\]").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VirtualLoss {
    /// Chaslot-style: an in-flight playout counts as a visit that lost by
    /// `c` (subtract `c` from `W`, add 1 to `N` while in flight).
    Constant(f32),
    /// WU-UCT-style: track the number of in-flight ("unobserved") playouts
    /// `O(s,a)` and use `N + O` in both UCT terms, leaving `Q` untouched.
    VisitTracking,
}

impl Default for VirtualLoss {
    fn default() -> Self {
        VirtualLoss::Constant(1.0)
    }
}

/// Locking discipline for shared-tree edge statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LockKind {
    /// Per-node mutex around statistic updates (the paper's design, after
    /// Chaslot et al.).
    #[default]
    Mutex,
    /// Lock-free atomic read-modify-write updates (after Mirsoleimani et
    /// al.); ablation target.
    Atomic,
}

/// How a capacity-bounded single-owner tree reclaims slots when an
/// expansion cannot be served from the free-list or by growing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EvictionPolicy {
    /// Evict the **coldest** subtree: an intrusive LRU list threaded
    /// through the arena tracks every block-owning node (selection
    /// touches nodes it descends through), and the tail-most evictable
    /// node is detached back to an unexpanded leaf, stats preserved.
    /// Sustains stable playout rates on indefinitely long sessions —
    /// the hot principal lines stay resident while stale branches from
    /// long-abandoned lines are recycled first.
    #[default]
    Lru,
    /// Prune the **deepest fringe** subtree (an expanded node all of
    /// whose children are leaves, farthest from the root). The pre-LRU
    /// policy, kept for comparison and for workloads that want
    /// depth-biased rather than recency-biased reclamation.
    DeepestFringe,
}

/// Hyper-parameters for one tree-based search ("move").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MctsConfig {
    /// Exploration constant `c` in the UCT score (Eq. 1).
    pub c_puct: f32,
    /// Playouts per move ("tree size limit per move is 1600", §5.1).
    pub playouts: usize,
    /// Number of parallel workers `N`.
    pub workers: usize,
    /// Virtual-loss policy.
    pub virtual_loss: VirtualLoss,
    /// Shared-tree locking discipline.
    pub lock_kind: LockKind,
    /// Q value assumed for unvisited edges (first-play urgency).
    pub q_init: f32,
    /// Hard bound on tree memory, in nodes. For the single-owner tree
    /// this caps the arena: when an expansion cannot be served, a live
    /// subtree is reclaimed per [`MctsConfig::eviction`] and the search
    /// continues under the fixed budget. For the shared tree it sizes
    /// the pre-allocated per-move arena. `None` ⇒ single-owner trees
    /// grow on demand (unless [`MctsConfig::arena_budget_bytes`] bounds
    /// them); the shared tree derives its size from `playouts × fanout`.
    ///
    /// The bound is *hard*: a search panics rather than exceed it, so it
    /// must leave room for the unevictable working set — at minimum the
    /// root plus one full expansion (`action_space + 1` nodes), and for
    /// pipelined schemes (local tree) one expansion per in-flight leaf,
    /// since subtrees holding pending evaluations are never evicted.
    pub max_nodes: Option<usize>,
    /// Hard bound on tree memory, in **bytes** — the byte-denominated
    /// twin of [`MctsConfig::max_nodes`], converted to a slot bound via
    /// [`NodeArena::slot_bytes`](crate::arena::NodeArena::slot_bytes).
    /// When both bounds are set the tighter one wins. This is the knob
    /// the serve layer speaks: per-session arena budgets and admission
    /// byte quotas are denominated in bytes, not slots.
    pub arena_budget_bytes: Option<usize>,
    /// Reclamation policy when the arena bound is hit (single-owner
    /// trees only). Default [`EvictionPolicy::Lru`].
    pub eviction: EvictionPolicy,
    /// AlphaZero-style Dirichlet noise mixed into the root priors during
    /// self-play (None ⇒ deterministic evaluation-time search).
    pub root_noise: Option<crate::noise::RootNoise>,
    /// Optional wall-clock budget per move in milliseconds, enforced
    /// uniformly by **every** scheme (resolved into a deadline when a run
    /// begins): serial-family searchers stop between playouts, shared-tree
    /// workers stop taking rollout tickets, and the local-tree master
    /// stops issuing leaves, draining what is in flight. `playouts`
    /// remains an upper bound. Per-run overrides go through
    /// [`crate::Budget::time`].
    pub time_budget_ms: Option<u64>,
    /// Maintain a per-tree transposition index (position hash → node) so
    /// identical states reached by different move orders reuse already
    /// computed priors/values at expansion instead of paying another
    /// evaluation. Supported by the single-owner serial schemes
    /// (`SerialSearch`, `ReusableSearch`); other schemes ignore it. Off
    /// by default: enabling it changes which evaluations run, so
    /// seed-for-seed reproducibility against older runs requires the
    /// default. (Full cross-path *stat merging* is deliberately not done
    /// — only priors/value reuse — so PUCT visit counts stay sound.)
    pub transpositions: bool,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            c_puct: 5.0,
            playouts: 1600,
            workers: 1,
            virtual_loss: VirtualLoss::default(),
            lock_kind: LockKind::default(),
            q_init: 0.0,
            max_nodes: None,
            arena_budget_bytes: None,
            eviction: EvictionPolicy::default(),
            root_noise: None,
            time_budget_ms: None,
            transpositions: false,
        }
    }
}

impl MctsConfig {
    /// The paper's Gomoku evaluation configuration for `n` workers.
    pub fn paper(workers: usize) -> Self {
        MctsConfig {
            playouts: 1600,
            workers,
            ..Default::default()
        }
    }

    /// Arena capacity for a game with the given action-space size.
    /// `max_nodes` wins over the playout-derived estimate; a byte budget
    /// tightens whichever of those applies.
    pub fn arena_capacity(&self, action_space: usize) -> usize {
        let slots = self
            .max_nodes
            .unwrap_or_else(|| 1 + (self.playouts + self.workers + 1) * (action_space + 1));
        match self.byte_bound_slots() {
            Some(b) => slots.min(b),
            None => slots,
        }
    }

    /// The hard slot bound this configuration imposes on a single-owner
    /// arena: the tighter of [`MctsConfig::max_nodes`] and
    /// [`MctsConfig::arena_budget_bytes`] (converted to slots), `None`
    /// when neither is set.
    pub fn node_budget(&self) -> Option<usize> {
        match (self.max_nodes, self.byte_bound_slots()) {
            (Some(n), Some(b)) => Some(n.min(b)),
            (Some(n), None) => Some(n),
            (None, b) => b,
        }
    }

    fn byte_bound_slots(&self) -> Option<usize> {
        self.arena_budget_bytes
            .map(|b| b / crate::arena::NodeArena::slot_bytes())
    }

    /// Validate invariants; panics on nonsense configurations.
    pub fn validate(&self) {
        assert!(self.c_puct >= 0.0, "c_puct must be non-negative");
        assert!(self.playouts > 0, "playouts must be positive");
        assert!(self.workers > 0, "workers must be positive");
        if let VirtualLoss::Constant(c) = self.virtual_loss {
            assert!(c >= 0.0, "virtual loss must be non-negative");
        }
        if let Some(n) = self.root_noise {
            assert!(n.alpha > 0.0, "dirichlet alpha must be positive");
            assert!((0.0..=1.0).contains(&n.epsilon), "noise epsilon in [0,1]");
        }
        if let Some(ms) = self.time_budget_ms {
            assert!(ms > 0, "time budget must be positive");
        }
        if let Some(n) = self.max_nodes {
            assert!(n > 0, "max_nodes must allow at least the root");
        }
        if let Some(b) = self.arena_budget_bytes {
            assert!(
                b >= crate::arena::NodeArena::slot_bytes(),
                "arena_budget_bytes must hold at least one node ({} bytes)",
                crate::arena::NodeArena::slot_bytes()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        MctsConfig::default().validate();
    }

    #[test]
    fn paper_config_matches_evaluation_setup() {
        let c = MctsConfig::paper(16);
        assert_eq!(c.playouts, 1600);
        assert_eq!(c.workers, 16);
        c.validate();
    }

    #[test]
    fn arena_capacity_scales_with_playouts() {
        let c = MctsConfig {
            playouts: 10,
            ..Default::default()
        };
        let small = c.arena_capacity(9);
        let big = MctsConfig::default().arena_capacity(9);
        assert!(small < big);
        assert!(small >= 10 * 9);
    }

    #[test]
    fn explicit_max_nodes_wins() {
        let c = MctsConfig {
            max_nodes: Some(123),
            ..Default::default()
        };
        assert_eq!(c.arena_capacity(225), 123);
    }

    #[test]
    fn byte_budget_tightens_capacity() {
        let slot = crate::arena::NodeArena::slot_bytes();
        let c = MctsConfig {
            arena_budget_bytes: Some(100 * slot),
            ..Default::default()
        };
        assert_eq!(c.node_budget(), Some(100));
        assert_eq!(c.arena_capacity(225), 100);
        // The tighter of the two bounds wins in both directions.
        let c = MctsConfig {
            max_nodes: Some(50),
            arena_budget_bytes: Some(100 * slot),
            ..Default::default()
        };
        assert_eq!(c.node_budget(), Some(50));
        let c = MctsConfig {
            max_nodes: Some(500),
            arena_budget_bytes: Some(100 * slot),
            ..Default::default()
        };
        assert_eq!(c.node_budget(), Some(100));
        assert_eq!(c.arena_capacity(225), 100);
    }

    #[test]
    #[should_panic(expected = "arena_budget_bytes")]
    fn sub_slot_byte_budget_invalid() {
        MctsConfig {
            arena_budget_bytes: Some(1),
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "workers")]
    fn zero_workers_invalid() {
        MctsConfig {
            workers: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "playouts")]
    fn zero_playouts_invalid() {
        MctsConfig {
            playouts: 0,
            ..Default::default()
        }
        .validate();
    }
}
