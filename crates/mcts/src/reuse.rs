//! Tree reuse across moves: keep the subtree of the move actually played as
//! the starting tree for the next search.
//!
//! The paper rebuilds the tree from scratch for every move (Algorithm 2
//! line 2 copies the environment and starts at a bare root). Production
//! AlphaZero implementations instead *re-root*: after playing action `a`
//! from state `s`, the child subtree under `a` already holds thousands of
//! evaluated nodes that remain valid for `s' = s·a`. This module provides
//! that optimization on top of the single-owner tree as an opt-in wrapper —
//! an ablation target for the benchmarks (reuse shrinks `T_select` early in
//! the move, which shifts the shared/local crossover of §4).

use crate::config::MctsConfig;
use crate::evaluator::BatchEvaluator;
use crate::result::{SearchResult, SearchScheme, SearchStats};
use crate::tree::{SelectOutcome, Tree};
use games::{Action, Game};
use std::sync::Arc;
use std::time::Instant;

/// A serial searcher that persists its tree across moves.
///
/// Unlike [`crate::serial::SerialSearch`], this type is *stateful*: callers
/// must report every move actually played (their own and the opponent's)
/// through [`ReusableSearch::advance`] so the internal tree tracks the game.
/// It implements [`SearchScheme`] (whose `advance` hook it overrides), so
/// self-play drivers get tree reuse for free when the builder enables it.
pub struct ReusableSearch {
    cfg: MctsConfig,
    evaluator: Arc<dyn BatchEvaluator>,
    tree: Option<Tree>,
    encode_buf: Vec<f32>,
    /// Nodes inherited from previous moves via reuse (for diagnostics).
    pub inherited_nodes: u64,
}

impl ReusableSearch {
    /// Create a reusable searcher.
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        cfg.validate();
        ReusableSearch {
            cfg,
            evaluator,
            tree: None,
            encode_buf: Vec::new(),
            inherited_nodes: 0,
        }
    }

    /// Drop any retained tree (e.g. when starting a new game).
    pub fn reset(&mut self) {
        self.tree = None;
        self.inherited_nodes = 0;
    }

    /// Report that `action` was played from the state last searched (or
    /// last advanced to). Re-roots the retained tree at the corresponding
    /// child, or discards it if that child was never expanded.
    pub fn advance(&mut self, action: Action) {
        self.tree = match self.tree.take() {
            Some(t) => t.root_child_for(action).map(|c| t.extract_subtree(c)),
            None => None,
        };
    }

    /// Nodes currently retained (0 when no tree is held).
    pub fn retained_nodes(&self) -> usize {
        self.tree.as_ref().map_or(0, Tree::len)
    }

    /// Run a search from `root`, reusing any retained subtree. The caller
    /// is responsible for `root` being the state reached by the reported
    /// [`ReusableSearch::advance`] sequence — searching a divergent state
    /// with a stale tree silently produces garbage, so prefer `reset` when
    /// in doubt.
    pub fn search<G: Game>(&mut self, root: &G) -> SearchResult {
        self.search_impl(root)
    }

    fn search_impl<G: Game>(&mut self, root: &G) -> SearchResult {
        let move_start = Instant::now();
        let mut tree = self.tree.take().unwrap_or_else(|| Tree::new(self.cfg));
        self.inherited_nodes = (tree.len() as u64).saturating_sub(1);
        let mut stats = SearchStats::default();
        self.encode_buf.resize(root.encoded_len(), 0.0);

        let budget = self
            .cfg
            .time_budget_ms
            .map(std::time::Duration::from_millis);
        // Count *new* playouts only: an inherited tree already holds visits,
        // so the per-move compute budget stays comparable to a fresh search.
        let mut done = 0usize;
        while done < self.cfg.playouts {
            if let Some(b) = budget {
                if move_start.elapsed() >= b {
                    break;
                }
            }
            let mut game = root.clone();
            let t0 = Instant::now();
            let (leaf, outcome) = tree.select(&mut game);
            stats.select_ns += t0.elapsed().as_nanos() as u64;
            match outcome {
                SelectOutcome::TerminalBackedUp => {
                    done += 1;
                    stats.playouts += 1;
                }
                SelectOutcome::NeedsEval => {
                    let t1 = Instant::now();
                    game.encode(&mut self.encode_buf);
                    let o = self.evaluator.evaluate_one(&self.encode_buf);
                    stats.eval_ns += t1.elapsed().as_nanos() as u64;
                    let t2 = Instant::now();
                    tree.expand_and_backup(leaf, &o.priors, o.value);
                    stats.backup_ns += t2.elapsed().as_nanos() as u64;
                    done += 1;
                    stats.playouts += 1;
                }
                SelectOutcome::Busy => unreachable!("serial reuse search found a pending leaf"),
            }
        }

        let (visits, probs, value) = tree.action_prior(root.action_space());
        stats.move_ns = move_start.elapsed().as_nanos() as u64;
        stats.nodes = tree.len() as u64;
        debug_assert_eq!(tree.outstanding_vl(), 0);
        self.tree = Some(tree);
        SearchResult {
            probs,
            visits,
            value,
            stats,
        }
    }
}

impl<G: Game> SearchScheme<G> for ReusableSearch {
    fn search(&mut self, root: &G) -> SearchResult {
        self.search_impl(root)
    }

    fn advance(&mut self, action: Action) {
        ReusableSearch::advance(self, action)
    }

    fn reset(&mut self) {
        ReusableSearch::reset(self)
    }

    fn name(&self) -> &'static str {
        "serial+reuse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;
    use games::tictactoe::TicTacToe;
    use games::{Game, Status};

    fn searcher(playouts: usize) -> ReusableSearch {
        let cfg = MctsConfig {
            playouts,
            ..Default::default()
        };
        ReusableSearch::new(cfg, Arc::new(UniformEvaluator::for_game(&TicTacToe::new())))
    }

    #[test]
    fn first_search_matches_serial_budget() {
        let mut s = searcher(64);
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 64);
        assert_eq!(s.inherited_nodes, 0);
    }

    #[test]
    fn advance_retains_played_subtree() {
        let mut s = searcher(200);
        let mut g = TicTacToe::new();
        let r = s.search(&g);
        let a = r.best_action();
        let retained_before = s.retained_nodes();
        assert!(retained_before > 1);
        s.advance(a);
        g.apply(a);
        assert!(s.retained_nodes() > 1, "subtree of best move survives");
        assert!(s.retained_nodes() < retained_before);

        let r2 = s.search(&g);
        assert!(s.inherited_nodes > 0, "second search starts warm");
        assert_eq!(r2.stats.playouts, 200);
    }

    #[test]
    fn advance_on_unexplored_action_keeps_nothing_useful() {
        let mut s = searcher(4); // tiny search: most children unvisited
        let mut g = TicTacToe::new();
        let r = s.search(&g);
        // Pick a legal action with zero visits if one exists. Its child
        // node exists (expansion creates all children) but is a bare,
        // unexpanded node — the extracted subtree is a single node.
        if let Some(a) = (0..9).find(|&a| r.visits[a as usize] == 0 && g.is_legal(a)) {
            s.advance(a);
            g.apply(a);
            assert!(s.retained_nodes() <= 1, "unvisited child has no subtree");
            let r2 = s.search(&g);
            assert_eq!(s.inherited_nodes, 0);
            assert_eq!(r2.stats.playouts, 4);
        }
    }

    #[test]
    fn advance_twice_without_search_discards() {
        // Advancing along an unexplored opponent reply after our own move
        // leaves nothing; the next search starts cold and still works.
        let mut s = searcher(8);
        let mut g = TicTacToe::new();
        let r = s.search(&g);
        let a = r.best_action();
        s.advance(a);
        g.apply(a);
        // Opponent plays something the tiny tree never expanded below.
        let opp = g.legal_actions()[0];
        s.advance(opp);
        g.apply(opp);
        let r2 = s.search(&g);
        assert_eq!(r2.stats.playouts, 8);
    }

    #[test]
    fn reuse_accumulates_visits_across_moves() {
        let mut s = searcher(100);
        let mut g = TicTacToe::new();
        let r1 = s.search(&g);
        let a = r1.best_action();
        let child_visits = r1.visits[a as usize];
        s.advance(a);
        g.apply(a);
        let r2 = s.search(&g);
        // The new root had `child_visits` visits; 100 more playouts ran.
        let total: u32 = r2.visits.iter().sum();
        assert!(
            total >= child_visits.saturating_sub(1),
            "inherited visits {child_visits} should persist, got {total}"
        );
        assert_eq!(r2.stats.playouts, 100);
    }

    #[test]
    fn full_selfplay_game_with_reuse_is_legal() {
        let mut s = searcher(64);
        let mut g = TicTacToe::new();
        let mut moves = 0;
        while g.status() == Status::Ongoing {
            let r = s.search(&g);
            let a = r.best_action();
            assert!(g.is_legal(a));
            s.advance(a);
            g.apply(a);
            moves += 1;
            assert!(moves <= 9);
        }
        assert!(g.status().is_terminal());
    }

    #[test]
    fn reset_clears_retained_tree() {
        let mut s = searcher(50);
        let g = TicTacToe::new();
        let r = s.search(&g);
        s.advance(r.best_action());
        assert!(s.retained_nodes() > 0);
        s.reset();
        assert_eq!(s.retained_nodes(), 0);
    }

    #[test]
    fn reuse_and_fresh_agree_on_forced_win() {
        // X: 0,1 — O: 3,4. X to move; 2 wins. Reuse must not change the
        // conclusion.
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = searcher(400);
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2);
        // Play it, opponent replies, search again from the warm tree.
        s.advance(2);
    }
}
