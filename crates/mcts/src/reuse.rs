//! Tree reuse across moves: keep the subtree of the move actually played as
//! the starting tree for the next search.
//!
//! The paper rebuilds the tree from scratch for every move (Algorithm 2
//! line 2 copies the environment and starts at a bare root). Production
//! AlphaZero implementations instead *re-root*: after playing action `a`
//! from state `s`, the child subtree under `a` already holds thousands of
//! evaluated nodes that remain valid for `s' = s·a`. This module provides
//! that optimization on top of the single-owner tree as an opt-in wrapper —
//! an ablation target for the benchmarks (reuse shrinks `T_select` early in
//! the move, which shifts the shared/local crossover of §4).
//!
//! Re-rooting is **in place** ([`crate::tree::Tree::advance_root`]): the
//! kept subtree stays where it is, the discarded region goes onto the
//! arena free-list, and the next search's expansions recycle those slots.
//! In steady state a whole search → [`ReusableSearch::advance`] → search
//! cycle performs zero heap allocations (see
//! `tests/alloc_steady_state.rs`), and with
//! [`MctsConfig::max_nodes`] set the retained tree searches under a hard
//! memory bound across the entire game.

use crate::budget::{Budget, RootSlot, RunGate, StepOutcome};
use crate::config::MctsConfig;
use crate::evaluator::{BatchEvaluator, EvalOutput};
use crate::result::{SearchResult, SearchScheme, SearchStats};
use crate::tree::{SelectOutcome, Tree, TreeStats};
use games::{Action, Game};
use std::sync::Arc;
use std::time::Instant;

/// Resumable-run state of a reuse search (the tree itself lives in
/// [`ReusableSearch::tree`] so it persists across runs).
struct ReuseRun {
    stats: SearchStats,
    gate: RunGate,
    action_space: usize,
}

/// A serial searcher that persists its tree across moves.
///
/// Unlike [`crate::serial::SerialSearch`], this type is *stateful*: callers
/// must report every move actually played (their own and the opponent's)
/// through [`ReusableSearch::advance`] so the internal tree tracks the game.
/// It implements [`SearchScheme`] (whose `advance` hook it overrides), so
/// self-play drivers get tree reuse for free when the builder enables it.
pub struct ReusableSearch {
    cfg: MctsConfig,
    evaluator: Arc<dyn BatchEvaluator>,
    tree: Option<Tree>,
    encode_buf: Vec<f32>,
    /// Reusable single-slot output for the batch-path evaluation of each
    /// leaf (keeps the steady-state search loop allocation-free).
    eval_out: [EvalOutput; 1],
    /// `reclaimed_total` snapshot at the end of the previous search, so
    /// each result reports the delta.
    reclaimed_snapshot: u64,
    /// Nodes inherited from previous moves via reuse (for diagnostics).
    pub inherited_nodes: u64,
    root: RootSlot,
    run: Option<ReuseRun>,
}

impl ReusableSearch {
    /// Create a reusable searcher.
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        cfg.validate();
        ReusableSearch {
            cfg,
            evaluator,
            tree: None,
            encode_buf: Vec::new(),
            eval_out: [EvalOutput::default()],
            reclaimed_snapshot: 0,
            inherited_nodes: 0,
            root: RootSlot::new(),
            run: None,
        }
    }

    /// Swap the hyper-parameters and evaluator while keeping the warmed
    /// arena memory, and clear any retained subtree (a new logical
    /// session starts). Used by serving layers that pool warmed
    /// searchers across sessions with different models/configs.
    pub fn reconfigure(&mut self, cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) {
        cfg.validate();
        self.run = None;
        self.cfg = cfg;
        self.evaluator = evaluator;
        if let Some(t) = &mut self.tree {
            t.set_config(cfg);
        }
        self.inherited_nodes = 0;
        self.reclaimed_snapshot = self.tree.as_ref().map_or(0, |t| t.stats().reclaimed_total);
    }

    /// Drop any retained search state (e.g. when starting a new game).
    /// The arena's memory is kept, so the next game's searches reuse it.
    /// An active resumable run is abandoned.
    pub fn reset(&mut self) {
        self.run = None;
        if let Some(t) = &mut self.tree {
            t.reset_in_place();
        }
        self.inherited_nodes = 0;
    }

    /// Report that `action` was played from the state last searched (or
    /// last advanced to). Re-roots the retained tree **in place** at the
    /// corresponding child (`O(discarded nodes)`, no allocation), or
    /// resets it if that child was never expanded. An active resumable
    /// run is abandoned first (its completed playouts stay in the tree).
    pub fn advance(&mut self, action: Action) {
        self.run = None;
        if let Some(t) = &mut self.tree {
            t.advance_root(action);
        }
    }

    /// Nodes retained for the next search (0 when nothing useful is held:
    /// no tree, or only a bare root).
    pub fn retained_nodes(&self) -> usize {
        match &self.tree {
            Some(t) if !t.is_empty() => t.len(),
            _ => 0,
        }
    }

    /// Arena accounting of the retained tree (live/free/high-water plus
    /// cumulative reclaim and prune counters); `None` before the first
    /// search.
    pub fn tree_stats(&self) -> Option<TreeStats> {
        self.tree.as_ref().map(Tree::stats)
    }

    /// Run a search from `root`, reusing any retained subtree. The caller
    /// is responsible for `root` being the state reached by the reported
    /// [`ReusableSearch::advance`] sequence — searching a divergent state
    /// with a stale tree silently produces garbage, so prefer `reset` when
    /// in doubt.
    pub fn search<G: Game>(&mut self, root: &G) -> SearchResult {
        let mut result = SearchResult::default();
        self.search_into(root, &mut result);
        result
    }

    /// [`ReusableSearch::search`] into a caller-owned result. Once the
    /// result's buffers have capacity (and the evaluator is itself
    /// allocation-free, e.g. a warmed [`crate::NnEvaluator`]), a whole
    /// search → advance → search cycle performs zero heap allocations.
    pub fn search_into<G: Game>(&mut self, root: &G, result: &mut SearchResult) {
        SearchScheme::<G>::begin(self, root, Budget::default());
        while SearchScheme::<G>::step(self, usize::MAX) == StepOutcome::Running {}
        self.partial_into(result);
        SearchScheme::<G>::cancel(self);
    }

    /// [`SearchScheme::partial_result`] into caller-owned buffers (no
    /// allocation once the buffers have capacity). Leaves `result`
    /// untouched when no run is active.
    pub fn partial_into(&self, result: &mut SearchResult) {
        let (Some(run), Some(tree)) = (&self.run, &self.tree) else {
            return;
        };
        result.value =
            tree.action_prior_into(run.action_space, &mut result.visits, &mut result.probs);
        result.stats = run.stats;
        result.stats.move_ns = run.gate.active_ns;
        result.stats.seq = run.gate.seq();
        result.stats.nodes = tree.len() as u64;
        result.stats.reclaimed = tree.stats().reclaimed_total - self.reclaimed_snapshot;
    }
}

impl<G: Game> SearchScheme<G> for ReusableSearch {
    fn begin(&mut self, root: &G, budget: Budget) {
        SearchScheme::<G>::cancel(self);
        let run_cfg = budget.apply_to(&self.cfg);
        let tree = match &mut self.tree {
            Some(t) => {
                // Per-run knob changes apply to the retained tree too
                // (its arena bound stays where it is, see Budget docs).
                t.set_search_params(run_cfg);
                t
            }
            None => self.tree.insert(Tree::new(run_cfg)),
        };
        self.inherited_nodes = (tree.len() as u64).saturating_sub(1);
        self.root.store(root);
        self.encode_buf.resize(root.encoded_len(), 0.0);
        // Count *new* playouts only: an inherited tree already holds
        // visits, so the per-run compute budget stays comparable to a
        // fresh search.
        self.run = Some(ReuseRun {
            stats: SearchStats::default(),
            gate: RunGate::new(&self.cfg, &budget, root.status().is_terminal()),
            action_space: root.action_space(),
        });
    }

    fn step(&mut self, quota: usize) -> StepOutcome {
        let Some(run) = &mut self.run else {
            return StepOutcome::Done;
        };
        let tree = self.tree.as_mut().expect("run implies a tree");
        let step_start = Instant::now();
        let root = self.root.get::<G>();
        let mut used = 0usize;
        while used < quota && !run.gate.exhausted() {
            let mut game = root.clone();
            let t0 = Instant::now();
            let (leaf, outcome) = tree.select(&mut game);
            run.stats.select_ns += t0.elapsed().as_nanos() as u64;
            match outcome {
                SelectOutcome::TerminalBackedUp => {}
                SelectOutcome::NeedsEval => {
                    let key = game.hash();
                    if let Some(src) = tree.tt_lookup(key) {
                        // Same position reached by another move order:
                        // reuse its priors/value, skip the evaluator.
                        let t1 = Instant::now();
                        tree.expand_from_transposition(leaf, src);
                        run.stats.tt_hits += 1;
                        run.stats.backup_ns += t1.elapsed().as_nanos() as u64;
                    } else {
                        let t1 = Instant::now();
                        game.encode(&mut self.encode_buf);
                        let inputs = [self.encode_buf.as_slice()];
                        self.evaluator
                            .evaluate_batch_keyed(&[key], &inputs, &mut self.eval_out);
                        let o = &self.eval_out[0];
                        run.stats.eval_ns += t1.elapsed().as_nanos() as u64;
                        let t2 = Instant::now();
                        tree.expand_and_backup(leaf, &o.priors, o.value);
                        tree.tt_record(key, leaf);
                        run.stats.backup_ns += t2.elapsed().as_nanos() as u64;
                    }
                }
                SelectOutcome::Busy => unreachable!("serial reuse search found a pending leaf"),
            }
            used += 1;
            run.gate.done += 1;
            run.stats.playouts += 1;
        }
        run.gate.note_step(step_start);
        if run.gate.exhausted() {
            debug_assert_eq!(tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            tree.check_invariants();
            StepOutcome::Done
        } else {
            StepOutcome::Running
        }
    }

    fn partial_result(&self) -> SearchResult {
        let mut result = SearchResult::default();
        self.partial_into(&mut result);
        result
    }

    fn cancel(&mut self) {
        if self.run.take().is_some() {
            // The retained tree keeps the cancelled run's completed
            // playouts: a shorter search happened, nothing is torn down.
            let tree = self.tree.as_ref().expect("run implies a tree");
            debug_assert_eq!(tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            tree.check_invariants();
            self.reclaimed_snapshot = tree.stats().reclaimed_total;
        }
    }

    fn search(&mut self, root: &G) -> SearchResult {
        ReusableSearch::search(self, root)
    }

    fn advance(&mut self, action: Action) {
        ReusableSearch::advance(self, action)
    }

    fn reset(&mut self) {
        ReusableSearch::reset(self)
    }

    fn name(&self) -> &'static str {
        "serial+reuse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;
    use games::tictactoe::TicTacToe;
    use games::{Game, Status};

    fn searcher(playouts: usize) -> ReusableSearch {
        let cfg = MctsConfig {
            playouts,
            ..Default::default()
        };
        ReusableSearch::new(cfg, Arc::new(UniformEvaluator::for_game(&TicTacToe::new())))
    }

    #[test]
    fn first_search_matches_serial_budget() {
        let mut s = searcher(64);
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 64);
        assert_eq!(s.inherited_nodes, 0);
        assert_eq!(r.stats.reclaimed, 0, "nothing reclaimed on a cold tree");
    }

    #[test]
    fn advance_retains_played_subtree() {
        let mut s = searcher(200);
        let mut g = TicTacToe::new();
        let r = s.search(&g);
        let a = r.best_action();
        let retained_before = s.retained_nodes();
        assert!(retained_before > 1);
        s.advance(a);
        g.apply(a);
        assert!(s.retained_nodes() > 1, "subtree of best move survives");
        assert!(s.retained_nodes() < retained_before);

        let r2 = s.search(&g);
        assert!(s.inherited_nodes > 0, "second search starts warm");
        assert_eq!(r2.stats.playouts, 200);
        assert!(
            r2.stats.reclaimed > 0,
            "discarded siblings reported as reclaimed"
        );
        let stats = s.tree_stats().unwrap();
        assert_eq!(stats.live + stats.free, stats.high_water);
    }

    #[test]
    fn advance_on_unexplored_action_keeps_nothing_useful() {
        let mut s = searcher(4); // tiny search: most children unvisited
        let mut g = TicTacToe::new();
        let r = s.search(&g);
        // Pick a legal action with zero visits if one exists. Its child
        // node exists (expansion creates all children) but is a bare,
        // unexpanded node — the re-rooted tree is a single node.
        if let Some(a) = (0..9).find(|&a| r.visits[a as usize] == 0 && g.is_legal(a)) {
            s.advance(a);
            g.apply(a);
            assert!(s.retained_nodes() <= 1, "unvisited child has no subtree");
            let r2 = s.search(&g);
            assert_eq!(s.inherited_nodes, 0);
            assert_eq!(r2.stats.playouts, 4);
        }
    }

    #[test]
    fn advance_twice_without_search_discards() {
        // Advancing along an unexplored opponent reply after our own move
        // leaves nothing; the next search starts cold and still works.
        let mut s = searcher(8);
        let mut g = TicTacToe::new();
        let r = s.search(&g);
        let a = r.best_action();
        s.advance(a);
        g.apply(a);
        // Opponent plays something the tiny tree never expanded below.
        let opp = g.legal_actions()[0];
        s.advance(opp);
        g.apply(opp);
        let r2 = s.search(&g);
        assert_eq!(r2.stats.playouts, 8);
    }

    #[test]
    fn reuse_accumulates_visits_across_moves() {
        let mut s = searcher(100);
        let mut g = TicTacToe::new();
        let r1 = s.search(&g);
        let a = r1.best_action();
        let child_visits = r1.visits[a as usize];
        s.advance(a);
        g.apply(a);
        let r2 = s.search(&g);
        // The new root had `child_visits` visits; 100 more playouts ran.
        let total: u32 = r2.visits.iter().sum();
        assert!(
            total >= child_visits.saturating_sub(1),
            "inherited visits {child_visits} should persist, got {total}"
        );
        assert_eq!(r2.stats.playouts, 100);
    }

    #[test]
    fn full_selfplay_game_with_reuse_is_legal() {
        let mut s = searcher(64);
        let mut g = TicTacToe::new();
        let mut moves = 0;
        while g.status() == Status::Ongoing {
            let r = s.search(&g);
            let a = r.best_action();
            assert!(g.is_legal(a));
            s.advance(a);
            g.apply(a);
            moves += 1;
            assert!(moves <= 9);
        }
        assert!(g.status().is_terminal());
    }

    #[test]
    fn reset_clears_retained_tree() {
        let mut s = searcher(50);
        let g = TicTacToe::new();
        let r = s.search(&g);
        s.advance(r.best_action());
        assert!(s.retained_nodes() > 0);
        s.reset();
        assert_eq!(s.retained_nodes(), 0);
        // The arena itself survives (memory reuse across games).
        assert!(s.tree_stats().is_some());
    }

    #[test]
    fn reuse_and_fresh_agree_on_forced_win() {
        // X: 0,1 — O: 3,4. X to move; 2 wins. Reuse must not change the
        // conclusion.
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = searcher(400);
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2);
        // Play it, opponent replies, search again from the warm tree.
        s.advance(2);
    }

    #[test]
    fn search_into_reuses_result_buffers() {
        let mut s = searcher(50);
        let mut g = TicTacToe::new();
        let mut result = s.search(&g);
        let cap = (result.visits.capacity(), result.probs.capacity());
        let a = result.best_action();
        s.advance(a);
        g.apply(a);
        s.search_into(&g, &mut result);
        assert_eq!(result.stats.playouts, 50);
        assert_eq!(
            (result.visits.capacity(), result.probs.capacity()),
            cap,
            "buffers reused, not reallocated"
        );
        assert_eq!(result.visits.len(), 9);
    }

    #[test]
    fn transpositions_survive_advance() {
        let cfg = MctsConfig {
            playouts: 200,
            transpositions: true,
            ..Default::default()
        };
        let mut s =
            ReusableSearch::new(cfg, Arc::new(UniformEvaluator::for_game(&TicTacToe::new())));
        let mut g = TicTacToe::new();
        let r1 = ReusableSearch::search(&mut s, &g);
        assert!(r1.stats.tt_hits > 0, "first search should transpose");
        let a = r1.best_action();
        s.advance(a); // clears the index along with the discarded region
        g.apply(a);
        let r2 = ReusableSearch::search(&mut s, &g);
        assert_eq!(r2.stats.playouts, 200, "warm tree still searches");
    }

    #[test]
    fn bounded_reuse_game_respects_max_nodes() {
        let cap = 300usize;
        let mut s = ReusableSearch::new(
            MctsConfig {
                playouts: 200,
                max_nodes: Some(cap),
                ..Default::default()
            },
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let mut g = TicTacToe::new();
        while g.status() == Status::Ongoing {
            let r = s.search(&g);
            let a = r.best_action();
            s.advance(a);
            g.apply(a);
        }
        let stats = s.tree_stats().unwrap();
        assert!(
            stats.high_water <= cap,
            "hard bound held for the whole game: {} > {cap}",
            stats.high_water
        );
    }
}
