//! The uniform search budget and the resumable-run plumbing shared by
//! every scheme.
//!
//! A [`Budget`] bounds one *run* (one `begin`…`step`…`Done` cycle) along
//! three axes — playouts, wall-clock deadline, tree memory — replacing
//! the ad-hoc `time_budget_ms` checks that used to be enforced unevenly
//! per scheme. Every field is optional; `None` inherits the
//! corresponding [`MctsConfig`] value, so `Budget::default()` means
//! "whatever the searcher was configured with".
//!
//! `RunGate` (crate-internal) is the per-run progress/deadline tracker
//! the schemes share: it resolves a budget against the config once at
//! [`SearchScheme::begin`](crate::SearchScheme::begin) and answers
//! "may another playout start?" on the hot path. It also counts the
//! run's completed `step` calls, which every scheme stamps into
//! [`SearchStats::seq`](crate::SearchStats::seq) — the snapshot
//! sequence number that lets a streaming consumer (the `serve` crate's
//! ticket subscriptions) order and deduplicate anytime snapshots.
//!
//! # Example: a budgeted, resumable run
//!
//! ```
//! use games::tictactoe::TicTacToe;
//! use mcts::{Budget, Scheme, SearchBuilder, StepOutcome, UniformEvaluator};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let mut search = SearchBuilder::new(Scheme::Serial)
//!     .playouts(10_000) // config ceiling (the budget tightens it)
//!     .evaluator(Arc::new(UniformEvaluator::for_game(&TicTacToe::new())))
//!     .build::<TicTacToe>();
//!
//! // 96 playouts or 5 seconds, whichever is hit first.
//! let budget = Budget::playouts(96).with_time(Duration::from_secs(5));
//! search.begin(&TicTacToe::new(), budget);
//! let mut snapshots = 0;
//! while search.step(32) == StepOutcome::Running {
//!     let snap = search.partial_result(); // anytime: exact over completed playouts
//!     snapshots += 1;
//!     assert_eq!(snap.stats.seq, snapshots, "each step bumps the snapshot seq");
//! }
//! let result = search.partial_result();
//! assert_eq!(result.stats.playouts, 96);
//! search.cancel(); // or just begin() the next run
//! ```

use crate::config::MctsConfig;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::time::{Duration, Instant};

/// Uniform per-run search budget (see module docs). Fields left `None`
/// inherit from the scheme's [`MctsConfig`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum completed playouts for the run (`None` ⇒
    /// [`MctsConfig::playouts`]). Always an upper bound, even when a
    /// deadline is also set.
    pub playouts: Option<u64>,
    /// Wall-clock budget for the run, measured from
    /// [`SearchScheme::begin`](crate::SearchScheme::begin) (`None` ⇒
    /// [`MctsConfig::time_budget_ms`]). Enforced by every scheme: no new
    /// playout (shared tree: rollout ticket; local tree: issued leaf)
    /// starts after the deadline, and the run reports
    /// [`StepOutcome::Done`] once in-flight work has drained.
    pub time: Option<Duration>,
    /// Hard tree-memory bound in nodes for the run's tree (`None` ⇒
    /// [`MctsConfig::max_nodes`]). Applies to trees created by this run;
    /// a retained reuse tree keeps the bound it was built with.
    pub max_nodes: Option<usize>,
    /// Hard tree-memory bound in **bytes** for the run's tree (`None` ⇒
    /// [`MctsConfig::arena_budget_bytes`]). The byte-denominated twin of
    /// `max_nodes` — when both are set the tighter slot bound wins. Same
    /// retained-tree caveat as `max_nodes`.
    pub max_bytes: Option<usize>,
}

impl Budget {
    /// A budget bounding only the playout count.
    pub fn playouts(n: u64) -> Self {
        Budget {
            playouts: Some(n),
            ..Default::default()
        }
    }

    /// A budget bounding only wall-clock time (playouts stay capped by
    /// the config — the paper's iteration budget remains an upper bound).
    pub fn time(d: Duration) -> Self {
        Budget {
            time: Some(d),
            ..Default::default()
        }
    }

    /// Builder-style playout bound.
    pub fn with_playouts(mut self, n: u64) -> Self {
        self.playouts = Some(n);
        self
    }

    /// Builder-style deadline.
    pub fn with_time(mut self, d: Duration) -> Self {
        self.time = Some(d);
        self
    }

    /// Builder-style tree-memory bound.
    pub fn with_max_nodes(mut self, nodes: usize) -> Self {
        self.max_nodes = Some(nodes);
        self
    }

    /// Builder-style tree-memory bound in bytes.
    pub fn with_max_bytes(mut self, bytes: usize) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// The effective per-run configuration: the scheme's config with this
    /// budget's overrides folded in. Schemes build their run's tree from
    /// the returned config so arena sizing and pruning see the budget.
    pub fn apply_to(&self, cfg: &MctsConfig) -> MctsConfig {
        let mut out = *cfg;
        if let Some(p) = self.playouts {
            out.playouts = usize::try_from(p).unwrap_or(usize::MAX).max(1);
        }
        if let Some(t) = self.time {
            out.time_budget_ms = Some((t.as_millis() as u64).max(1));
        }
        if let Some(n) = self.max_nodes {
            out.max_nodes = Some(n);
        }
        if let Some(b) = self.max_bytes {
            out.arena_budget_bytes = Some(b);
        }
        out
    }
}

/// What one [`SearchScheme::step`](crate::SearchScheme::step) call left
/// behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The quota was consumed (or the call yielded early) with budget
    /// remaining: call `step` again to continue the run.
    Running,
    /// The run is finished — playout budget met, deadline passed, the
    /// root is terminal, or no run is active. Further `step` calls are
    /// no-ops returning `Done`;
    /// [`partial_result`](crate::SearchScheme::partial_result) returns
    /// the final result until the run is dropped by
    /// [`cancel`](crate::SearchScheme::cancel) or a new `begin`.
    Done,
}

/// Per-run progress gate: playout target + wall-clock deadline, resolved
/// once at `begin`. Shared by every scheme's run state.
#[derive(Debug)]
pub(crate) struct RunGate {
    /// Completed-playout target for the whole run.
    target: u64,
    /// Completed playouts so far.
    pub done: u64,
    /// Absolute deadline (computed at `begin`), if any.
    deadline: Option<Instant>,
    /// Accumulated wall-clock time spent inside `step` calls, ns (the
    /// run's *active* time; a multiplexed session is not charged for
    /// time spent parked in a service queue).
    pub active_ns: u64,
    /// Completed `step` calls this run — the snapshot sequence number
    /// stamped into [`SearchStats::seq`](crate::SearchStats::seq).
    steps: u64,
}

impl RunGate {
    /// Resolve `budget` against `cfg` now (the deadline clock starts
    /// here). `terminal_root` forces an immediately-finished run.
    pub fn new(cfg: &MctsConfig, budget: &Budget, terminal_root: bool) -> Self {
        let target = if terminal_root {
            0
        } else {
            budget.playouts.unwrap_or(cfg.playouts as u64)
        };
        let time = budget
            .time
            .or_else(|| cfg.time_budget_ms.map(Duration::from_millis));
        RunGate {
            target,
            done: 0,
            deadline: time.map(|t| Instant::now() + t),
            active_ns: 0,
            steps: 0,
        }
    }

    /// Charge one finished `step` call to the run: accumulate the time
    /// spent inside it and advance the snapshot sequence number.
    #[inline]
    pub fn note_step(&mut self, started: Instant) {
        self.active_ns += started.elapsed().as_nanos() as u64;
        self.steps += 1;
    }

    /// The snapshot sequence number: completed `step` calls this run.
    /// Strictly monotone within a run; see
    /// [`SearchStats::seq`](crate::SearchStats::seq).
    #[inline]
    pub fn seq(&self) -> u64 {
        self.steps
    }

    /// Playout target for the run.
    #[inline]
    pub fn target(&self) -> u64 {
        self.target
    }

    /// True once the wall-clock budget is spent.
    #[inline]
    pub fn out_of_time(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The absolute deadline, if any.
    #[inline]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True once no further playout may start (target met or deadline
    /// passed).
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.done >= self.target || self.out_of_time()
    }

    /// Playouts still owed to the target.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.target.saturating_sub(self.done)
    }
}

/// Reusable type-erased root-state slot for resumable runs.
///
/// Scheme structs are not generic over the game, so a run stores its
/// root as `Box<dyn Any>`; the slot persists across runs and
/// `clone_from`s the new root into the existing box whenever the game
/// type repeats, keeping steady-state `begin` allocation-free for
/// heap-free game states.
pub(crate) struct RootSlot {
    slot: Option<Box<dyn Any + Send>>,
}

impl RootSlot {
    pub const fn new() -> Self {
        RootSlot { slot: None }
    }

    /// Store a copy of `root` for the run starting now.
    pub fn store<G: games::Game>(&mut self, root: &G) {
        match self.slot.as_mut().and_then(|b| b.downcast_mut::<G>()) {
            Some(g) => g.clone_from(root),
            None => self.slot = Some(Box::new(root.clone())),
        }
    }

    /// The stored root.
    ///
    /// # Panics
    /// If `step` is driven with a different game type than `begin`
    /// (caller bug), or if no run was ever begun.
    pub fn get<G: games::Game>(&self) -> &G {
        self.slot
            .as_ref()
            .expect("no active run: call begin() first")
            .downcast_ref::<G>()
            .expect("step must be called with the same game type as begin")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_inherits_config() {
        let cfg = MctsConfig {
            playouts: 77,
            time_budget_ms: Some(5),
            ..Default::default()
        };
        let gate = RunGate::new(&cfg, &Budget::default(), false);
        assert_eq!(gate.target(), 77);
        assert!(gate.deadline().is_some());
        assert!(!gate.exhausted());
    }

    #[test]
    fn explicit_budget_overrides_config() {
        let cfg = MctsConfig::default();
        let b = Budget::playouts(3).with_time(Duration::from_secs(10));
        let gate = RunGate::new(&cfg, &b, false);
        assert_eq!(gate.target(), 3);
        assert_eq!(gate.remaining(), 3);
        let run_cfg = b.with_max_nodes(500).apply_to(&cfg);
        assert_eq!(run_cfg.playouts, 3);
        assert_eq!(run_cfg.max_nodes, Some(500));
        assert_eq!(run_cfg.time_budget_ms, Some(10_000));
        let run_cfg = b.with_max_bytes(1 << 20).apply_to(&cfg);
        assert_eq!(run_cfg.arena_budget_bytes, Some(1 << 20));
        assert!(run_cfg.node_budget().unwrap() > 0);
    }

    #[test]
    fn terminal_root_is_immediately_exhausted() {
        let gate = RunGate::new(&MctsConfig::default(), &Budget::default(), true);
        assert_eq!(gate.target(), 0);
        assert!(gate.exhausted());
    }

    #[test]
    fn expired_deadline_exhausts_gate() {
        let cfg = MctsConfig::default();
        let gate = RunGate::new(&cfg, &Budget::time(Duration::ZERO), false);
        std::thread::sleep(Duration::from_millis(2));
        assert!(gate.out_of_time());
        assert!(gate.exhausted());
        assert!(gate.remaining() > 0, "playout target itself is unmet");
    }

    #[test]
    fn root_slot_reuses_box_for_same_type() {
        use games::tictactoe::TicTacToe;
        let mut slot = RootSlot::new();
        slot.store(&TicTacToe::new());
        let first = slot.get::<TicTacToe>() as *const _ as usize;
        let mut g = TicTacToe::new();
        games::Game::apply(&mut g, 4);
        slot.store(&g);
        let second = slot.get::<TicTacToe>() as *const _ as usize;
        assert_eq!(first, second, "same-type store must reuse the box");
        assert_eq!(games::Game::move_count(slot.get::<TicTacToe>()), 1);
    }
}
