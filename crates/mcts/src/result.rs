//! The common interface of all search schemes and their outputs.

use crate::budget::{Budget, StepOutcome};
use games::Action;
use serde::{Deserialize, Serialize};

/// Timing/accounting breakdown of one search call. Times are wall-clock
/// nanoseconds accumulated inside the scheme; parallel schemes report the
/// *sum across workers* for the per-phase counters and the elapsed move
/// time separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Playouts completed (== requested playouts on success).
    pub playouts: u64,
    /// Total time inside Node Selection (sum over workers), ns.
    pub select_ns: u64,
    /// Total time inside Node Expansion + BackUp (sum over workers), ns.
    pub backup_ns: u64,
    /// Total time inside Node Evaluation / DNN inference, ns.
    pub eval_ns: u64,
    /// Wall-clock time of the whole move, ns.
    pub move_ns: u64,
    /// Playout attempts aborted because the leaf was being evaluated by
    /// another in-flight playout (collisions despite virtual loss).
    pub collisions: u64,
    /// Live nodes in the tree at the end of the search.
    pub nodes: u64,
    /// Nodes reclaimed onto the arena free-list since the previous search
    /// (in-place re-rooting and capacity pruning). Always 0 for schemes
    /// that rebuild their tree every move.
    pub reclaimed: u64,
    /// Snapshot sequence number: completed [`SearchScheme::step`] calls
    /// of the run when this snapshot was taken. Strictly monotone within
    /// a run, so streaming consumers can order and deduplicate anytime
    /// snapshots; 0 for a run that was never stepped.
    pub seq: u64,
    /// Expansions served from the per-tree transposition index instead
    /// of a fresh evaluation (see [`crate::MctsConfig::transpositions`]).
    /// Always 0 when the index is disabled or unsupported by the scheme.
    pub tt_hits: u64,
}

impl SearchStats {
    /// Amortized per-worker-iteration latency (paper §5.3): the total move
    /// time divided by the number of playouts.
    pub fn amortized_iteration_ns(&self) -> f64 {
        if self.playouts == 0 {
            0.0
        } else {
            self.move_ns as f64 / self.playouts as f64
        }
    }

    /// Fraction of (select + backup + eval) time spent on in-tree
    /// operations — the quantity behind the paper's ">85% of runtime is
    /// tree-based search" motivation when evaluation is cheap.
    pub fn in_tree_fraction(&self) -> f64 {
        let total = self.select_ns + self.backup_ns + self.eval_ns;
        if total == 0 {
            0.0
        } else {
            (self.select_ns + self.backup_ns) as f64 / total as f64
        }
    }
}

/// The outcome of one tree-based search ("one move", Algorithms 2/3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SearchResult {
    /// Normalized root visit distribution over the full action space
    /// ("action_prior ← normalized root's children list wrt visit count").
    pub probs: Vec<f32>,
    /// Raw root visit counts per action.
    pub visits: Vec<u32>,
    /// Root value estimate (mean backed-up value, current player's view).
    pub value: f32,
    /// Timing/accounting.
    pub stats: SearchStats,
}

impl SearchResult {
    /// The most-visited action (greedy move choice, Algorithm 1 line 10).
    ///
    /// Edge cases are fully defined: ties break toward the **lowest**
    /// action index (deterministic across runs and platforms), and an
    /// all-zero visit vector — a search that never expanded the root,
    /// e.g. zero completed playouts or a terminal root — falls back to
    /// the highest-prior action, then to action 0.
    pub fn best_action(&self) -> Action {
        let mut best = 0usize;
        for (i, &v) in self.visits.iter().enumerate() {
            // Strict `>`: the first maximum wins, so ties are stable.
            if v > self.visits[best] {
                best = i;
            }
        }
        if self.visits.is_empty() || self.visits[best] > 0 {
            return best as Action;
        }
        // No visits anywhere: the prior is the only signal left.
        let mut by_prior = 0usize;
        for (i, &p) in self.probs.iter().enumerate() {
            if p > self.probs[by_prior] {
                by_prior = i;
            }
        }
        by_prior as Action
    }

    /// Sample an action from visit counts sharpened by `1/temperature`.
    ///
    /// `temperature → 0` recovers [`SearchResult::best_action`] exactly
    /// (argmax with the same deterministic tie-breaking); `1.0` samples
    /// proportionally to visits. Weights are normalized by the maximum
    /// visit count before exponentiation, so small temperatures cannot
    /// overflow to `inf`/NaN no matter how large the counts are, and an
    /// all-zero visit vector falls back to `best_action()`.
    ///
    /// **Allocation-free**: the weights are recomputed during the CDF
    /// walk instead of staged in a scratch vector, so per-move sampling
    /// in a serving loop stays off the heap (see
    /// `tests/alloc_steady_state.rs`).
    pub fn sample_action<R: rand::Rng + ?Sized>(&self, temperature: f32, rng: &mut R) -> Action {
        if temperature < 1e-3 {
            return self.best_action();
        }
        let max_v = self.visits.iter().copied().max().unwrap_or(0);
        if max_v == 0 {
            return self.best_action();
        }
        let inv_t = 1.0 / temperature as f64;
        // (v / max)^1/t ∈ [0, 1]: immune to overflow for any t > 0.
        let weight = |v: u32| (v as f64 / max_v as f64).powf(inv_t);
        let total: f64 = self.visits.iter().map(|&v| weight(v)).sum();
        if total <= 0.0 || !total.is_finite() {
            return self.best_action();
        }
        let mut u = rng.gen_range(0.0..total);
        // Second pass re-derives each weight: two `powf`s per action
        // beat a heap allocation per sampled move.
        for (i, &v) in self.visits.iter().enumerate() {
            let w = weight(v);
            if u < w {
                return i as Action;
            }
            u -= w;
        }
        self.best_action()
    }
}

/// A tree-based search scheme (one of the paper's parallel methods or a
/// baseline).
///
/// # Resumable execution
///
/// Search is an incremental, schedulable unit: [`SearchScheme::begin`]
/// opens a run from a root state under a [`Budget`], repeated
/// [`SearchScheme::step`] calls advance it by a bounded number of
/// playouts, [`SearchScheme::partial_result`] snapshots the anytime
/// result, and [`SearchScheme::cancel`] abandons the run (leaving the
/// scheme reusable). [`SearchScheme::search`] — `get_action_prior` in
/// Algorithms 2/3 — is a provided thin loop over `step`, so one-shot
/// callers never see the state machine.
///
/// Contract common to every implementation:
///
/// * `begin` implicitly cancels any still-active run;
/// * `step` with no active run returns [`StepOutcome::Done`] and does
///   nothing; `step` must be driven with the same game type `G` as the
///   `begin` that opened the run (panics otherwise);
/// * between `step` calls the run's tree is quiescent enough to snapshot:
///   `partial_result` is exact over all *completed* playouts (pipelined
///   schemes may hold evaluations in flight across steps — their virtual
///   loss is not part of the snapshot);
/// * `cancel` drains or reverts any in-flight work, so a retained tree
///   (reuse scheme) stays consistent and a subsequent `begin`/`advance`
///   behaves as if the cancelled run had been a shorter search.
pub trait SearchScheme<G: games::Game>: Send {
    /// Open a resumable run from `root` under `budget` (fields left
    /// `None` inherit the scheme's config). Any active run is cancelled.
    fn begin(&mut self, root: &G, budget: Budget);

    /// Advance the active run by roughly `quota` completed playouts.
    /// Blocks while those playouts execute (parallel schemes use their
    /// worker pools internally) and returns whether budget remains.
    /// `quota` is a pacing hint, not an exact count: pipelined schemes
    /// may complete a few extra playouts as in-flight evaluations drain,
    /// and a deadline can end the step early. `usize::MAX` runs the whole
    /// remaining budget in one call.
    fn step(&mut self, quota: usize) -> StepOutcome;

    /// Anytime snapshot of the active (or just-finished) run: the root
    /// visit distribution over all completed playouts, plus accumulated
    /// stats (`move_ns` counts time spent inside `step` calls, not time
    /// parked between them). Returns an empty default when no run was
    /// ever begun.
    fn partial_result(&self) -> SearchResult;

    /// Abandon the active run. In-flight evaluations are drained (their
    /// virtual loss released), so tree invariants hold afterwards; with
    /// the `invariants` cargo feature the full invariant walk runs here.
    /// No-op when no run is active.
    fn cancel(&mut self);

    /// Run one move's worth of playouts from `root`: a thin loop over
    /// the resumable API, equivalent to `begin` + `step`-to-completion +
    /// `partial_result`.
    fn search(&mut self, root: &G) -> SearchResult {
        self.begin(root, Budget::default());
        while self.step(usize::MAX) == StepOutcome::Running {}
        let result = self.partial_result();
        self.cancel();
        result
    }

    /// Report that `action` was actually played from the last-searched
    /// state. Stateless schemes ignore this (the default); stateful
    /// schemes (tree reuse) re-root their retained tree. Self-play
    /// drivers call it after every applied move.
    fn advance(&mut self, action: Action) {
        let _ = action;
    }

    /// Discard any state retained across moves (e.g. when a new game
    /// starts). No-op for stateless schemes. Match drivers call it at
    /// the start of every game.
    fn reset(&mut self) {}

    /// Short scheme identifier for logs/plots.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn result_with_visits(visits: Vec<u32>) -> SearchResult {
        let total: u32 = visits.iter().sum();
        let probs = visits.iter().map(|&v| v as f32 / total as f32).collect();
        SearchResult {
            probs,
            visits,
            value: 0.0,
            stats: SearchStats::default(),
        }
    }

    #[test]
    fn best_action_is_argmax() {
        let r = result_with_visits(vec![1, 5, 3]);
        assert_eq!(r.best_action(), 1);
    }

    #[test]
    fn zero_temperature_is_greedy() {
        let r = result_with_visits(vec![10, 90]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(r.sample_action(0.0, &mut rng), 1);
        }
    }

    #[test]
    fn temperature_one_samples_proportionally() {
        let r = result_with_visits(vec![100, 900]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 5000;
        let ones = (0..n)
            .filter(|_| r.sample_action(1.0, &mut rng) == 1)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.03, "sampled fraction {frac}");
    }

    #[test]
    fn low_temperature_sharpens() {
        let r = result_with_visits(vec![400, 600]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 2000;
        let sharp = (0..n)
            .filter(|_| r.sample_action(0.25, &mut rng) == 1)
            .count() as f64
            / n as f64;
        assert!(sharp > 0.75, "sharpened fraction {sharp}");
    }

    #[test]
    fn best_action_ties_break_to_lowest_index() {
        let r = result_with_visits(vec![3, 7, 7, 7, 1]);
        assert_eq!(r.best_action(), 1, "first maximum must win");
        let r = result_with_visits(vec![5, 5]);
        assert_eq!(r.best_action(), 0);
    }

    #[test]
    fn best_action_all_zero_visits_uses_priors() {
        let r = SearchResult {
            probs: vec![0.1, 0.2, 0.6, 0.1],
            visits: vec![0, 0, 0, 0],
            value: 0.0,
            stats: SearchStats::default(),
        };
        assert_eq!(r.best_action(), 2, "prior argmax when nothing visited");
    }

    #[test]
    fn best_action_all_zero_everything_is_zero() {
        let r = SearchResult {
            probs: vec![0.0; 3],
            visits: vec![0; 3],
            value: 0.0,
            stats: SearchStats::default(),
        };
        assert_eq!(r.best_action(), 0, "fully-empty result defaults to 0");
    }

    #[test]
    fn sample_action_zero_visits_is_defined() {
        let r = SearchResult {
            probs: vec![0.0, 1.0],
            visits: vec![0, 0],
            value: 0.0,
            stats: SearchStats::default(),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for t in [0.0f32, 0.5, 1.0, 4.0] {
            assert_eq!(r.sample_action(t, &mut rng), 1, "temperature {t}");
        }
    }

    #[test]
    fn tiny_temperature_matches_argmax_without_overflow() {
        // Large counts + temperature just above the argmax cutoff: the
        // naive v^(1/t) overflows every weight to inf and samples
        // garbage; max-normalized weights stay finite and sharp.
        let r = result_with_visits(vec![100_000, 10, 1]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..50 {
            assert_eq!(r.sample_action(1.5e-3, &mut rng), 0);
        }
    }

    #[test]
    fn stats_amortized_latency() {
        let s = SearchStats {
            playouts: 1600,
            move_ns: 1_600_000,
            ..Default::default()
        };
        assert_eq!(s.amortized_iteration_ns(), 1000.0);
        assert_eq!(SearchStats::default().amortized_iteration_ns(), 0.0);
    }

    #[test]
    fn stats_in_tree_fraction() {
        let s = SearchStats {
            select_ns: 60,
            backup_ns: 25,
            eval_ns: 15,
            ..Default::default()
        };
        assert!((s.in_tree_fraction() - 0.85).abs() < 1e-9);
    }
}
