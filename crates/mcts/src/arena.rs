//! The unified node store behind every search tree: one struct-of-arrays
//! arena with contiguous child ranges, a block free-list, and an atomic
//! twin sharing the exact same layout.
//!
//! # Layout
//!
//! A node is a row across parallel columns — there is no `Node` struct on
//! the hot path and no per-node heap allocation anywhere:
//!
//! ```text
//!  id →        0     1     2     3     4     5     6   …
//!  parent    [NIL ][ 0  ][ 0  ][ 0  ][ 2  ][ 2  ][ 2  ]
//!  action    [ 0  ][ a₀ ][ a₁ ][ a₂ ][ b₀ ][ b₁ ][ b₂ ]
//!  prior     [1.0 ][ .2 ][ .5 ][ .3 ][ .4 ][ .4 ][ .2 ]
//!  n,w,vl    [ …  ]  …                                    (statistics)
//!  first_child [1 ][NIL ][ 4  ][NIL ][NIL ][NIL ][NIL ]
//!  child_count [3 ][ 0  ][ 3  ][ 0  ][ 0  ][ 0  ][ 0  ]
//!  state     [Exp ][Unex][Exp ][Unex][Unex][Unex][Unex]
//! ```
//!
//! Children of one parent are **one contiguous block** (`first_child ..
//! first_child + child_count`), so "iterate the children" is a range loop
//! over dense columns — the cache-friendly property the paper's local-tree
//! scheme exploits (§3.1.2) — and a child set is identified by two `u32`s
//! instead of a `Vec<u32>`.
//!
//! # Free-list and recycling
//!
//! Blocks freed by re-rooting or pruning go on a size-bucketed free-list
//! (`free[len]` = start indices of free ranges of length `len`).
//! Allocation takes the smallest free range that fits and splits off the
//! remainder; only when no range fits does the arena grow. In steady
//! state (search → [`advance`](crate::tree::Tree::advance_root) → search
//! forever) every expansion is served from recycled slots and the arena
//! performs **zero heap allocations**. Adjacent free ranges are not
//! coalesced; fragments re-merge naturally when the tree is cleared
//! in place ([`NodeArena::clear`] keeps column capacity). At the
//! capacity bound this is a real trade-off: a request larger than every
//! individual free range triggers pruning even when the *total* free
//! space would suffice, so size the bound with headroom rather than at
//! the expected live-tree size.
//!
//! # In-place re-rooting
//!
//! Re-rooting keeps indices stable: the kept subtree is untouched, and the
//! discarded region is reclaimed by walking the tree **from the old root,
//! skipping the kept child's subtree** — each discarded node is visited
//! exactly once, so `advance(action)` is `O(discarded nodes)` and
//! allocation-free. The kept child's siblings share its block; the ranges
//! on either side of it are freed separately, which is why free ranges
//! (not just whole blocks) are the free-list currency.
//!
//! # Capacity bound and LRU recycling
//!
//! With [`MctsConfig::max_nodes`](crate::MctsConfig::max_nodes) (or the
//! byte-denominated
//! [`MctsConfig::arena_budget_bytes`](crate::MctsConfig::arena_budget_bytes))
//! set, the arena never exceeds the derived slot bound. When an expansion
//! cannot be served from the free-list or by growing, the owning tree
//! reclaims live slots and retries, so long-running serving processes
//! search under a fixed memory budget instead of growing without limit.
//! Two policies exist (see [`crate::config::EvictionPolicy`]):
//!
//! * **LRU (default):** an intrusive doubly-linked list is threaded
//!   through the slots (`lru_prev`/`lru_next` columns). Every node that
//!   owns a child block is on the list; selection *touches* each expanded
//!   node it descends through (moves it to the front), and expansion
//!   pushes the newly expanded node to the front. On exhaustion the tree
//!   walks from the tail — the **coldest** block owner — and evicts that
//!   node's whole subtree, detaching it back to an unexpanded node.
//! * **Deepest-fringe:** the pre-LRU policy — prune the deepest expanded
//!   node all of whose children are leaves.
//!
//! Either way the detach is **stats-preserving**: the victim keeps its
//! visit count `N` and value sum `W`, and records the visits that flowed
//! into the discarded subtree in the `n_detached` column so the tree-wide
//! visit identity (`N == Σ N(children) + n_detached + 1` for expanded
//! nodes) stays *exact* — see
//! [`Tree::check_invariants`](crate::tree::Tree::check_invariants).
//! Evicted victims may be re-expanded later.
//!
//! The atomic twin ([`AtomicColumns`]) is the same columns with
//! `AtomicU32`/`AtomicI64` cells (plus a `phase` byte replacing the state
//! enum) for the shared-tree scheme — one layout, two mutation
//! disciplines.

use games::Action;
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU8, Ordering};

/// Sentinel "no node" index.
pub const NIL: u32 = u32::MAX;

/// Expansion state of a node. `Copy`: the legal actions captured at claim
/// time live in the pre-allocated child block, not in the enum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeState {
    /// Never evaluated; children unknown.
    Unexpanded,
    /// Claimed by an in-flight evaluation. The child block already exists
    /// and holds the legal actions; priors arrive at expansion.
    Pending,
    /// Children created; selection may descend.
    Expanded,
    /// Game over at this node; the payload is the terminal value from the
    /// perspective of the player to move at this node.
    Terminal(f32),
    /// Slot is on the free-list (not part of the tree).
    Free,
}

/// Node accounting for a [`NodeArena`] (see
/// [`Tree::stats`](crate::tree::Tree::stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ArenaStats {
    /// Nodes currently part of the tree.
    pub live: usize,
    /// Slots on the free-list awaiting reuse.
    pub free: usize,
    /// Slots currently backing the columns (`live + free == high_water`).
    /// [`NodeArena::clear`] truncates this to 0 while keeping the
    /// columns' reserved capacity.
    pub high_water: usize,
}

/// Struct-of-arrays node store with contiguous child ranges and a block
/// free-list. Pure storage: tree semantics (selection, expansion, backup,
/// re-rooting) live in [`crate::tree::Tree`].
pub struct NodeArena {
    pub(crate) parent: Vec<u32>,
    pub(crate) action: Vec<Action>,
    pub(crate) prior: Vec<f32>,
    pub(crate) n: Vec<u32>,
    pub(crate) w: Vec<f64>,
    pub(crate) vl: Vec<u32>,
    pub(crate) state: Vec<NodeState>,
    pub(crate) first_child: Vec<u32>,
    pub(crate) child_count: Vec<u32>,
    /// Visits absorbed by subtrees that were detached from this node by
    /// eviction/pruning (plus one re-expansion self-visit per detach).
    /// Keeps the visit identity exact across stats-preserving detaches.
    pub(crate) n_detached: Vec<u32>,
    /// Intrusive LRU list: previous (warmer) neighbour, [`NIL`] when the
    /// node is the head or not on the list.
    pub(crate) lru_prev: Vec<u32>,
    /// Intrusive LRU list: next (colder) neighbour.
    pub(crate) lru_next: Vec<u32>,
    /// Warmest list member (most recently touched block owner).
    pub(crate) lru_head: u32,
    /// Coldest list member — the eviction scan starts here.
    pub(crate) lru_tail: u32,
    /// `free[len]` holds the start indices of free ranges of exactly
    /// `len` slots. `free[0]` is unused.
    free: Vec<Vec<u32>>,
    /// Total slots across all free ranges.
    free_slots: usize,
    /// Largest bucket that might be non-empty (allocation scan bound).
    largest_free: usize,
    /// Hard slot cap (`usize::MAX` when unbounded).
    cap: usize,
    /// Scratch for [`NodeArena::coalesce`], retained so defragmentation
    /// at the capacity bound stays allocation-free in steady state.
    coalesce_scratch: Vec<(u32, usize)>,
}

impl NodeArena {
    /// Empty arena. `hint` pre-reserves column capacity; `cap` is the
    /// hard bound on total slots (`None` ⇒ bounded only by the `u32`
    /// index space — the clamp below keeps indices from ever colliding
    /// with the [`NIL`] sentinel).
    pub fn new(hint: usize, cap: Option<usize>) -> Self {
        let cap = cap.unwrap_or(usize::MAX).min(NIL as usize);
        let hint = hint.min(cap).min(1 << 20);
        NodeArena {
            parent: Vec::with_capacity(hint),
            action: Vec::with_capacity(hint),
            prior: Vec::with_capacity(hint),
            n: Vec::with_capacity(hint),
            w: Vec::with_capacity(hint),
            vl: Vec::with_capacity(hint),
            state: Vec::with_capacity(hint),
            first_child: Vec::with_capacity(hint),
            child_count: Vec::with_capacity(hint),
            n_detached: Vec::with_capacity(hint),
            lru_prev: Vec::with_capacity(hint),
            lru_next: Vec::with_capacity(hint),
            lru_head: NIL,
            lru_tail: NIL,
            free: Vec::new(),
            free_slots: 0,
            largest_free: 0,
            cap,
            coalesce_scratch: Vec::new(),
        }
    }

    /// Total slots ever allocated (live + free).
    #[inline]
    pub fn high_water(&self) -> usize {
        self.parent.len()
    }

    /// Nodes currently part of the tree.
    #[inline]
    pub fn live(&self) -> usize {
        self.high_water() - self.free_slots
    }

    /// Node accounting snapshot.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            live: self.live(),
            free: self.free_slots,
            high_water: self.high_water(),
        }
    }

    /// The hard slot cap (`usize::MAX` when unbounded).
    #[inline]
    pub fn capacity_bound(&self) -> usize {
        self.cap
    }

    /// Replace the hard slot cap. Intended for recycled arenas that are
    /// about to be cleared for a new session; an arena already larger
    /// than the new cap keeps its memory but refuses further growth.
    pub fn set_bound(&mut self, cap: Option<usize>) {
        self.cap = cap.unwrap_or(usize::MAX).min(NIL as usize);
    }

    /// Allocate a contiguous block of `count` fresh slots (recycling free
    /// ranges first) and return the first index. `None` when the capacity
    /// bound would be exceeded — the caller should [`NodeArena::coalesce`]
    /// or prune and retry.
    pub fn alloc_block(&mut self, count: usize) -> Option<u32> {
        debug_assert!(count > 0, "empty block allocation");
        // Smallest-fit over the size buckets: exact fits first, then the
        // nearest larger range, splitting off the remainder.
        let upper = self.largest_free.min(self.free.len().saturating_sub(1));
        for len in count..=upper {
            if let Some(start) = self.free[len].pop() {
                if self.free[len].is_empty() && len == self.largest_free {
                    // Keep the scan bound tight once the top bucket drains.
                    while self.largest_free > 0 && self.free[self.largest_free].is_empty() {
                        self.largest_free -= 1;
                    }
                }
                self.free_slots -= count;
                if len > count {
                    // Put the tail of the range back (it stays counted in
                    // `free_slots` and keeps its `Free` state stamps).
                    self.push_free(start + count as u32, len - count);
                }
                self.reset_slots(start, count);
                return Some(start);
            }
        }
        // Grow. The columns stay index-aligned by construction.
        if self.high_water() + count > self.cap {
            return None;
        }
        let start = self.high_water() as u32;
        let new_len = self.high_water() + count;
        self.parent.resize(new_len, NIL);
        self.action.resize(new_len, 0);
        self.prior.resize(new_len, 0.0);
        self.n.resize(new_len, 0);
        self.w.resize(new_len, 0.0);
        self.vl.resize(new_len, 0);
        self.state.resize(new_len, NodeState::Unexpanded);
        self.first_child.resize(new_len, NIL);
        self.child_count.resize(new_len, 0);
        self.n_detached.resize(new_len, 0);
        self.lru_prev.resize(new_len, NIL);
        self.lru_next.resize(new_len, NIL);
        Some(start)
    }

    /// Return `count` slots starting at `start` to the free-list and mark
    /// them [`NodeState::Free`]. The non-state columns keep their bytes
    /// until reuse, so a reclaiming walk may still read child ranges of
    /// slots it has already freed.
    pub fn free_range(&mut self, start: u32, count: u32) {
        if count == 0 {
            return;
        }
        for s in &mut self.state[start as usize..(start + count) as usize] {
            *s = NodeState::Free;
        }
        self.free_slots += count as usize;
        self.push_free(start, count as usize);
    }

    fn push_free(&mut self, start: u32, len: usize) {
        if self.free.len() <= len {
            self.free.resize_with(len + 1, Vec::new);
        }
        self.free[len].push(start);
        self.largest_free = self.largest_free.max(len);
    }

    /// Merge adjacent free ranges into maximal ones and rebucket them.
    /// The free-list never coalesces on the hot path; this is the
    /// degraded-mode defragmentation step for a capacity-bounded arena
    /// whose fragments have all become too small for a request (cheaper
    /// and far less destructive than pruning live subtrees). `O(free
    /// ranges · log)`; the sort scratch is retained across calls so a
    /// warmed steady-state session defragments without allocating.
    pub fn coalesce(&mut self) {
        let mut ranges = std::mem::take(&mut self.coalesce_scratch);
        ranges.clear();
        for (len, bucket) in self.free.iter_mut().enumerate() {
            ranges.extend(bucket.drain(..).map(|start| (start, len)));
        }
        self.largest_free = 0;
        ranges.sort_unstable_by_key(|&(start, _)| start);
        let mut merged: Option<(u32, usize)> = None;
        for &(start, len) in &ranges {
            match &mut merged {
                Some((mstart, mlen)) if *mstart as usize + *mlen == start as usize => {
                    *mlen += len;
                }
                _ => {
                    if let Some((mstart, mlen)) = merged.take() {
                        self.push_free(mstart, mlen);
                    }
                    merged = Some((start, len));
                }
            }
        }
        if let Some((mstart, mlen)) = merged {
            self.push_free(mstart, mlen);
        }
        self.coalesce_scratch = ranges;
    }

    /// Drop every node but keep all column and bucket capacity, so
    /// refilling the arena to its previous size performs no heap
    /// allocation. Used by in-place tree reset between games.
    pub fn clear(&mut self) {
        self.parent.clear();
        self.action.clear();
        self.prior.clear();
        self.n.clear();
        self.w.clear();
        self.vl.clear();
        self.state.clear();
        self.first_child.clear();
        self.child_count.clear();
        self.n_detached.clear();
        self.lru_prev.clear();
        self.lru_next.clear();
        self.lru_head = NIL;
        self.lru_tail = NIL;
        for bucket in &mut self.free {
            bucket.clear();
        }
        self.free_slots = 0;
        self.largest_free = 0;
    }

    /// Reset recycled slots to pristine node state.
    fn reset_slots(&mut self, start: u32, count: usize) {
        let (lo, hi) = (start as usize, start as usize + count);
        self.parent[lo..hi].fill(NIL);
        self.action[lo..hi].fill(0);
        self.prior[lo..hi].fill(0.0);
        self.n[lo..hi].fill(0);
        self.w[lo..hi].fill(0.0);
        self.vl[lo..hi].fill(0);
        self.state[lo..hi].fill(NodeState::Unexpanded);
        self.first_child[lo..hi].fill(NIL);
        self.child_count[lo..hi].fill(0);
        self.n_detached[lo..hi].fill(0);
        self.lru_prev[lo..hi].fill(NIL);
        self.lru_next[lo..hi].fill(NIL);
    }

    // -- Intrusive LRU list -------------------------------------------------
    //
    // Membership is decided by the owning tree: a node is on the list
    // exactly while it owns a child block (Pending or Expanded). The arena
    // only provides the link surgery; it never walks the tree.

    /// Whether `id` is currently linked into the LRU list.
    #[inline]
    pub(crate) fn lru_contains(&self, id: u32) -> bool {
        self.lru_prev[id as usize] != NIL
            || self.lru_next[id as usize] != NIL
            || self.lru_head == id
    }

    /// Link `id` at the head (warmest end) of the LRU list. The caller
    /// guarantees `id` is not already on the list.
    #[inline]
    pub(crate) fn lru_push_front(&mut self, id: u32) {
        debug_assert!(!self.lru_contains(id), "node {id} already on the LRU list");
        self.lru_next[id as usize] = self.lru_head;
        self.lru_prev[id as usize] = NIL;
        if self.lru_head != NIL {
            self.lru_prev[self.lru_head as usize] = id;
        } else {
            self.lru_tail = id;
        }
        self.lru_head = id;
    }

    /// Remove `id` from the LRU list. Idempotent: a node that is not on
    /// the list is left untouched.
    #[inline]
    pub(crate) fn lru_unlink(&mut self, id: u32) {
        if !self.lru_contains(id) {
            return;
        }
        let (p, nx) = (self.lru_prev[id as usize], self.lru_next[id as usize]);
        if p != NIL {
            self.lru_next[p as usize] = nx;
        } else {
            self.lru_head = nx;
        }
        if nx != NIL {
            self.lru_prev[nx as usize] = p;
        } else {
            self.lru_tail = p;
        }
        self.lru_prev[id as usize] = NIL;
        self.lru_next[id as usize] = NIL;
    }

    /// Move `id` to the head of the LRU list (touch-on-visit). No-op for
    /// a node that is already warmest.
    #[inline]
    pub(crate) fn lru_touch(&mut self, id: u32) {
        if self.lru_head == id {
            return;
        }
        self.lru_unlink(id);
        self.lru_push_front(id);
    }

    // -- Byte accounting ----------------------------------------------------

    /// Bytes one arena slot occupies across all columns. A compile-time
    /// constant so the serve layer can convert slot budgets to byte
    /// budgets (and back) without holding an arena.
    pub const fn slot_bytes() -> usize {
        use std::mem::size_of;
        size_of::<u32>()        // parent
            + size_of::<Action>()
            + size_of::<f32>()  // prior
            + size_of::<u32>()  // n
            + size_of::<f64>()  // w
            + size_of::<u32>()  // vl
            + size_of::<NodeState>()
            + size_of::<u32>()  // first_child
            + size_of::<u32>()  // child_count
            + size_of::<u32>()  // n_detached
            + size_of::<u32>()  // lru_prev
            + size_of::<u32>() // lru_next
    }

    /// Bytes currently backing node storage (`high_water ×`
    /// [`NodeArena::slot_bytes`]; reserved-but-unused column capacity is
    /// not counted).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.high_water() * Self::slot_bytes()
    }
}

// ---------------------------------------------------------------------------
// Atomic twin: the same columns, interiorly mutable.
// ---------------------------------------------------------------------------

/// Node lifecycle phases of the atomic columns (the `phase` byte is the
/// lock-free counterpart of [`NodeState`]; terminal values live in
/// `terminal_bits`).
pub(crate) mod phase {
    pub const UNEXPANDED: u8 = 0;
    pub const PENDING: u8 = 1;
    pub const EXPANDED: u8 = 2;
    pub const TERMINAL: u8 = 3;
}

/// Fixed-point scale for the atomically-accumulated value sum `W`
/// (2^20: exact for small sums, no drift).
pub(crate) const W_SCALE: f64 = 1_048_576.0;

/// The shared-tree arena: [`NodeArena`]'s columns with atomic cells so the
/// store can be shared immutably across rollout threads. Same child-range
/// scheme (`first_child`/`child_count` → one contiguous block), same
/// column-per-field layout; expansion bump-allocates blocks with a single
/// `fetch_add` and publishes them through a release store on the parent's
/// `phase`. Fixed capacity: one arena is sized for one move's expansion,
/// so shared-tree searches are memory-bounded by construction and need no
/// free-list.
pub struct AtomicColumns {
    pub(crate) parent: Box<[AtomicU32]>,
    pub(crate) action: Box<[AtomicU32]>,
    pub(crate) prior_bits: Box<[AtomicU32]>,
    /// Completed visits `N(s,a)`.
    pub(crate) n: Box<[AtomicU32]>,
    /// Value sum `W(s,a)` in fixed-point (units of 1/[`W_SCALE`]).
    pub(crate) w_fixed: Box<[AtomicI64]>,
    /// In-flight playouts (virtual-loss / unobserved count).
    pub(crate) vl: Box<[AtomicU32]>,
    pub(crate) first_child: Box<[AtomicU32]>,
    pub(crate) child_count: Box<[AtomicU32]>,
    pub(crate) phase: Box<[AtomicU8]>,
    pub(crate) terminal_bits: Box<[AtomicU32]>,
}

fn atomic_column<T>(cap: usize, f: impl Fn() -> T) -> Box<[T]> {
    let mut v = Vec::with_capacity(cap);
    v.resize_with(cap, f);
    v.into_boxed_slice()
}

impl AtomicColumns {
    /// Zeroed columns for a fixed `cap`-slot arena.
    pub fn new(cap: usize) -> Self {
        AtomicColumns {
            parent: atomic_column(cap, || AtomicU32::new(NIL)),
            action: atomic_column(cap, || AtomicU32::new(0)),
            prior_bits: atomic_column(cap, || AtomicU32::new(0)),
            n: atomic_column(cap, || AtomicU32::new(0)),
            w_fixed: atomic_column(cap, || AtomicI64::new(0)),
            vl: atomic_column(cap, || AtomicU32::new(0)),
            first_child: atomic_column(cap, || AtomicU32::new(NIL)),
            child_count: atomic_column(cap, || AtomicU32::new(0)),
            phase: atomic_column(cap, || AtomicU8::new(phase::UNEXPANDED)),
            terminal_bits: atomic_column(cap, || AtomicU32::new(0)),
        }
    }

    /// Arena capacity in slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.parent.len()
    }

    /// DNN prior `P(s,a)` of node `id`.
    #[inline]
    pub fn prior(&self, id: u32) -> f32 {
        f32::from_bits(self.prior_bits[id as usize].load(Ordering::Relaxed))
    }

    /// Value sum `W` of node `id`.
    #[inline]
    pub fn w(&self, id: u32) -> f64 {
        self.w_fixed[id as usize].load(Ordering::Relaxed) as f64 / W_SCALE
    }

    /// Visits of node `id` including in-flight playouts.
    #[inline]
    pub fn n_eff(&self, id: u32) -> u32 {
        self.n[id as usize].load(Ordering::Relaxed) + self.vl[id as usize].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_grows_and_recycles() {
        let mut a = NodeArena::new(4, None);
        let b0 = a.alloc_block(3).unwrap();
        let b1 = a.alloc_block(2).unwrap();
        assert_eq!((b0, b1), (0, 3));
        assert_eq!(a.live(), 5);
        a.free_range(b0, 3);
        assert_eq!(a.live(), 2);
        assert_eq!(a.stats().free, 3);
        // Exact fit reuses the freed range instead of growing.
        let b2 = a.alloc_block(3).unwrap();
        assert_eq!(b2, 0);
        assert_eq!(a.high_water(), 5);
        assert_eq!(a.state[0], NodeState::Unexpanded);
    }

    #[test]
    fn smaller_request_splits_free_range() {
        let mut a = NodeArena::new(8, None);
        let b = a.alloc_block(6).unwrap();
        a.free_range(b, 6);
        let c = a.alloc_block(4).unwrap();
        assert_eq!(c, 0, "front of the freed range");
        assert_eq!(a.stats().free, 2, "remainder stays free");
        let d = a.alloc_block(2).unwrap();
        assert_eq!(d, 4, "fragment served the follow-up");
        assert_eq!(a.high_water(), 6, "no growth needed");
    }

    #[test]
    fn coalesce_merges_adjacent_fragments() {
        let mut a = NodeArena::new(16, Some(12));
        let b0 = a.alloc_block(4).unwrap();
        let b1 = a.alloc_block(4).unwrap();
        let b2 = a.alloc_block(4).unwrap();
        // Free all three as separate ranges: no single bucket holds a
        // 12-slot range, and growth is blocked by the cap.
        a.free_range(b0, 4);
        a.free_range(b2, 4);
        a.free_range(b1, 4);
        assert!(a.alloc_block(12).is_none(), "fragmented: no 12-range yet");
        a.coalesce();
        assert_eq!(a.alloc_block(12), Some(0), "merged into one range");
        assert_eq!(a.stats().free, 0);
        assert_eq!(a.live(), 12);
    }

    #[test]
    fn capacity_bound_is_hard() {
        let mut a = NodeArena::new(4, Some(5));
        assert!(a.alloc_block(4).is_some());
        assert!(a.alloc_block(2).is_none(), "4 + 2 > cap 5");
        assert!(a.alloc_block(1).is_some());
        assert!(a.alloc_block(1).is_none());
        // Freeing makes room again.
        a.free_range(0, 4);
        assert!(a.alloc_block(2).is_some());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut a = NodeArena::new(2, None);
        a.alloc_block(100).unwrap();
        let cap_before = a.parent.capacity();
        a.clear();
        assert_eq!(a.high_water(), 0);
        assert_eq!(a.live(), 0);
        assert_eq!(a.parent.capacity(), cap_before);
        assert!(a.alloc_block(100).is_some());
    }

    #[test]
    fn free_marks_state() {
        let mut a = NodeArena::new(4, None);
        let b = a.alloc_block(2).unwrap();
        a.free_range(b, 2);
        assert_eq!(a.state[0], NodeState::Free);
        assert_eq!(a.state[1], NodeState::Free);
    }

    #[test]
    fn lru_list_links_touches_and_unlinks() {
        let mut a = NodeArena::new(8, None);
        a.alloc_block(4).unwrap();
        a.lru_push_front(0);
        a.lru_push_front(1);
        a.lru_push_front(2);
        assert_eq!((a.lru_head, a.lru_tail), (2, 0));
        a.lru_touch(0);
        assert_eq!((a.lru_head, a.lru_tail), (0, 1));
        assert_eq!(a.lru_next[0], 2);
        a.lru_unlink(2);
        a.lru_unlink(2); // idempotent on a node already off the list
        assert_eq!((a.lru_head, a.lru_tail), (0, 1));
        assert_eq!(a.lru_next[0], 1);
        assert_eq!(a.lru_prev[1], 0);
        a.lru_unlink(0);
        a.lru_unlink(1);
        assert_eq!((a.lru_head, a.lru_tail), (NIL, NIL));
    }

    #[test]
    fn recycled_slots_leave_the_lru_columns_clean() {
        let mut a = NodeArena::new(8, None);
        let b = a.alloc_block(2).unwrap();
        a.lru_push_front(b);
        a.lru_unlink(b);
        a.free_range(b, 2);
        let c = a.alloc_block(2).unwrap();
        assert_eq!(c, b, "recycled the freed range");
        assert_eq!(a.lru_prev[c as usize], NIL);
        assert_eq!(a.lru_next[c as usize], NIL);
        assert_eq!(a.n_detached[c as usize], 0);
    }

    #[test]
    fn byte_accounting_tracks_high_water() {
        let mut a = NodeArena::new(4, None);
        assert_eq!(a.bytes(), 0);
        a.alloc_block(10).unwrap();
        assert_eq!(a.bytes(), 10 * NodeArena::slot_bytes());
        // Freeing does not shrink storage; clearing does.
        a.free_range(0, 10);
        assert_eq!(a.bytes(), 10 * NodeArena::slot_bytes());
        a.clear();
        assert_eq!(a.bytes(), 0);
    }

    #[test]
    fn atomic_columns_round_trip() {
        let c = AtomicColumns::new(8);
        assert_eq!(c.capacity(), 8);
        c.prior_bits[3].store(0.25f32.to_bits(), Ordering::Relaxed);
        assert_eq!(c.prior(3), 0.25);
        c.w_fixed[3].store((1.5 * W_SCALE) as i64, Ordering::Relaxed);
        assert!((c.w(3) - 1.5).abs() < 1e-9);
        c.n[3].store(4, Ordering::Relaxed);
        c.vl[3].store(2, Ordering::Relaxed);
        assert_eq!(c.n_eff(3), 6);
    }
}
