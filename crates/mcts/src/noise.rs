//! Dirichlet root-exploration noise (the AlphaZero self-play mechanism).
//!
//! During self-play data collection, AlphaZero mixes Dirichlet noise into
//! the root priors — `P'(s,a) = (1−ε)·P(s,a) + ε·η_a`, `η ~ Dir(α)` — so
//! training games explore beyond the current policy. The paper's
//! benchmark (AlphaZero on Gomoku) inherits this; we implement it so the
//! training pipeline is faithful, with a from-scratch gamma sampler
//! (Marsaglia–Tsang) since no distribution crate is available offline.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide nonce so each move's root expansion draws fresh noise
/// even though search trees are rebuilt from the same config.
static NOISE_NONCE: AtomicU64 = AtomicU64::new(0);

/// Next per-tree noise nonce.
pub(crate) fn next_nonce() -> u64 {
    NOISE_NONCE.fetch_add(1, Ordering::Relaxed)
}

/// Root-noise hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RootNoise {
    /// Dirichlet concentration α (AlphaZero used 0.03 for Go, ~0.3 for
    /// chess-scale action spaces; Gomoku implementations commonly use 0.3).
    pub alpha: f32,
    /// Mixing weight ε of the noise against the network prior.
    pub epsilon: f32,
    /// Seed for the per-move noise draw (deterministic searches).
    pub seed: u64,
}

impl RootNoise {
    /// The common AlphaZero-Gomoku setting.
    pub fn alphazero(seed: u64) -> Self {
        RootNoise {
            alpha: 0.3,
            epsilon: 0.25,
            seed,
        }
    }
}

/// Sample `Gamma(shape, 1)` via Marsaglia–Tsang (2000). For `shape < 1`
/// uses the boosting identity `Gamma(a) = Gamma(a+1) · U^{1/a}`.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f32) -> f32 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        let boost = sample_gamma(rng, shape + 1.0);
        let u: f32 = rng.gen_range(f32::EPSILON..1.0);
        return boost * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // One standard normal via Box-Muller.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f32 = rng.gen_range(f32::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v3 + d * v3.ln() {
            return d * v3;
        }
    }
}

/// Draw a `Dir(alpha, …, alpha)` sample of dimension `k`.
pub fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f32, k: usize) -> Vec<f32> {
    assert!(k > 0, "empty dirichlet");
    let mut draws: Vec<f32> = (0..k).map(|_| sample_gamma(rng, alpha)).collect();
    let sum: f32 = draws.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        // Degenerate draw (can happen for tiny alpha in f32): uniform.
        return vec![1.0 / k as f32; k];
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

/// Mix Dirichlet noise into `priors` in place:
/// `p ← (1−ε)·p + ε·η`. `priors` must already be normalized.
pub fn mix_noise<R: Rng + ?Sized>(rng: &mut R, noise: &RootNoise, priors: &mut [f32]) {
    if priors.is_empty() || noise.epsilon <= 0.0 {
        return;
    }
    let eta = sample_dirichlet(rng, noise.alpha, priors.len());
    for (p, n) in priors.iter_mut().zip(eta) {
        *p = (1.0 - noise.epsilon) * *p + noise.epsilon * n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gamma_mean_matches_shape() {
        // E[Gamma(a,1)] = a.
        let mut r = rng(1);
        for shape in [0.3f32, 1.0, 2.5, 7.0] {
            let n = 20_000;
            let mean: f32 = (0..n).map(|_| sample_gamma(&mut r, shape)).sum::<f32>() / n as f32;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn gamma_is_positive() {
        let mut r = rng(2);
        for _ in 0..2_000 {
            assert!(sample_gamma(&mut r, 0.3) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_rejects_zero_shape() {
        let _ = sample_gamma(&mut rng(3), 0.0);
    }

    #[test]
    fn dirichlet_is_a_distribution() {
        let mut r = rng(4);
        for k in [1usize, 2, 9, 225] {
            let d = sample_dirichlet(&mut r, 0.3, k);
            assert_eq!(d.len(), k);
            assert!((d.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            assert!(d.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn small_alpha_concentrates_mass() {
        // Dir(0.03) samples are spiky; Dir(100) samples are near-uniform.
        let mut r = rng(5);
        let spiky = sample_dirichlet(&mut r, 0.03, 20);
        let flat = sample_dirichlet(&mut r, 100.0, 20);
        let max_spiky = spiky.iter().cloned().fold(0.0f32, f32::max);
        let max_flat = flat.iter().cloned().fold(0.0f32, f32::max);
        assert!(max_spiky > max_flat, "{max_spiky} vs {max_flat}");
        assert!(max_flat < 0.15);
    }

    #[test]
    fn mix_preserves_normalization() {
        let mut r = rng(6);
        let noise = RootNoise::alphazero(0);
        let mut p = vec![0.5f32, 0.25, 0.25];
        mix_noise(&mut r, &noise, &mut p);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn epsilon_zero_is_identity() {
        let mut r = rng(7);
        let noise = RootNoise {
            alpha: 0.3,
            epsilon: 0.0,
            seed: 0,
        };
        let mut p = vec![0.7f32, 0.3];
        mix_noise(&mut r, &noise, &mut p);
        assert_eq!(p, vec![0.7, 0.3]);
    }

    #[test]
    fn noise_actually_perturbs() {
        let mut r = rng(8);
        let noise = RootNoise::alphazero(0);
        let orig = vec![0.5f32; 2];
        let mut p = orig.clone();
        mix_noise(&mut r, &noise, &mut p);
        assert_ne!(p, orig);
    }
}
