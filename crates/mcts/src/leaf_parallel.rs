//! Leaf-parallel MCTS baseline (§2.2, Cazenave & Jouandeau).
//!
//! A single tree and a single selection path; at each selected leaf, all
//! `N` workers evaluate *the same leaf* in parallel and the results are
//! averaged. In classic MCTS those are `N` independent random rollouts; in
//! DNN-MCTS the evaluator is deterministic, so the replicas add no
//! information — which is precisely the paper's critique ("wastes
//! parallelism due to the lack of diverse evaluation coverage"). The
//! scheme is implemented faithfully so benchmarks can demonstrate that
//! tradeoff.

use crate::config::MctsConfig;
use crate::evaluator::Evaluator;
use crate::local::empty_result;
use crate::pool::WorkerPool;
use crate::result::{SearchResult, SearchScheme, SearchStats};
use crate::tree::{SelectOutcome, Tree};
use crossbeam::channel::unbounded;
use games::Game;
use std::sync::Arc;
use std::time::Instant;

/// Same-leaf replicated evaluation parallelism.
pub struct LeafParallelSearch {
    cfg: MctsConfig,
    evaluator: Arc<dyn Evaluator>,
    pool: WorkerPool,
}

impl LeafParallelSearch {
    /// Spawn `cfg.workers` evaluation threads.
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn Evaluator>) -> Self {
        cfg.validate();
        LeafParallelSearch {
            pool: WorkerPool::new(cfg.workers),
            cfg,
            evaluator,
        }
    }
}

impl<G: Game> SearchScheme<G> for LeafParallelSearch {
    fn search(&mut self, root: &G) -> SearchResult {
        if root.status().is_terminal() {
            return empty_result(root.action_space());
        }
        let move_start = Instant::now();
        let mut tree = Tree::new(self.cfg);
        let mut stats = SearchStats::default();
        let mut encode_buf = vec![0.0f32; root.encoded_len()];
        let n = self.cfg.workers;

        let mut done = 0usize;
        while done < self.cfg.playouts {
            let mut game = root.clone();
            let t0 = Instant::now();
            let (leaf, outcome) = tree.select(&mut game);
            stats.select_ns += t0.elapsed().as_nanos() as u64;
            match outcome {
                SelectOutcome::TerminalBackedUp => done += 1,
                SelectOutcome::NeedsEval => {
                    game.encode(&mut encode_buf);
                    // Fan the SAME state out to all N workers.
                    let (tx, rx) = unbounded();
                    let t1 = Instant::now();
                    for _ in 0..n {
                        let input = encode_buf.clone();
                        let eval = Arc::clone(&self.evaluator);
                        let tx = tx.clone();
                        self.pool.submit(move || {
                            let _ = tx.send(eval.evaluate(&input));
                        });
                    }
                    drop(tx);
                    let mut priors: Option<Vec<f32>> = None;
                    let mut value_sum = 0.0f64;
                    let mut count = 0usize;
                    while let Ok((p, v)) = rx.recv() {
                        if priors.is_none() {
                            priors = Some(p);
                        }
                        value_sum += v as f64;
                        count += 1;
                    }
                    stats.eval_ns += t1.elapsed().as_nanos() as u64;
                    let value = (value_sum / count as f64) as f32;
                    let t2 = Instant::now();
                    tree.expand_and_backup(leaf, &priors.expect("worker results"), value);
                    stats.backup_ns += t2.elapsed().as_nanos() as u64;
                    done += 1;
                }
                SelectOutcome::Busy => unreachable!("leaf-parallel is single-path"),
            }
        }

        let (visits, probs, value) = tree.action_prior(root.action_space());
        stats.playouts = done as u64;
        stats.move_ns = move_start.elapsed().as_nanos() as u64;
        stats.nodes = tree.len() as u64;
        SearchResult {
            probs,
            visits,
            value,
            stats,
        }
    }

    fn name(&self) -> &'static str {
        "leaf-parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;
    use crate::serial::SerialSearch;
    use games::tictactoe::TicTacToe;
    use games::Game;

    fn cfg(playouts: usize, workers: usize) -> MctsConfig {
        MctsConfig {
            playouts,
            workers,
            ..Default::default()
        }
    }

    #[test]
    fn playout_budget_counts_unique_leaves() {
        let mut s = LeafParallelSearch::new(
            cfg(50, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 50);
        assert_eq!(r.visits.iter().sum::<u32>(), 49);
    }

    #[test]
    fn identical_to_serial_with_deterministic_evaluator() {
        // With a deterministic DNN, averaging N replicas changes nothing:
        // leaf-parallel must produce exactly the serial visit counts.
        let g = TicTacToe::new();
        let eval = Arc::new(UniformEvaluator::for_game(&g));
        let mut leaf = LeafParallelSearch::new(cfg(80, 4), Arc::clone(&eval) as Arc<_>);
        let mut serial = SerialSearch::new(cfg(80, 1), eval);
        let rl = SearchScheme::<TicTacToe>::search(&mut leaf, &g);
        let rs = SearchScheme::<TicTacToe>::search(&mut serial, &g);
        assert_eq!(rl.visits, rs.visits, "wasted parallelism: same search");
    }

    #[test]
    fn finds_immediate_win() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = LeafParallelSearch::new(
            cfg(300, 2),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2);
    }

    #[test]
    fn terminal_root_returns_empty() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4, 2] {
            g.apply(a);
        }
        let mut s = LeafParallelSearch::new(
            cfg(10, 2),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.visits.iter().sum::<u32>(), 0);
    }
}
