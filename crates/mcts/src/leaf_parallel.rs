//! Leaf-parallel MCTS baseline (§2.2, Cazenave & Jouandeau).
//!
//! A single tree and a single selection path; at each selected leaf, all
//! `N` workers evaluate *the same leaf* in parallel and the results are
//! averaged. In classic MCTS those are `N` independent random rollouts;
//! in DNN-MCTS the evaluator is deterministic, so the replicas add no
//! information — which is precisely the paper's critique ("wastes
//! parallelism due to the lack of diverse evaluation coverage"). The
//! scheme is implemented faithfully so benchmarks can demonstrate that
//! tradeoff.
//!
//! Under the batch-first API, a natively batching evaluator runs the
//! `N` replicas as one [`BatchEvaluator::evaluate_batch`] call with `N`
//! identical rows — the wasted work plainly visible as a batch full of
//! copies. Single-sample evaluators (`preferred_batch() == 1`) keep the
//! classic shape instead: `N` concurrent evaluations on a worker pool,
//! so the scheme's wall-clock profile as a baseline stays faithful.

use crate::budget::{Budget, RootSlot, RunGate, StepOutcome};
use crate::config::MctsConfig;
use crate::evaluator::{BatchEvaluator, EvalOutput};
use crate::pool::WorkerPool;
use crate::result::{SearchResult, SearchScheme, SearchStats};
use crate::tree::{SelectOutcome, Tree};
use crossbeam::channel::unbounded;
use games::Game;
use std::sync::Arc;
use std::time::Instant;

/// Resumable-run state of a leaf-parallel search.
struct LeafRun {
    tree: Tree,
    stats: SearchStats,
    gate: RunGate,
    action_space: usize,
}

/// Same-leaf replicated evaluation parallelism.
pub struct LeafParallelSearch {
    cfg: MctsConfig,
    evaluator: Arc<dyn BatchEvaluator>,
    /// Replica threads for single-sample evaluators; `None` when the
    /// evaluator batches natively (one call carries all replicas).
    pool: Option<WorkerPool>,
    encode_buf: Vec<f32>,
    replicas: Vec<EvalOutput>,
    root: RootSlot,
    run: Option<LeafRun>,
}

impl LeafParallelSearch {
    /// Create a leaf-parallel searcher replicating each evaluation
    /// `cfg.workers` times.
    pub fn new(cfg: MctsConfig, evaluator: Arc<dyn BatchEvaluator>) -> Self {
        cfg.validate();
        let pool = if evaluator.preferred_batch() == 1 && cfg.workers > 1 {
            Some(WorkerPool::new(cfg.workers))
        } else {
            None
        };
        LeafParallelSearch {
            cfg,
            evaluator,
            pool,
            encode_buf: Vec::new(),
            replicas: Vec::new(),
            root: RootSlot::new(),
            run: None,
        }
    }

    /// Evaluate the same encoded state `n` times into `replicas`.
    fn replicate(&self, encoded: &[f32], replicas: &mut [EvalOutput]) {
        match &self.pool {
            // Natively-batching backend: one call, one fused batch.
            None => {
                let inputs: Vec<&[f32]> = (0..replicas.len()).map(|_| encoded).collect();
                self.evaluator.evaluate_batch(&inputs, replicas);
            }
            // Single-sample backend: N concurrent evaluations, the
            // classic Cazenave & Jouandeau shape.
            Some(pool) => {
                let (tx, rx) = unbounded();
                for _ in 0..replicas.len() {
                    let input = encoded.to_vec();
                    let eval = Arc::clone(&self.evaluator);
                    let tx = tx.clone();
                    pool.submit(move || {
                        let _ = tx.send(eval.evaluate_one(&input));
                    });
                }
                drop(tx);
                for r in replicas.iter_mut() {
                    *r = rx.recv().expect("replica worker alive");
                }
            }
        }
    }
}

impl<G: Game> SearchScheme<G> for LeafParallelSearch {
    fn begin(&mut self, root: &G, budget: Budget) {
        SearchScheme::<G>::cancel(self);
        let run_cfg = budget.apply_to(&self.cfg);
        self.root.store(root);
        self.encode_buf.resize(root.encoded_len(), 0.0);
        self.replicas
            .resize(self.cfg.workers, EvalOutput::default());
        self.run = Some(LeafRun {
            tree: Tree::new(run_cfg),
            stats: SearchStats::default(),
            gate: RunGate::new(&self.cfg, &budget, root.status().is_terminal()),
            action_space: root.action_space(),
        });
    }

    fn step(&mut self, quota: usize) -> StepOutcome {
        let Some(mut run) = self.run.take() else {
            return StepOutcome::Done;
        };
        let step_start = Instant::now();
        let n = self.cfg.workers;
        let mut used = 0usize;
        while used < quota && !run.gate.exhausted() {
            let mut game = self.root.get::<G>().clone();
            let t0 = Instant::now();
            let (leaf, outcome) = run.tree.select(&mut game);
            run.stats.select_ns += t0.elapsed().as_nanos() as u64;
            match outcome {
                SelectOutcome::TerminalBackedUp => {}
                SelectOutcome::NeedsEval => {
                    game.encode(&mut self.encode_buf);
                    // Fan the SAME state out to all N replica slots.
                    let t1 = Instant::now();
                    let mut replicas = std::mem::take(&mut self.replicas);
                    self.replicate(&self.encode_buf, &mut replicas);
                    run.stats.eval_ns += t1.elapsed().as_nanos() as u64;
                    let value =
                        (replicas.iter().map(|o| o.value as f64).sum::<f64>() / n as f64) as f32;
                    let t2 = Instant::now();
                    run.tree.expand_and_backup(leaf, &replicas[0].priors, value);
                    run.stats.backup_ns += t2.elapsed().as_nanos() as u64;
                    self.replicas = replicas;
                }
                SelectOutcome::Busy => unreachable!("leaf-parallel is single-path"),
            }
            used += 1;
            run.gate.done += 1;
            run.stats.playouts += 1;
        }
        run.gate.note_step(step_start);
        let outcome = if run.gate.exhausted() {
            debug_assert_eq!(run.tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            run.tree.check_invariants();
            StepOutcome::Done
        } else {
            StepOutcome::Running
        };
        self.run = Some(run);
        outcome
    }

    fn partial_result(&self) -> SearchResult {
        let Some(run) = &self.run else {
            return SearchResult::default();
        };
        let (visits, probs, value) = run.tree.action_prior(run.action_space);
        let mut stats = run.stats;
        stats.move_ns = run.gate.active_ns;
        stats.seq = run.gate.seq();
        stats.nodes = run.tree.len() as u64;
        SearchResult {
            probs,
            visits,
            value,
            stats,
        }
    }

    fn cancel(&mut self) {
        if let Some(run) = self.run.take() {
            debug_assert_eq!(run.tree.outstanding_vl(), 0);
            #[cfg(feature = "invariants")]
            run.tree.check_invariants();
        }
    }

    fn name(&self) -> &'static str {
        "leaf-parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;
    use crate::serial::SerialSearch;
    use games::tictactoe::TicTacToe;
    use games::Game;

    fn cfg(playouts: usize, workers: usize) -> MctsConfig {
        MctsConfig {
            playouts,
            workers,
            ..Default::default()
        }
    }

    #[test]
    fn playout_budget_counts_unique_leaves() {
        let mut s = LeafParallelSearch::new(
            cfg(50, 4),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&TicTacToe::new());
        assert_eq!(r.stats.playouts, 50);
        assert_eq!(r.visits.iter().sum::<u32>(), 49);
    }

    #[test]
    fn identical_to_serial_with_deterministic_evaluator() {
        // With a deterministic DNN, averaging N replicas changes nothing:
        // leaf-parallel must produce exactly the serial visit counts.
        let g = TicTacToe::new();
        let eval = Arc::new(UniformEvaluator::for_game(&g));
        let mut leaf = LeafParallelSearch::new(cfg(80, 4), Arc::clone(&eval) as Arc<_>);
        let mut serial = SerialSearch::new(cfg(80, 1), eval);
        let rl = SearchScheme::<TicTacToe>::search(&mut leaf, &g);
        let rs = SearchScheme::<TicTacToe>::search(&mut serial, &g);
        assert_eq!(rl.visits, rs.visits, "wasted parallelism: same search");
    }

    #[test]
    fn replicas_form_one_network_batch() {
        use crate::evaluator::NnEvaluator;
        use nn::{NetConfig, PolicyValueNet};
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 8));
        let eval = Arc::new(NnEvaluator::new(net));
        let probe = Arc::clone(&eval);
        let mut s = LeafParallelSearch::new(cfg(30, 4), eval);
        let r = SearchScheme::<TicTacToe>::search(&mut s, &TicTacToe::new());
        assert_eq!(r.stats.playouts, 30);
        // One forward pass per *leaf*, not per replica.
        assert!(
            probe.forward_calls() <= 30,
            "replicas must share a batch: {} forwards",
            probe.forward_calls()
        );
    }

    #[test]
    fn single_sample_replicas_run_concurrently() {
        use crate::evaluator::DelayedEvaluator;
        use std::time::Duration;
        // 10 playouts × 4 replicas × 5 ms each = 200 ms if sequential;
        // the worker pool must overlap the replicas (~50 ms + slack).
        let eval = DelayedEvaluator::new(
            UniformEvaluator::for_game(&TicTacToe::new()),
            Duration::from_millis(5),
        );
        let mut s = LeafParallelSearch::new(cfg(10, 4), Arc::new(eval));
        let t0 = Instant::now();
        let r = SearchScheme::<TicTacToe>::search(&mut s, &TicTacToe::new());
        assert_eq!(r.stats.playouts, 10);
        assert!(
            t0.elapsed() < Duration::from_millis(150),
            "replicas ran sequentially: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn finds_immediate_win() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4] {
            g.apply(a);
        }
        let mut s = LeafParallelSearch::new(
            cfg(300, 2),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.best_action(), 2);
    }

    #[test]
    fn terminal_root_returns_empty() {
        let mut g = TicTacToe::new();
        for a in [0u16, 3, 1, 4, 2] {
            g.apply(a);
        }
        let mut s = LeafParallelSearch::new(
            cfg(10, 2),
            Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        );
        let r = s.search(&g);
        assert_eq!(r.visits.iter().sum::<u32>(), 0);
    }
}
