//! Node evaluators: the "DNN inference" half of the tree-based search.
//!
//! All search schemes are generic over [`Evaluator`], so the same search
//! code runs against a real network on the CPU ([`NnEvaluator`]), the
//! batched accelerator queue ([`AccelEvaluator`]), a uniform stub for
//! correctness tests ([`UniformEvaluator`]), or a latency-injecting wrapper
//! for performance experiments ([`DelayedEvaluator`]).

use accel::Device;
use games::Game;
use nn::PolicyValueNet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tensor::Tensor;

/// Evaluate an encoded state into (policy prior over the *full* action
/// space, value in `[-1, 1]` for the player to move).
///
/// Implementations must be thread-safe: the shared-tree scheme calls
/// `evaluate` concurrently from `N` worker threads.
pub trait Evaluator: Send + Sync {
    /// Length of the flattened input expected by [`Evaluator::evaluate`].
    fn input_len(&self) -> usize;

    /// Size of the returned prior vector.
    fn action_space(&self) -> usize;

    /// Evaluate one state. May block (e.g. while an accelerator batch
    /// assembles).
    fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32);
}

/// Direct single-sample CPU inference through a policy-value network.
pub struct NnEvaluator {
    net: Arc<PolicyValueNet>,
}

impl NnEvaluator {
    /// Wrap a network for direct CPU evaluation.
    pub fn new(net: Arc<PolicyValueNet>) -> Self {
        NnEvaluator { net }
    }

    /// Access the wrapped network.
    pub fn net(&self) -> &Arc<PolicyValueNet> {
        &self.net
    }
}

impl Evaluator for NnEvaluator {
    fn input_len(&self) -> usize {
        let c = self.net.config;
        c.in_c * c.h * c.w
    }

    fn action_space(&self) -> usize {
        self.net.config.actions
    }

    fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32) {
        let c = self.net.config;
        let x = Tensor::from_vec(input.to_vec(), &[1, c.in_c, c.h, c.w]);
        let (pi, v) = self.net.predict(&x);
        (pi.into_vec(), v.data()[0])
    }
}

/// Inference routed through the (simulated) accelerator's batching queue.
///
/// Each call submits one request and blocks on its completion; batching
/// happens inside [`accel::Device`], which is exactly how the paper's
/// worker threads interact with the GPU queue (§3.3).
pub struct AccelEvaluator {
    device: Arc<Device>,
}

impl AccelEvaluator {
    /// Wrap an accelerator device handle.
    pub fn new(device: Arc<Device>) -> Self {
        AccelEvaluator { device }
    }

    /// The underlying device (e.g. to retune its batch size).
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }
}

impl Evaluator for AccelEvaluator {
    fn input_len(&self) -> usize {
        self.device.input_len()
    }

    fn action_space(&self) -> usize {
        self.device.action_space()
    }

    fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32) {
        let resp = self.device.evaluate(input.to_vec());
        (resp.priors, resp.value)
    }
}

/// Uniform priors, zero value: turns DNN-MCTS into plain UCT. Used by
/// correctness tests where network quality is irrelevant.
pub struct UniformEvaluator {
    input_len: usize,
    actions: usize,
}

impl UniformEvaluator {
    /// Build with explicit dimensions.
    pub fn new(input_len: usize, actions: usize) -> Self {
        UniformEvaluator { input_len, actions }
    }

    /// Dimensions taken from a game state.
    pub fn for_game<G: Game>(g: &G) -> Self {
        UniformEvaluator {
            input_len: g.encoded_len(),
            actions: g.action_space(),
        }
    }
}

impl Evaluator for UniformEvaluator {
    fn input_len(&self) -> usize {
        self.input_len
    }

    fn action_space(&self) -> usize {
        self.actions
    }

    fn evaluate(&self, _input: &[f32]) -> (Vec<f32>, f32) {
        (vec![1.0 / self.actions as f32; self.actions], 0.0)
    }
}

/// Wraps another evaluator and sleeps for a fixed duration per call —
/// used to emulate a given `T_DNN` in performance experiments.
pub struct DelayedEvaluator<E: Evaluator> {
    inner: E,
    delay: Duration,
    calls: AtomicU64,
}

impl<E: Evaluator> DelayedEvaluator<E> {
    /// Add `delay` per evaluation on top of `inner`.
    pub fn new(inner: E, delay: Duration) -> Self {
        DelayedEvaluator {
            inner,
            delay,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of evaluations performed.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl<E: Evaluator> Evaluator for DelayedEvaluator<E> {
    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn action_space(&self) -> usize {
        self.inner.action_space()
    }

    fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.inner.evaluate(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::DeviceConfig;
    use games::tictactoe::TicTacToe;
    use nn::NetConfig;

    #[test]
    fn uniform_evaluator_shapes() {
        let e = UniformEvaluator::for_game(&TicTacToe::new());
        assert_eq!(e.action_space(), 9);
        assert_eq!(e.input_len(), 36);
        let (p, v) = e.evaluate(&[0.0; 36]);
        assert_eq!(p.len(), 9);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn nn_evaluator_matches_direct_forward() {
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 1));
        let e = NnEvaluator::new(Arc::clone(&net));
        let input: Vec<f32> = (0..36).map(|i| (i % 3) as f32).collect();
        let (p, v) = e.evaluate(&input);
        let x = Tensor::from_vec(input, &[1, 4, 3, 3]);
        let (pi, vv) = net.predict(&x);
        assert_eq!(p, pi.into_vec());
        assert_eq!(v, vv.data()[0]);
    }

    #[test]
    fn accel_evaluator_agrees_with_cpu_path() {
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 2));
        let cpu = NnEvaluator::new(Arc::clone(&net));
        let dev = Arc::new(Device::new(Arc::clone(&net), DeviceConfig::instant(2)));
        let acc = AccelEvaluator::new(dev);
        let input: Vec<f32> = (0..36).map(|i| (i % 5) as f32 * 0.2).collect();
        let (pa, va) = acc.evaluate(&input);
        let (pc, vc) = cpu.evaluate(&input);
        for (a, b) in pa.iter().zip(&pc) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!((va - vc).abs() < 1e-5);
    }

    #[test]
    fn delayed_evaluator_counts_and_delays() {
        let e = DelayedEvaluator::new(
            UniformEvaluator::new(4, 2),
            Duration::from_millis(5),
        );
        let t0 = std::time::Instant::now();
        let _ = e.evaluate(&[0.0; 4]);
        let _ = e.evaluate(&[0.0; 4]);
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(e.calls(), 2);
    }
}
