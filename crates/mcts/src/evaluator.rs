//! Node evaluators: the "DNN inference" half of the tree-based search.
//!
//! # The batch-first evaluation API
//!
//! The search↔inference boundary is where DNN-MCTS throughput is won or
//! lost (§3.3 of the paper), so the primary interface is batch-first:
//! [`BatchEvaluator::evaluate_batch`] maps `B` encoded states to `B`
//! [`EvalOutput`]s in one call. Backends that can amortize work across a
//! batch do so natively — [`NnEvaluator`] packs one `[B, C, H, W]` tensor
//! and runs a **single** forward pass, [`AccelEvaluator`] ships all `B`
//! requests to the accelerator queue from one thread and gathers the
//! completions without blocking a thread per request.
//!
//! The legacy single-sample [`Evaluator`] trait is still supported:
//! every `Evaluator` is a `BatchEvaluator` through a blanket adapter
//! that evaluates a batch as `B` sequential calls (`preferred_batch()
//! == 1`, so schemes won't try to assemble batches for it). Existing
//! custom evaluators keep working unmodified.
//!
//! For pumping *many* leaves through a backend from one thread, see
//! [`crate::client::EvalClient`] (submit/gather tickets); for coalescing
//! concurrent single-sample callers into shared batches, see
//! [`crate::coalesce::CoalescingEvaluator`].

use crate::error::EvalError;
use accel::Device;
use crossbeam::channel::bounded;
use games::Game;
use nn::PolicyValueNet;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tensor::{Tensor, Workspace};

/// One evaluation result: policy prior over the *full* action space and
/// a value in `[-1, 1]` for the player to move.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalOutput {
    /// Softmax policy over the full action space.
    pub priors: Vec<f32>,
    /// Value estimate for the player to move at the evaluated state.
    pub value: f32,
}

/// Batch-first evaluation interface — the primary boundary between the
/// search schemes and inference.
///
/// Implementations must be thread-safe: schemes call `evaluate_batch`
/// concurrently from worker threads.
pub trait BatchEvaluator: Send + Sync {
    /// Length of one flattened input sample.
    fn input_len(&self) -> usize;

    /// Size of the returned prior vectors.
    fn action_space(&self) -> usize;

    /// Evaluate `inputs` into `out` (same length, index-aligned). May
    /// block (e.g. while an accelerator batch assembles).
    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]);

    /// The batch size this backend digests best. `1` means batching
    /// buys nothing (schemes then fall back to single-sample dispatch);
    /// larger values invite schemes to assemble batches of about this
    /// size before calling [`BatchEvaluator::evaluate_batch`].
    fn preferred_batch(&self) -> usize {
        1
    }

    /// True when single-sample calls already coalesce into device-side
    /// batches behind this evaluator (e.g. an accelerator queue), so
    /// callers should *not* add another batching layer on top.
    fn coalesces_internally(&self) -> bool {
        false
    }

    /// Fallible variant of [`BatchEvaluator::evaluate_batch`].
    ///
    /// Backends that can fail (remote devices, chaos injectors) override
    /// this to report a typed [`EvalError`] instead of panicking; the
    /// serve layer's resilience wrapper retries transient failures and
    /// feeds the backend's circuit breaker. The default delegates to the
    /// infallible path and always succeeds, so existing implementations
    /// are unchanged and the fault-free path costs nothing extra.
    ///
    /// On `Err`, the contents of `out` are unspecified; callers must not
    /// consume them.
    fn try_evaluate_batch(
        &self,
        inputs: &[&[f32]],
        out: &mut [EvalOutput],
    ) -> Result<(), EvalError> {
        self.evaluate_batch(inputs, out);
        Ok(())
    }

    /// Convenience: evaluate one sample through the batch path.
    fn evaluate_one(&self, input: &[f32]) -> EvalOutput {
        let mut out = [EvalOutput::default()];
        self.evaluate_batch(&[input], &mut out);
        let [o] = out;
        o
    }

    /// Evaluate `inputs` into `out`, with `keys[i]` carrying the stable
    /// position hash ([`games::Game::hash`]) of `inputs[i]`. The default
    /// ignores the keys; caching layers ([`crate::cache::CachedEvaluator`])
    /// override this to serve hits without touching the inner backend.
    /// Callers that know their position hashes should prefer this entry
    /// point — the plain [`BatchEvaluator::evaluate_batch`] stays
    /// cache-transparent by construction.
    fn evaluate_batch_keyed(&self, keys: &[u64], inputs: &[&[f32]], out: &mut [EvalOutput]) {
        debug_assert_eq!(keys.len(), inputs.len());
        self.evaluate_batch(inputs, out);
    }

    /// Convenience: evaluate one keyed sample through the keyed batch
    /// path.
    fn evaluate_one_keyed(&self, key: u64, input: &[f32]) -> EvalOutput {
        let mut out = [EvalOutput::default()];
        self.evaluate_batch_keyed(&[key], &[input], &mut out);
        let [o] = out;
        o
    }
}

/// Legacy single-sample evaluation interface.
///
/// Kept for custom evaluators and tests: the blanket adapter below makes
/// every `Evaluator` usable wherever a [`BatchEvaluator`] is expected
/// (batches degrade to sequential single-sample calls).
pub trait Evaluator: Send + Sync {
    /// Length of the flattened input expected by [`Evaluator::evaluate`].
    fn input_len(&self) -> usize;

    /// Size of the returned prior vector.
    fn action_space(&self) -> usize;

    /// Evaluate one state. May block (e.g. while an accelerator batch
    /// assembles).
    fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32);
}

/// Blanket adapter: every legacy evaluator is a batch evaluator whose
/// batches run as sequential single-sample calls.
impl<E: Evaluator + ?Sized> BatchEvaluator for E {
    fn input_len(&self) -> usize {
        Evaluator::input_len(self)
    }

    fn action_space(&self) -> usize {
        Evaluator::action_space(self)
    }

    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        debug_assert_eq!(inputs.len(), out.len());
        for (x, o) in inputs.iter().zip(out.iter_mut()) {
            let (priors, value) = self.evaluate(x);
            *o = EvalOutput { priors, value };
        }
    }
}

/// Adapter lifting a boxed legacy evaluator into the batch API.
///
/// Needed only for `Arc<dyn Evaluator>` *trait objects* (Rust cannot
/// coerce `Arc<dyn Evaluator>` to `Arc<dyn BatchEvaluator>` even though
/// the blanket impl applies); concrete `Arc<E: Evaluator>` coerce
/// directly.
pub struct LegacyEvaluator(pub Arc<dyn Evaluator>);

impl BatchEvaluator for LegacyEvaluator {
    fn input_len(&self) -> usize {
        Evaluator::input_len(self.0.as_ref())
    }

    fn action_space(&self) -> usize {
        Evaluator::action_space(self.0.as_ref())
    }

    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        self.0.as_ref().evaluate_batch(inputs, out)
    }
}

/// Adapter exposing a [`BatchEvaluator`] through the legacy synchronous
/// interface, one sample per call (no cross-caller coalescing — see
/// [`crate::coalesce::CoalescingEvaluator`] for that).
pub struct SingleSample(pub Arc<dyn BatchEvaluator>);

impl Evaluator for SingleSample {
    fn input_len(&self) -> usize {
        self.0.input_len()
    }

    fn action_space(&self) -> usize {
        self.0.action_space()
    }

    fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32) {
        let o = self.0.evaluate_one(input);
        (o.priors, o.value)
    }
}

/// Batched CPU inference through a policy-value network: one forward
/// pass per batch, regardless of batch size.
///
/// Construction snapshots a conv+BN-**folded** copy of the network for
/// inference (see `nn::fuse`) and every `evaluate_batch` runs on the
/// calling thread's persistent [`Workspace`], so steady-state evaluation
/// performs **zero heap allocations**: the input pack buffer, every
/// intermediate activation, the policy/value staging vectors and (when the
/// caller reuses its `EvalOutput` buffer) the prior vectors all recycle
/// their capacity.
pub struct NnEvaluator {
    net: Arc<PolicyValueNet>,
    /// Folded inference snapshot of `net` (identical function in eval
    /// mode, fewer passes). `None` when the net has no batch norms —
    /// folding would be a pointless deep copy of the weights.
    infer: Option<PolicyValueNet>,
    /// Int8 snapshot (folded, then per-channel quantized); present only
    /// when constructed with [`Precision::Int8`] and the net's layers are
    /// all representable on the int8 path.
    quant: Option<nn::quant::QuantPolicyValueNet>,
    batch_hint: usize,
    forward_calls: AtomicU64,
}

/// Numeric precision of the inference snapshot an [`NnEvaluator`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Folded f32 snapshot — exact eval-mode function.
    #[default]
    F32,
    /// Folded + per-output-channel int8 weights on the widening-dot GEMM
    /// (see `tensor::quant`): ~2× forward throughput, argmax-stable
    /// policies, values within quantization tolerance. Falls back to F32
    /// when the net contains unsupported layer kinds.
    Int8,
}

/// Per-thread scratch shared by all [`NnEvaluator`]s on a thread: the
/// flattened input batch, the forward workspace, and policy/value staging.
struct EvalScratch {
    ws: Workspace,
    flat: Vec<f32>,
    policy: Vec<f32>,
    values: Vec<f32>,
}

thread_local! {
    static EVAL_SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch {
        ws: Workspace::new(),
        flat: Vec::new(),
        policy: Vec::new(),
        values: Vec::new(),
    });
}

/// Default batch-assembly hint for CPU network inference.
pub const DEFAULT_NN_BATCH: usize = 8;

impl NnEvaluator {
    /// Wrap a network for batched CPU evaluation with the default batch
    /// hint.
    pub fn new(net: Arc<PolicyValueNet>) -> Self {
        Self::with_batch_hint(net, DEFAULT_NN_BATCH)
    }

    /// Wrap a network, advertising `hint` as the preferred batch size.
    /// If the network contains batch norms they are folded into their
    /// convolutions once, here, so every later forward pass skips them.
    pub fn with_batch_hint(net: Arc<PolicyValueNet>, hint: usize) -> Self {
        Self::with_precision(net, hint, Precision::F32)
    }

    /// Wrap a network with an explicit inference precision. With
    /// [`Precision::Int8`] the constructor snapshots a folded, per-channel
    /// quantized copy once, here; if the net contains layers the int8 path
    /// cannot represent, it silently falls back to the f32 snapshot (check
    /// [`NnEvaluator::precision`] to see what was actually selected).
    pub fn with_precision(net: Arc<PolicyValueNet>, hint: usize, precision: Precision) -> Self {
        assert!(hint >= 1, "batch hint must be positive");
        let quant = match precision {
            Precision::Int8 => net.quantized_for_inference(),
            Precision::F32 => None,
        };
        // The f32 snapshot stays the fallback for nets the int8 path
        // rejects — and is skipped entirely once a quant snapshot exists.
        let infer =
            (quant.is_none() && net.has_foldable_norms()).then(|| net.folded_for_inference());
        NnEvaluator {
            net,
            infer,
            quant,
            batch_hint: hint,
            forward_calls: AtomicU64::new(0),
        }
    }

    /// Access the wrapped network.
    pub fn net(&self) -> &Arc<PolicyValueNet> {
        &self.net
    }

    /// The precision actually in effect (int8 requested on an unsupported
    /// net reports [`Precision::F32`]).
    pub fn precision(&self) -> Precision {
        if self.quant.is_some() {
            Precision::Int8
        } else {
            Precision::F32
        }
    }

    /// Number of network forward passes executed so far. With the batch
    /// path, this counts **one per batch**, not one per sample — the
    /// property the batch-first API exists to deliver.
    pub fn forward_calls(&self) -> u64 {
        self.forward_calls.load(Ordering::Relaxed)
    }
}

impl BatchEvaluator for NnEvaluator {
    fn input_len(&self) -> usize {
        let c = self.net.config;
        c.in_c * c.h * c.w
    }

    fn action_space(&self) -> usize {
        self.net.config.actions
    }

    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        debug_assert_eq!(inputs.len(), out.len());
        if inputs.is_empty() {
            return;
        }
        let c = self.net.config;
        let sample_len = c.in_c * c.h * c.w;
        let b = inputs.len();
        EVAL_SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            s.flat.clear();
            s.flat.reserve(b * sample_len);
            for x in inputs {
                assert_eq!(x.len(), sample_len, "input length mismatch");
                s.flat.extend_from_slice(x);
            }
            // Wrap the staging buffer without copying; recover it after.
            let x = Tensor::from_vec(std::mem::take(&mut s.flat), &[b, c.in_c, c.h, c.w]);
            if let Some(q) = &self.quant {
                q.predict_into(&x, &mut s.ws, &mut s.policy, &mut s.values);
            } else {
                self.infer.as_ref().unwrap_or(&self.net).predict_into(
                    &x,
                    &mut s.ws,
                    &mut s.policy,
                    &mut s.values,
                );
            }
            s.flat = x.into_vec();
            let a = c.actions;
            for (i, o) in out.iter_mut().enumerate() {
                o.priors.clear();
                o.priors.extend_from_slice(&s.policy[i * a..(i + 1) * a]);
                o.value = s.values[i];
            }
        });
        self.forward_calls.fetch_add(1, Ordering::Relaxed);
    }

    fn preferred_batch(&self) -> usize {
        self.batch_hint
    }
}

/// Inference routed through the accelerator's batching queue.
///
/// `evaluate_batch` submits every sample to the device queue from the
/// calling thread and then gathers the completions — at no point does it
/// park one thread per outstanding request, and the device is free to
/// merge the submissions with traffic from other clients (§3.3's shared
/// accelerator queue).
pub struct AccelEvaluator {
    device: Arc<Device>,
}

impl AccelEvaluator {
    /// Wrap an accelerator device handle.
    pub fn new(device: Arc<Device>) -> Self {
        AccelEvaluator { device }
    }

    /// The underlying device (e.g. to retune its batch size).
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Blocking single-sample evaluation (legacy-shaped convenience).
    pub fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32) {
        let resp = self.device.evaluate(input.to_vec());
        (resp.priors, resp.value)
    }
}

impl BatchEvaluator for AccelEvaluator {
    fn input_len(&self) -> usize {
        self.device.input_len()
    }

    fn action_space(&self) -> usize {
        self.device.action_space()
    }

    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        debug_assert_eq!(inputs.len(), out.len());
        if inputs.is_empty() {
            return;
        }
        // Submit everything, then gather: the queue sees the whole batch
        // at once, so it can execute it as one (or few) device batches.
        let (tx, rx) = bounded(inputs.len());
        for (i, x) in inputs.iter().enumerate() {
            self.device.submit_tagged(i as u64, x.to_vec(), &tx);
        }
        for _ in 0..inputs.len() {
            let t = rx.recv().expect("device streams alive");
            out[t.tag as usize] = EvalOutput {
                priors: t.response.priors,
                value: t.response.value,
            };
        }
    }

    fn preferred_batch(&self) -> usize {
        self.device.batch_size().max(1)
    }

    fn coalesces_internally(&self) -> bool {
        // The device queue already merges concurrent single-sample
        // submitters into hardware batches.
        true
    }

    fn evaluate_one(&self, input: &[f32]) -> EvalOutput {
        let resp = self.device.evaluate(input.to_vec());
        EvalOutput {
            priors: resp.priors,
            value: resp.value,
        }
    }
}

/// Uniform priors, zero value: turns DNN-MCTS into plain UCT. Used by
/// correctness tests where network quality is irrelevant.
pub struct UniformEvaluator {
    input_len: usize,
    actions: usize,
}

impl UniformEvaluator {
    /// Build with explicit dimensions.
    pub fn new(input_len: usize, actions: usize) -> Self {
        UniformEvaluator { input_len, actions }
    }

    /// Dimensions taken from a game state.
    pub fn for_game<G: Game>(g: &G) -> Self {
        UniformEvaluator {
            input_len: g.encoded_len(),
            actions: g.action_space(),
        }
    }
}

impl Evaluator for UniformEvaluator {
    fn input_len(&self) -> usize {
        self.input_len
    }

    fn action_space(&self) -> usize {
        self.actions
    }

    fn evaluate(&self, _input: &[f32]) -> (Vec<f32>, f32) {
        (vec![1.0 / self.actions as f32; self.actions], 0.0)
    }
}

/// Wraps another evaluator and sleeps for a fixed duration per call —
/// used to emulate a given `T_DNN` in performance experiments.
pub struct DelayedEvaluator<E: Evaluator> {
    inner: E,
    delay: Duration,
    calls: AtomicU64,
}

impl<E: Evaluator> DelayedEvaluator<E> {
    /// Add `delay` per evaluation on top of `inner`.
    pub fn new(inner: E, delay: Duration) -> Self {
        DelayedEvaluator {
            inner,
            delay,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of evaluations performed.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl<E: Evaluator> Evaluator for DelayedEvaluator<E> {
    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn action_space(&self) -> usize {
        self.inner.action_space()
    }

    fn evaluate(&self, input: &[f32]) -> (Vec<f32>, f32) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.inner.evaluate(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::DeviceConfig;
    use games::tictactoe::TicTacToe;
    use nn::NetConfig;

    #[test]
    fn uniform_evaluator_shapes() {
        let e = UniformEvaluator::for_game(&TicTacToe::new());
        assert_eq!(Evaluator::action_space(&e), 9);
        assert_eq!(Evaluator::input_len(&e), 36);
        let (p, v) = e.evaluate(&[0.0; 36]);
        assert_eq!(p.len(), 9);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn nn_evaluator_matches_direct_forward() {
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 1));
        let e = NnEvaluator::new(Arc::clone(&net));
        let input: Vec<f32> = (0..36).map(|i| (i % 3) as f32).collect();
        let o = e.evaluate_one(&input);
        let x = Tensor::from_vec(input, &[1, 4, 3, 3]);
        let (pi, vv) = net.predict(&x);
        assert_eq!(o.priors, pi.into_vec());
        assert_eq!(o.value, vv.data()[0]);
    }

    #[test]
    fn nn_evaluator_runs_one_forward_per_batch() {
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 2));
        let e = NnEvaluator::new(net);
        let inputs: Vec<Vec<f32>> = (0..6)
            .map(|i| (0..36).map(|j| ((i * 7 + j) % 5) as f32 / 5.0).collect())
            .collect();
        let refs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
        let mut out = vec![EvalOutput::default(); 6];
        e.evaluate_batch(&refs, &mut out);
        assert_eq!(e.forward_calls(), 1, "batch of 6 must be ONE forward");
        // And the batched rows must equal per-sample evaluation.
        for (x, o) in refs.iter().zip(&out) {
            let single = e.evaluate_one(x);
            for (a, b) in o.priors.iter().zip(&single.priors) {
                assert!((a - b).abs() < 1e-4);
            }
            assert!((o.value - single.value).abs() < 1e-4);
        }
        assert_eq!(e.forward_calls(), 1 + 6, "each evaluate_one adds one");
    }

    #[test]
    fn legacy_blanket_adapter_loops_singles() {
        let e = UniformEvaluator::new(4, 2);
        let a = [0.0f32; 4];
        let b = [1.0f32; 4];
        let mut out = vec![EvalOutput::default(); 2];
        BatchEvaluator::evaluate_batch(&e, &[&a, &b], &mut out);
        assert_eq!(out[0].priors, vec![0.5, 0.5]);
        assert_eq!(out[1].priors, vec![0.5, 0.5]);
        assert_eq!(BatchEvaluator::preferred_batch(&e), 1);
    }

    #[test]
    fn accel_evaluator_agrees_with_cpu_path() {
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 2));
        let cpu = NnEvaluator::new(Arc::clone(&net));
        let dev = Arc::new(Device::new(Arc::clone(&net), DeviceConfig::instant(2)));
        let acc = AccelEvaluator::new(dev);
        let input: Vec<f32> = (0..36).map(|i| (i % 5) as f32 * 0.2).collect();
        let (pa, va) = acc.evaluate(&input);
        let oc = cpu.evaluate_one(&input);
        for (a, b) in pa.iter().zip(&oc.priors) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!((va - oc.value).abs() < 1e-5);
    }

    #[test]
    fn accel_batch_submits_from_one_thread() {
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 5));
        let dev = Arc::new(Device::new(Arc::clone(&net), DeviceConfig::instant(4)));
        let acc = AccelEvaluator::new(Arc::clone(&dev));
        let cpu = NnEvaluator::new(net);
        let inputs: Vec<Vec<f32>> = (0..8)
            .map(|i| (0..36).map(|j| ((i * 11 + j) % 7) as f32 / 7.0).collect())
            .collect();
        let refs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
        let mut out = vec![EvalOutput::default(); 8];
        acc.evaluate_batch(&refs, &mut out);
        for (x, o) in refs.iter().zip(&out) {
            let c = cpu.evaluate_one(x);
            for (a, b) in o.priors.iter().zip(&c.priors) {
                assert!((a - b).abs() < 1e-4);
            }
            assert!((o.value - c.value).abs() < 1e-4);
        }
        // All 8 went through the queue at once: device batches must form.
        assert!(dev.stats().max_batch >= 2, "no batching happened");
    }

    #[test]
    fn delayed_evaluator_counts_and_delays() {
        let e = DelayedEvaluator::new(UniformEvaluator::new(4, 2), Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        let _ = e.evaluate(&[0.0; 4]);
        let _ = e.evaluate(&[0.0; 4]);
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(e.calls(), 2);
    }

    #[test]
    fn legacy_trait_object_adapter_works() {
        let legacy: Arc<dyn Evaluator> = Arc::new(UniformEvaluator::new(4, 2));
        let batch = LegacyEvaluator(legacy);
        let o = batch.evaluate_one(&[0.0; 4]);
        assert_eq!(o.priors, vec![0.5, 0.5]);
        assert_eq!(BatchEvaluator::action_space(&batch), 2);
        assert_eq!(BatchEvaluator::input_len(&batch), 4);
    }

    #[test]
    fn single_sample_adapter_roundtrips() {
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 3));
        let batch: Arc<dyn BatchEvaluator> = Arc::new(NnEvaluator::new(Arc::clone(&net)));
        let single = SingleSample(Arc::clone(&batch));
        let input: Vec<f32> = (0..36).map(|i| (i % 4) as f32 * 0.25).collect();
        let (p, v) = single.evaluate(&input);
        let o = batch.evaluate_one(&input);
        assert_eq!(p, o.priors);
        assert_eq!(v, o.value);
    }
}
