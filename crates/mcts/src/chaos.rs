//! Deterministic, seeded fault injection for chaos testing.
//!
//! [`ChaosEvaluator`] wraps any [`BatchEvaluator`] and injects faults —
//! panics, typed transient [`EvalError`]s, latency spikes, and
//! wrong-epoch (garbled-but-well-formed) outputs — with configured
//! probabilities. [`ChaosGame`] wraps any [`Game`] and injects panics
//! into `apply`, modelling a buggy environment implementation.
//!
//! Every decision is a pure function of `(seed, call index)` via a
//! splitmix64 hash, so a run with a fixed seed injects the *same* fault
//! sequence per call index on every execution — no global RNG state, no
//! wall clock. With all probabilities at zero the wrappers are exact
//! pass-throughs, so a fault-free chaos run is bit-identical to running
//! the inner backend directly.
//!
//! [`ChaosConfig::from_env`] reads `CHAOS_SEED`, `CHAOS_PANIC_P`,
//! `CHAOS_ERROR_P`, `CHAOS_LATENCY_P`, `CHAOS_LATENCY_MS` and
//! `CHAOS_STALE_P`, letting CI and demos turn the dials without code
//! changes.

use crate::error::EvalError;
use crate::evaluator::{BatchEvaluator, EvalOutput};
use games::{Action, Game, Player, Status};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fault-injection probabilities and determinism seed.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed mixed into every per-call fault decision.
    pub seed: u64,
    /// Probability that a call panics (plain `panic!`, as a buggy
    /// backend would).
    pub panic_p: f64,
    /// Probability that a call returns a transient [`EvalError`].
    pub error_p: f64,
    /// Probability that a call stalls for [`ChaosConfig::latency`]
    /// before proceeding normally.
    pub latency_p: f64,
    /// Stall duration for latency-spike faults.
    pub latency: Duration,
    /// Probability that a call succeeds but returns wrong-epoch output:
    /// well-formed (normalized priors, value in `[-1, 1]`) yet computed
    /// from a deterministic garble rather than the real backend.
    pub stale_p: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x5EED_CAFE,
            panic_p: 0.0,
            error_p: 0.0,
            latency_p: 0.0,
            latency: Duration::from_millis(2),
            stale_p: 0.0,
        }
    }
}

impl ChaosConfig {
    /// Build a config from `CHAOS_*` environment variables, with the
    /// defaults above for anything unset or unparsable.
    pub fn from_env() -> Self {
        fn num<T: std::str::FromStr>(key: &str, default: T) -> T {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let d = ChaosConfig::default();
        ChaosConfig {
            seed: num("CHAOS_SEED", d.seed),
            panic_p: num("CHAOS_PANIC_P", d.panic_p),
            error_p: num("CHAOS_ERROR_P", d.error_p),
            latency_p: num("CHAOS_LATENCY_P", d.latency_p),
            latency: Duration::from_millis(num("CHAOS_LATENCY_MS", d.latency.as_millis() as u64)),
            stale_p: num("CHAOS_STALE_P", d.stale_p),
        }
    }

    /// True when every fault probability is zero (pure pass-through).
    pub fn is_quiet(&self) -> bool {
        self.panic_p == 0.0 && self.error_p == 0.0 && self.latency_p == 0.0 && self.stale_p == 0.0
    }
}

/// splitmix64: a high-quality 64-bit mixer, used as a stateless
/// counter-mode RNG — `mix(seed ^ index)` is the index-th draw.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` for `(seed, index)`.
#[inline]
fn unit(seed: u64, index: u64) -> f64 {
    (splitmix64(seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407)) >> 11) as f64
        / (1u64 << 53) as f64
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Panic,
    Error,
    Latency,
    Stale,
}

impl ChaosConfig {
    /// The fault (if any) injected on call `index`. One cascaded draw:
    /// the per-call fault rate is the sum of the probabilities.
    fn roll(&self, index: u64) -> Fault {
        if self.is_quiet() {
            return Fault::None;
        }
        let r = unit(self.seed, index);
        let mut edge = self.panic_p;
        if r < edge {
            return Fault::Panic;
        }
        edge += self.error_p;
        if r < edge {
            return Fault::Error;
        }
        edge += self.latency_p;
        if r < edge {
            return Fault::Latency;
        }
        edge += self.stale_p;
        if r < edge {
            return Fault::Stale;
        }
        Fault::None
    }
}

/// Counters of faults a chaos wrapper has actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Total calls observed (fault decisions made).
    pub calls: u64,
    /// Injected panics.
    pub panics: u64,
    /// Injected typed errors.
    pub errors: u64,
    /// Injected latency stalls.
    pub delays: u64,
    /// Injected wrong-epoch outputs.
    pub stale: u64,
}

/// A [`BatchEvaluator`] that injects seeded faults around an inner
/// backend. See the module docs for the fault model.
pub struct ChaosEvaluator {
    inner: Arc<dyn BatchEvaluator>,
    cfg: ChaosConfig,
    calls: AtomicU64,
    panics: AtomicU64,
    errors: AtomicU64,
    delays: AtomicU64,
    stale: AtomicU64,
}

impl ChaosEvaluator {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: Arc<dyn BatchEvaluator>, cfg: ChaosConfig) -> Self {
        ChaosEvaluator {
            inner,
            cfg,
            calls: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        }
    }

    /// Faults injected so far.
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            calls: self.calls.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
        }
    }

    /// Deterministically garble `out` into well-formed but wrong
    /// results, as a backend serving a stale model epoch would.
    fn garble(&self, index: u64, out: &mut [EvalOutput]) {
        let a = self.inner.action_space();
        for (i, o) in out.iter_mut().enumerate() {
            o.priors.clear();
            let mut sum = 0.0f32;
            for j in 0..a {
                let w = (splitmix64(self.cfg.seed ^ index ^ ((i as u64) << 32) ^ j as u64) >> 40)
                    as f32
                    + 1.0;
                o.priors.push(w);
                sum += w;
            }
            for p in &mut o.priors {
                *p /= sum;
            }
            o.value = (unit(self.cfg.seed ^ 0xDEAD, index ^ i as u64) * 2.0 - 1.0) as f32;
        }
    }
}

impl BatchEvaluator for ChaosEvaluator {
    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn action_space(&self) -> usize {
        self.inner.action_space()
    }

    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        if let Err(e) = self.try_evaluate_batch(inputs, out) {
            // Infallible entry point: a typed fault becomes a panic, as
            // a fault-unaware caller would experience it.
            panic!("chaos: {e}");
        }
    }

    fn try_evaluate_batch(
        &self,
        inputs: &[&[f32]],
        out: &mut [EvalOutput],
    ) -> Result<(), EvalError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.cfg.roll(n) {
            Fault::Panic => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                panic!("chaos: injected evaluator panic (call {n})");
            }
            Fault::Error => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return Err(EvalError::transient(format!(
                    "chaos: injected evaluator error (call {n})"
                )));
            }
            Fault::Latency => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.cfg.latency);
            }
            Fault::Stale => {
                self.stale.fetch_add(1, Ordering::Relaxed);
                self.garble(n, out);
                return Ok(());
            }
            Fault::None => {}
        }
        self.inner.try_evaluate_batch(inputs, out)
    }

    fn preferred_batch(&self) -> usize {
        self.inner.preferred_batch()
    }

    fn coalesces_internally(&self) -> bool {
        self.inner.coalesces_internally()
    }
}

/// A [`Game`] wrapper that injects seeded panics into `apply`,
/// modelling a buggy environment implementation crashing mid-playout.
///
/// Clones share one fault counter, so a session's playouts draw from a
/// single deterministic schedule no matter how often the scheme clones
/// the state.
pub struct ChaosGame<G: Game> {
    inner: G,
    seed: u64,
    panic_p: f64,
    state: Arc<ChaosGameState>,
}

#[derive(Default)]
struct ChaosGameState {
    applies: AtomicU64,
    panics: AtomicU64,
}

impl<G: Game> ChaosGame<G> {
    /// Wrap `inner`; each `apply` panics with probability `panic_p`.
    pub fn new(inner: G, seed: u64, panic_p: f64) -> Self {
        ChaosGame {
            inner,
            seed,
            panic_p,
            state: Arc::new(ChaosGameState::default()),
        }
    }

    /// `apply` calls observed across all clones.
    pub fn applies(&self) -> u64 {
        self.state.applies.load(Ordering::Relaxed)
    }

    /// Panics injected across all clones.
    pub fn panics(&self) -> u64 {
        self.state.panics.load(Ordering::Relaxed)
    }
}

impl<G: Game> Clone for ChaosGame<G> {
    fn clone(&self) -> Self {
        ChaosGame {
            inner: self.inner.clone(),
            seed: self.seed,
            panic_p: self.panic_p,
            state: Arc::clone(&self.state),
        }
    }
}

impl<G: Game> Game for ChaosGame<G> {
    fn action_space(&self) -> usize {
        self.inner.action_space()
    }

    fn encoded_shape(&self) -> (usize, usize, usize) {
        self.inner.encoded_shape()
    }

    fn to_move(&self) -> Player {
        self.inner.to_move()
    }

    fn status(&self) -> Status {
        self.inner.status()
    }

    fn is_legal(&self, a: Action) -> bool {
        self.inner.is_legal(a)
    }

    fn legal_actions_into(&self, out: &mut Vec<Action>) {
        self.inner.legal_actions_into(out)
    }

    fn apply(&mut self, a: Action) {
        let n = self.state.applies.fetch_add(1, Ordering::Relaxed);
        if self.panic_p > 0.0 && unit(self.seed ^ 0x6A3E, n) < self.panic_p {
            self.state.panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected game panic in apply (call {n})");
        }
        self.inner.apply(a)
    }

    fn encode(&self, out: &mut [f32]) {
        self.inner.encode(out)
    }

    fn hash(&self) -> u64 {
        self.inner.hash()
    }

    fn move_count(&self) -> usize {
        self.inner.move_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::UniformEvaluator;
    use games::tictactoe::TicTacToe;

    fn uniform() -> Arc<dyn BatchEvaluator> {
        Arc::new(UniformEvaluator::new(4, 3))
    }

    #[test]
    fn quiet_chaos_is_a_pure_pass_through() {
        let chaos = ChaosEvaluator::new(uniform(), ChaosConfig::default());
        let input = [0.0f32; 4];
        let mut out = [EvalOutput::default()];
        for _ in 0..200 {
            chaos
                .try_evaluate_batch(&[&input], &mut out)
                .expect("quiet chaos never fails");
            assert_eq!(out[0].priors, vec![1.0 / 3.0; 3]);
        }
        let c = chaos.counters();
        assert_eq!((c.panics, c.errors, c.delays, c.stale), (0, 0, 0, 0));
    }

    #[test]
    fn fault_schedule_is_seed_deterministic() {
        let cfg = ChaosConfig {
            error_p: 0.3,
            ..Default::default()
        };
        let run = |cfg: &ChaosConfig| {
            let chaos = ChaosEvaluator::new(uniform(), cfg.clone());
            let input = [0.0f32; 4];
            let mut out = [EvalOutput::default()];
            (0..100)
                .map(|_| chaos.try_evaluate_batch(&[&input], &mut out).is_err())
                .collect::<Vec<_>>()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a, b, "same seed, same fault sequence");
        assert!(
            a.iter().any(|&e| e),
            "30% error rate must fire in 100 calls"
        );
        let other = run(&ChaosConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        });
        assert_ne!(a, other, "different seed, different schedule");
    }

    #[test]
    fn stale_outputs_are_well_formed() {
        let cfg = ChaosConfig {
            stale_p: 1.0,
            ..Default::default()
        };
        let chaos = ChaosEvaluator::new(uniform(), cfg);
        let input = [0.0f32; 4];
        let mut out = [EvalOutput::default(), EvalOutput::default()];
        chaos
            .try_evaluate_batch(&[&input, &input], &mut out)
            .unwrap();
        for o in &out {
            assert_eq!(o.priors.len(), 3);
            assert!((o.priors.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert!((-1.0..=1.0).contains(&o.value));
            assert_ne!(o.priors, vec![1.0 / 3.0; 3], "stale must differ");
        }
        assert_eq!(chaos.counters().stale, 1, "one stale fault per call");
    }

    #[test]
    fn chaos_game_panics_on_schedule_and_shares_state_across_clones() {
        let g = ChaosGame::new(TicTacToe::new(), 7, 1.0);
        let mut clone = g.clone();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| clone.apply(0)));
        assert!(r.is_err());
        assert_eq!(g.panics(), 1, "clone's panic visible on the original");

        let quiet = ChaosGame::new(TicTacToe::new(), 7, 0.0);
        let mut q = quiet.clone();
        q.apply(4);
        assert_eq!(q.status(), Status::Ongoing);
        assert_eq!(quiet.applies(), 1);
    }
}
