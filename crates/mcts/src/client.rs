//! [`EvalClient`]: a submit/gather handle that lets **one** thread keep
//! many leaf evaluations in flight.
//!
//! This is the executable form of Algorithm 3's FIFO communication
//! pipes, generalized over two backends:
//!
//! * **Threaded** — `N` inference worker threads serve batches assembled
//!   by the client (batch size follows
//!   [`BatchEvaluator::preferred_batch`]); used for CPU inference, where
//!   somebody has to burn the cores.
//! * **Device** — requests go straight into the [`accel::Device`] queue
//!   via its native async submit/poll interface; *zero* extra threads,
//!   the device's own streams do the batching.
//!
//! Either way, the owner thread calls [`EvalClient::submit`] with an
//! encoded state and a tag (typically the leaf node id), keeps doing
//! in-tree work, and drains finished evaluations with
//! [`EvalClient::try_gather`] / [`EvalClient::gather`].

use crate::evaluator::{BatchEvaluator, EvalOutput};
use accel::{Device, DeviceClient};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Handle for one in-flight evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Submission sequence number (unique per client).
    pub seq: u64,
    /// Caller-chosen tag (e.g. the leaf node id).
    pub tag: u64,
}

/// A finished evaluation returned by `try_gather`/`gather`.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The ticket returned by the matching [`EvalClient::submit`].
    pub ticket: Ticket,
    /// The evaluation result.
    pub output: EvalOutput,
}

type BatchMsg = Vec<(Ticket, Vec<f32>)>;

/// Internal completion message: a result, or notice that the worker's
/// `evaluate_batch` panicked for this ticket (surfaced as a panic in
/// the gathering thread instead of a silent hang).
enum Done {
    Ok(Completion),
    Poisoned(Ticket),
}

enum Backend {
    Threaded {
        pending: BatchMsg,
        max_batch: usize,
        batch_tx: Option<Sender<BatchMsg>>,
        done_rx: Receiver<Done>,
        busy_ns: Arc<AtomicU64>,
        busy_base: u64,
        handles: Vec<JoinHandle<()>>,
    },
    Device {
        client: DeviceClient,
        /// seq → (caller tag, submit time) for per-request latency.
        tags: HashMap<u64, (u64, Instant)>,
        latency_ns: u64,
    },
}

/// Submit/gather evaluation client (see module docs).
pub struct EvalClient {
    backend: Backend,
    next_seq: u64,
    in_flight: usize,
    capacity: usize,
}

impl EvalClient {
    /// CPU-threaded backend: spawn `workers` inference threads serving
    /// batches assembled by the client. With a legacy single-sample
    /// evaluator this degrades exactly to the paper's
    /// one-leaf-per-worker pipe (`preferred_batch() == 1`, in-flight
    /// bound `workers`).
    ///
    /// For batching evaluators the batch size is
    /// `min(preferred_batch, workers)` — the user's `N` stays in
    /// charge of parallelism — and the suggested in-flight bound is
    /// `2 × N`: **double buffering**, so one batch can be under
    /// evaluation while the master assembles the next and in-tree work
    /// overlaps inference. Outstanding leaves carry virtual loss, so
    /// the bound deliberately never exceeds twice the paper's `N`.
    pub fn threaded(eval: Arc<dyn BatchEvaluator>, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one inference worker");
        let max_batch = eval.preferred_batch().clamp(1, workers);
        let (batch_tx, batch_rx) = unbounded::<BatchMsg>();
        let (done_tx, done_rx) = unbounded::<Done>();
        let busy_ns = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx = batch_rx.clone();
                let tx = done_tx.clone();
                let eval = Arc::clone(&eval);
                let busy = Arc::clone(&busy_ns);
                std::thread::Builder::new()
                    .name(format!("eval-client-{i}"))
                    .spawn(move || {
                        while let Ok(batch) = rx.recv() {
                            let t0 = Instant::now();
                            // Contain backend panics: the worker stays
                            // alive and the gatherer re-panics, instead
                            // of gather() hanging on lost completions.
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let inputs: Vec<&[f32]> =
                                        batch.iter().map(|(_, x)| x.as_slice()).collect();
                                    let mut out = vec![EvalOutput::default(); batch.len()];
                                    eval.evaluate_batch(&inputs, &mut out);
                                    out
                                }));
                            busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            let msgs: Vec<Done> = match result {
                                Ok(out) => batch
                                    .into_iter()
                                    .zip(out)
                                    .map(|((ticket, _), output)| {
                                        Done::Ok(Completion { ticket, output })
                                    })
                                    .collect(),
                                Err(_) => batch
                                    .into_iter()
                                    .map(|(ticket, _)| Done::Poisoned(ticket))
                                    .collect(),
                            };
                            for msg in msgs {
                                // A closed done-channel means the client
                                // was dropped mid-search; just exit.
                                if tx.send(msg).is_err() {
                                    return;
                                }
                            }
                        }
                    })
                    .expect("spawn eval-client worker")
            })
            .collect();
        EvalClient {
            backend: Backend::Threaded {
                pending: Vec::new(),
                max_batch,
                batch_tx: Some(batch_tx),
                done_rx,
                busy_ns,
                busy_base: 0,
                handles,
            },
            next_seq: 0,
            in_flight: 0,
            capacity: if max_batch == 1 { workers } else { 2 * workers },
        }
    }

    /// Accelerator backend: requests feed the device queue directly
    /// (native async submit/poll); `max_in_flight` bounds the number of
    /// outstanding leaves (the paper's `N`).
    pub fn for_device(device: Arc<Device>, max_in_flight: usize) -> Self {
        assert!(max_in_flight >= 1, "need capacity for at least one leaf");
        EvalClient {
            backend: Backend::Device {
                client: device.client(),
                tags: HashMap::new(),
                latency_ns: 0,
            },
            next_seq: 0,
            in_flight: 0,
            capacity: max_in_flight,
        }
    }

    /// Suggested bound on concurrently outstanding submissions. Not
    /// enforced — schemes use it to decide when to gather.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Submissions not yet gathered (including still-pending ones).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Queue one evaluation; the result's [`Completion::ticket`] carries
    /// `tag` back. Auto-flushes whenever a full batch is pending.
    pub fn submit(&mut self, tag: u64, input: &[f32]) -> Ticket {
        let ticket = Ticket {
            seq: self.next_seq,
            tag,
        };
        self.next_seq += 1;
        self.in_flight += 1;
        match &mut self.backend {
            Backend::Threaded {
                pending, max_batch, ..
            } => {
                pending.push((ticket, input.to_vec()));
                if pending.len() >= *max_batch {
                    self.flush();
                }
            }
            Backend::Device { client, tags, .. } => {
                tags.insert(ticket.seq, (tag, Instant::now()));
                client.submit(ticket.seq, input.to_vec());
            }
        }
        ticket
    }

    /// Ship any partially-assembled batch to the backend now.
    pub fn flush(&mut self) {
        if let Backend::Threaded {
            pending, batch_tx, ..
        } = &mut self.backend
        {
            if !pending.is_empty() {
                let batch = std::mem::take(pending);
                batch_tx
                    .as_ref()
                    .expect("client open")
                    .send(batch)
                    .expect("eval workers alive");
            }
        }
        // Device backend: submissions already went straight to the queue.
    }

    /// Non-blocking: next finished evaluation, if any.
    pub fn try_gather(&mut self) -> Option<Completion> {
        let done = match &mut self.backend {
            Backend::Threaded { done_rx, .. } => done_rx.try_recv().ok().map(Self::unwrap_done),
            Backend::Device {
                client,
                tags,
                latency_ns,
            } => client
                .try_poll()
                .map(|t| Self::device_completion(tags, latency_ns, t)),
        };
        if done.is_some() {
            self.in_flight -= 1;
        }
        done
    }

    /// Block until the next evaluation finishes. Flushes pending work
    /// first so the wait can always make progress; panics if nothing is
    /// in flight (that wait could never end).
    pub fn gather(&mut self) -> Completion {
        assert!(self.in_flight > 0, "gather with nothing in flight");
        self.flush();
        self.in_flight -= 1;
        match &mut self.backend {
            Backend::Threaded { done_rx, .. } => {
                Self::unwrap_done(done_rx.recv().expect("eval workers alive"))
            }
            Backend::Device {
                client,
                tags,
                latency_ns,
            } => Self::device_completion(tags, latency_ns, client.poll()),
        }
    }

    /// Surface a worker-side panic in the gathering thread.
    fn unwrap_done(done: Done) -> Completion {
        match done {
            Done::Ok(c) => c,
            Done::Poisoned(t) => {
                panic!("evaluation worker panicked while serving ticket {t:?}")
            }
        }
    }

    /// Shared completion path for both device gather flavors.
    fn device_completion(
        tags: &mut HashMap<u64, (u64, Instant)>,
        latency_ns: &mut u64,
        t: accel::TaggedResponse,
    ) -> Completion {
        let (tag, submitted) = tags.remove(&t.tag).expect("tag recorded at submit");
        *latency_ns += submitted.elapsed().as_nanos() as u64;
        Completion {
            ticket: Ticket { seq: t.tag, tag },
            output: EvalOutput {
                priors: t.response.priors,
                value: t.response.value,
            },
        }
    }

    /// Drain every outstanding evaluation (flushes first).
    pub fn gather_all(&mut self) -> Vec<Completion> {
        let mut all = Vec::with_capacity(self.in_flight);
        while self.in_flight > 0 {
            all.push(self.gather());
        }
        all
    }

    /// Nanoseconds of evaluation time accumulated since the last
    /// [`EvalClient::reset_eval_ns`].
    ///
    /// Semantics follow what each route's *consumer* experiences (the
    /// same convention the pre-batch API had): the threaded backend
    /// reports worker busy time (pure inference); the device backend
    /// reports summed per-request submit→complete latency, which
    /// includes queue wait — exactly what a worker blocked on the
    /// device queue used to measure. Overlapping in-flight requests
    /// each count their full latency, so this can exceed wall-clock
    /// move time; compare eval fractions across routes with that in
    /// mind. Only **this** client's requests are counted — a device
    /// shared with other clients doesn't leak their time here.
    pub fn eval_ns(&self) -> u64 {
        match &self.backend {
            Backend::Threaded {
                busy_ns, busy_base, ..
            } => busy_ns.load(Ordering::Relaxed).saturating_sub(*busy_base),
            Backend::Device { latency_ns, .. } => *latency_ns,
        }
    }

    /// Zero the inference-time counter (call at search start).
    pub fn reset_eval_ns(&mut self) {
        match &mut self.backend {
            Backend::Threaded {
                busy_ns, busy_base, ..
            } => *busy_base = busy_ns.load(Ordering::Relaxed),
            Backend::Device { latency_ns, .. } => *latency_ns = 0,
        }
    }
}

impl Drop for EvalClient {
    fn drop(&mut self) {
        if let Backend::Threaded {
            batch_tx, handles, ..
        } = &mut self.backend
        {
            batch_tx.take(); // close the queue so workers exit
            for h in handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{NnEvaluator, UniformEvaluator};
    use accel::DeviceConfig;
    use nn::{NetConfig, PolicyValueNet};

    fn net() -> Arc<PolicyValueNet> {
        Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 9))
    }

    #[test]
    fn threaded_roundtrip_preserves_tags() {
        let mut c = EvalClient::threaded(Arc::new(UniformEvaluator::new(4, 3)), 2);
        let inputs = [[0.0f32; 4], [1.0; 4], [2.0; 4]];
        for (i, x) in inputs.iter().enumerate() {
            let t = c.submit(100 + i as u64, x);
            assert_eq!(t.tag, 100 + i as u64);
        }
        let all = c.gather_all();
        assert_eq!(all.len(), 3);
        let mut tags: Vec<u64> = all.iter().map(|d| d.ticket.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![100, 101, 102]);
        for d in &all {
            assert_eq!(d.output.priors.len(), 3);
        }
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn threaded_batches_reach_the_network_whole() {
        let n = net();
        let eval = Arc::new(NnEvaluator::with_batch_hint(Arc::clone(&n), 4));
        let forward_probe = Arc::clone(&eval);
        let mut c = EvalClient::threaded(eval, 4);
        assert_eq!(c.capacity(), 8, "double-buffered: 2x workers");
        let input = vec![0.3f32; 36];
        for i in 0..4 {
            c.submit(i, &input);
        }
        // 4 submissions at hint 4 → exactly one auto-flushed batch.
        let all = c.gather_all();
        assert_eq!(all.len(), 4);
        assert_eq!(forward_probe.forward_calls(), 1, "one forward for 4 leaves");
    }

    #[test]
    fn partial_batch_needs_flush_or_gather() {
        let n = net();
        let eval = Arc::new(NnEvaluator::with_batch_hint(n, 8));
        let mut c = EvalClient::threaded(eval, 8);
        let input = vec![0.1f32; 36];
        c.submit(0, &input);
        c.submit(1, &input);
        // Nothing gathered yet; gather() must flush the partial batch
        // rather than deadlock.
        let first = c.gather();
        assert!(first.ticket.tag < 2);
        let rest = c.gather_all();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn device_backend_uses_native_queue() {
        let n = net();
        let dev = Arc::new(accel::Device::new(Arc::clone(&n), DeviceConfig::instant(4)));
        let mut c = EvalClient::for_device(Arc::clone(&dev), 8);
        let cpu = NnEvaluator::new(n);
        let inputs: Vec<Vec<f32>> = (0..8)
            .map(|i| (0..36).map(|j| ((i * 5 + j) % 6) as f32 / 6.0).collect())
            .collect();
        for (i, x) in inputs.iter().enumerate() {
            c.submit(i as u64, x);
        }
        let mut all = c.gather_all();
        all.sort_by_key(|d| d.ticket.tag);
        for (x, d) in inputs.iter().zip(&all) {
            let o = cpu.evaluate_one(x);
            for (a, b) in d.output.priors.iter().zip(&o.priors) {
                assert!((a - b).abs() < 1e-5);
            }
        }
        assert!(dev.stats().max_batch >= 2, "device batching bypassed");
    }

    #[test]
    fn eval_ns_accumulates_and_resets() {
        let mut c = EvalClient::threaded(Arc::new(UniformEvaluator::new(4, 2)), 1);
        c.reset_eval_ns();
        for i in 0..50 {
            c.submit(i, &[0.0; 4]);
        }
        let _ = c.gather_all();
        let measured = c.eval_ns();
        c.reset_eval_ns();
        assert!(c.eval_ns() <= measured);
    }

    #[test]
    #[should_panic(expected = "evaluation worker panicked")]
    fn worker_panic_surfaces_instead_of_hanging() {
        /// Panics on every call.
        struct Exploding;
        impl crate::evaluator::Evaluator for Exploding {
            fn input_len(&self) -> usize {
                4
            }
            fn action_space(&self) -> usize {
                2
            }
            fn evaluate(&self, _x: &[f32]) -> (Vec<f32>, f32) {
                panic!("backend died");
            }
        }
        let mut c = EvalClient::threaded(Arc::new(Exploding), 2);
        c.submit(0, &[0.0; 4]);
        c.submit(1, &[0.0; 4]);
        // Must re-panic here (poisoned completion), never block forever.
        let _ = c.gather();
    }

    #[test]
    #[should_panic(expected = "nothing in flight")]
    fn gather_on_empty_client_panics() {
        let mut c = EvalClient::threaded(Arc::new(UniformEvaluator::new(4, 2)), 1);
        let _ = c.gather();
    }
}
