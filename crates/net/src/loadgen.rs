//! Loopback load generator: the overload-proving harness behind the
//! `bench_serve` network axis.
//!
//! Two modes, both driving real [`crate::Client`] connections:
//!
//! * **closed loop** (`open_loop_rate: None`): each simulated client
//!   submits, waits for the terminal event, then immediately submits
//!   again — offered load self-limits to the service rate, which
//!   measures *latency under saturation*;
//! * **open loop** (`Some(rate)`): each client submits on a fixed
//!   interval regardless of completions — offered load is set by the
//!   clock, which is what actually *overloads* a server and proves
//!   shedding (rejections come back with honest nonzero `retry_after`;
//!   admitted work still completes).
//!
//! Every rejection counts toward `offered` and `shed` — a shed request
//! is not retried (the sweep wants the steady-state shed fraction, not
//! a convergent backoff dance).

use crate::client::{Client, Outcome, WireRequest};
use crate::frame::RejectCode;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// One load-generation run's shape.
#[derive(Clone)]
pub struct LoadConfig {
    pub addr: SocketAddr,
    /// Auth token presented by every client.
    pub token: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Submits per client (closed loop) or total submit budget per
    /// client (open loop).
    pub requests_per_client: usize,
    /// `None` = closed loop; `Some(r)` = open loop at `r` submits per
    /// second *per client*.
    pub open_loop_rate: Option<f64>,
    /// The request every client repeats.
    pub request: WireRequest,
}

/// What a run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests submitted (admitted + shed + failed).
    pub offered: u64,
    /// Requests that ended in `Final` (done or cancelled).
    pub admitted: u64,
    /// Requests bounced with `Reject`.
    pub shed: u64,
    /// Requests that ended in `Failed` (or whose connection died).
    pub failed: u64,
    /// Submit→terminal latency of each admitted request, milliseconds.
    pub latencies_ms: Vec<f64>,
    /// Mean `retry_after` across shed requests (zero when none shed).
    pub mean_retry_after: Duration,
    /// Shed requests whose `retry_after` hint was zero — for the
    /// transient reject codes this should stay 0 (the hint is honest).
    pub zero_hint_sheds: u64,
    /// Snapshot frames received across all clients.
    pub snapshots: u64,
    /// Wall-clock for the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Interpolated latency percentile (`q` in 0..=100) over admitted
    /// requests, in milliseconds. 0.0 when nothing was admitted.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = (q / 100.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let w = rank - lo as f64;
            sorted[lo] * (1.0 - w) + sorted[hi] * w
        }
    }

    /// Admitted completions per second of wall-clock.
    pub fn admitted_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.admitted as f64 / self.wall.as_secs_f64()
        }
    }

    fn absorb_outcome(&mut self, outcome: &Outcome, latency: Duration) {
        self.offered += 1;
        match outcome {
            Outcome::Done(_) | Outcome::Cancelled(_) => {
                self.admitted += 1;
                self.latencies_ms.push(latency.as_secs_f64() * 1e3);
            }
            Outcome::Rejected { code, retry_after } => {
                self.shed += 1;
                // `TooLarge`/`Draining`/`BadRequest` legitimately hint
                // zero (waiting cannot help); the transient codes must
                // not.
                if retry_after.is_zero() && code.is_transient() {
                    self.zero_hint_sheds += 1;
                }
                self.mean_retry_after += *retry_after; // running sum; divided at the end
            }
            Outcome::Failed { .. } => self.failed += 1,
        }
    }

    fn merge(&mut self, other: LoadReport) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.shed += other.shed;
        self.failed += other.failed;
        self.latencies_ms.extend(other.latencies_ms);
        self.mean_retry_after += other.mean_retry_after;
        self.zero_hint_sheds += other.zero_hint_sheds;
        self.snapshots += other.snapshots;
    }
}

/// Run one load generation pass (see module docs). Clients that fail
/// to connect contribute `requests_per_client` failures, so a refusing
/// server shows up in the numbers instead of silently shrinking the
/// denominator.
pub fn run(cfg: &LoadConfig) -> LoadReport {
    let merged = Mutex::new(LoadReport::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..cfg.clients {
            let merged = &merged;
            scope.spawn(move || {
                let local = match cfg.open_loop_rate {
                    None => run_closed(cfg),
                    // Stagger client phases across one submit interval so
                    // the offered load is spread in time, not delivered in
                    // synchronized bursts of `clients` (which would measure
                    // the admission burst allowance, not the offered rate).
                    Some(rate) => {
                        let phase =
                            Duration::from_secs_f64(i as f64 / cfg.clients as f64 / rate.max(0.1));
                        run_open(cfg, rate, phase)
                    }
                };
                merged.lock().merge(local);
            });
        }
    });
    let mut report = merged.into_inner();
    report.wall = start.elapsed();
    if report.shed > 0 {
        report.mean_retry_after /= report.shed as u32;
    }
    report
}

fn run_closed(cfg: &LoadConfig) -> LoadReport {
    let mut report = LoadReport::default();
    let mut client = match Client::connect(cfg.addr, &cfg.token) {
        Ok(c) => c,
        Err(_) => {
            report.offered = cfg.requests_per_client as u64;
            report.failed = cfg.requests_per_client as u64;
            return report;
        }
    };
    for _ in 0..cfg.requests_per_client {
        let t0 = Instant::now();
        let outcome = client
            .submit(&cfg.request)
            .and_then(|id| client.wait_outcome(id));
        match outcome {
            Ok(out) => report.absorb_outcome(&out, t0.elapsed()),
            Err(_) => {
                report.offered += 1;
                report.failed += 1;
                break; // connection dead; stop offering on it
            }
        }
    }
    report.snapshots = client.snapshots_seen();
    report
}

fn run_open(cfg: &LoadConfig, rate: f64, phase: Duration) -> LoadReport {
    let mut report = LoadReport::default();
    let mut client = match Client::connect(cfg.addr, &cfg.token) {
        Ok(c) => c,
        Err(_) => {
            report.offered = cfg.requests_per_client as u64;
            report.failed = cfg.requests_per_client as u64;
            return report;
        }
    };
    let interval = Duration::from_secs_f64(1.0 / rate.max(0.1));
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();
    let start = Instant::now() + phase;
    let mut broken = false;
    for k in 0..cfg.requests_per_client {
        // Hold the cadence: submit at t = k·interval, come what may.
        let due = start + interval * k as u32;
        loop {
            let now = Instant::now();
            if now >= due {
                break;
            }
            // Drain events while waiting so the socket never backs up.
            match client.recv_timeout(due - now) {
                Ok(Some(ev)) => {
                    if let Some(t0) = ev
                        .is_terminal()
                        .then(|| in_flight.remove(&ev.id()))
                        .flatten()
                    {
                        if let Some(out) = terminal_of(ev) {
                            report.absorb_outcome(&out, t0.elapsed());
                        }
                    }
                }
                Ok(None) => {}
                Err(_) => {
                    broken = true;
                    break;
                }
            }
        }
        if broken {
            break;
        }
        match client.submit(&cfg.request) {
            Ok(id) => {
                in_flight.insert(id, Instant::now());
            }
            Err(_) => {
                report.offered += 1;
                report.failed += 1;
                broken = true;
                break;
            }
        }
    }
    // Collect stragglers (bounded).
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    while !broken && !in_flight.is_empty() && Instant::now() < drain_deadline {
        match client.recv_timeout(Duration::from_millis(50)) {
            Ok(Some(ev)) => {
                if let Some(t0) = ev
                    .is_terminal()
                    .then(|| in_flight.remove(&ev.id()))
                    .flatten()
                {
                    if let Some(out) = terminal_of(ev) {
                        report.absorb_outcome(&out, t0.elapsed());
                    }
                }
            }
            Ok(None) => {}
            Err(_) => break,
        }
    }
    // Whatever never resolved is a failure against the offered count.
    report.offered += in_flight.len() as u64;
    report.failed += in_flight.len() as u64;
    report.snapshots = client.snapshots_seen();
    report
}

fn terminal_of(ev: crate::client::Event) -> Option<Outcome> {
    use crate::client::Event;
    match ev {
        Event::Final {
            cancelled, result, ..
        } => Some(if cancelled {
            Outcome::Cancelled(result)
        } else {
            Outcome::Done(result)
        }),
        Event::Failed { kind, message, .. } => Some(Outcome::Failed { kind, message }),
        Event::Rejected {
            code, retry_after, ..
        } => Some(Outcome::Rejected { code, retry_after }),
        _ => None,
    }
}

/// True when `code` is worth a client-side retry (kept here so bench
/// code does not reimplement the mapping).
pub fn retryable(code: RejectCode) -> bool {
    code.is_transient()
}
