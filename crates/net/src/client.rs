//! The calling side: a small blocking client over one connection.
//!
//! One [`Client`] multiplexes any number of concurrent sessions over
//! its connection — frames for different sessions interleave on the
//! wire and are de-interleaved here by id. The typical shapes:
//!
//! * fire-and-wait: [`Client::submit`] then [`Client::wait_outcome`];
//! * streaming: [`Client::submit`] then [`Client::recv`] in a loop,
//!   acting on each [`Event::Snapshot`] as it lands;
//! * cancel mid-run: [`Client::cancel`] from the same thread between
//!   `recv` calls (the stream still ends with exactly one terminal
//!   event for the session).

use crate::frame::{
    read_frame, us_to_duration, write_frame, FailKind, Frame, GameSpec, RejectCode, WireResult,
    MAX_FRAME, PROTOCOL_VERSION,
};
use serve::Priority;
use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One search request as the client states it. Build with the chained
/// setters; `submit` assigns the session id.
#[derive(Debug, Clone)]
pub struct WireRequest {
    pub spec: GameSpec,
    /// Moves from the game's initial position to the root to search.
    pub moves: Vec<u16>,
    pub playouts: u64,
    /// 0 = no deadline.
    pub time_ms: u64,
    /// 0 = inherit the server default.
    pub max_nodes: u64,
    pub priority: Priority,
}

impl WireRequest {
    pub fn new(spec: GameSpec) -> Self {
        WireRequest {
            spec,
            moves: Vec::new(),
            playouts: 256,
            time_ms: 0,
            max_nodes: 0,
            priority: Priority::Normal,
        }
    }

    pub fn moves(mut self, moves: Vec<u16>) -> Self {
        self.moves = moves;
        self
    }

    pub fn playouts(mut self, playouts: u64) -> Self {
        self.playouts = playouts;
        self
    }

    pub fn time_ms(mut self, time_ms: u64) -> Self {
        self.time_ms = time_ms;
        self
    }

    pub fn max_nodes(mut self, max_nodes: u64) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    fn priority_byte(&self) -> u8 {
        match self.priority {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }
}

/// Something the server said about one of this connection's sessions.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Admitted and placed; snapshots follow.
    Accepted { id: u64, shard: u32 },
    /// Shed at the front door; nothing queued.
    Rejected {
        id: u64,
        code: RejectCode,
        retry_after: Duration,
    },
    /// A fresh anytime snapshot (`result.seq` strictly increases).
    Snapshot { id: u64, result: WireResult },
    /// Terminal: ran to budget (`cancelled == false`) or honored a
    /// cancel (`true`).
    Final {
        id: u64,
        cancelled: bool,
        result: WireResult,
    },
    /// Terminal: the session died server-side.
    Failed {
        id: u64,
        kind: FailKind,
        retry_after: Duration,
        message: String,
    },
}

impl Event {
    /// The session this event is about.
    pub fn id(&self) -> u64 {
        match self {
            Event::Accepted { id, .. }
            | Event::Rejected { id, .. }
            | Event::Snapshot { id, .. }
            | Event::Final { id, .. }
            | Event::Failed { id, .. } => *id,
        }
    }

    /// True for the three event kinds that end a session's stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Rejected { .. } | Event::Final { .. } | Event::Failed { .. }
        )
    }
}

/// How one session ended, as [`Client::wait_outcome`] reports it.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Ran its full budget.
    Done(WireResult),
    /// Cancelled; carries the partial result at cancellation.
    Cancelled(WireResult),
    /// Died server-side.
    Failed { kind: FailKind, message: String },
    /// Never admitted.
    Rejected {
        code: RejectCode,
        retry_after: Duration,
    },
}

/// Blocking protocol client (see module docs).
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    /// Events read while looking for something else (e.g. snapshots
    /// that arrived while waiting for a `StatsJson`).
    pending: VecDeque<Event>,
    snapshots_seen: u64,
    max_frame: usize,
}

impl Client {
    /// Connect and run the `Hello`/`Welcome` handshake. A server
    /// without an auth token accepts any `token`.
    pub fn connect(addr: impl ToSocketAddrs, token: &str) -> io::Result<Client> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(
            &mut stream,
            &Frame::Hello {
                proto: PROTOCOL_VERSION,
                token: token.to_string(),
            },
        )?;
        match read_frame(&mut stream, MAX_FRAME)? {
            Frame::Welcome { .. } => Ok(Client {
                stream,
                next_id: 1,
                pending: VecDeque::new(),
                snapshots_seen: 0,
                max_frame: MAX_FRAME,
            }),
            Frame::Error { message } => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("server rejected handshake: {message}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected handshake reply: {other:?}"),
            )),
        }
    }

    /// Submit a search; returns the session id scoping all its events.
    /// The admission verdict arrives as the session's first event
    /// (`Accepted` or `Rejected`), not as this call's result.
    pub fn submit(&mut self, req: &WireRequest) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.stream,
            &Frame::Submit {
                id,
                spec: req.spec,
                moves: req.moves.clone(),
                playouts: req.playouts,
                time_ms: req.time_ms,
                max_nodes: req.max_nodes,
                priority: req.priority_byte(),
            },
        )?;
        Ok(id)
    }

    /// Ask the server to cancel session `id` (its stream still ends
    /// with one terminal event — `Final { cancelled: true }` if the
    /// cancel won the race).
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        write_frame(&mut self.stream, &Frame::Cancel { id })
    }

    /// Clean goodbye; the server tears the connection down.
    pub fn goodbye(mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &Frame::Goodbye)
    }

    /// Fetch the cluster metrics dump
    /// ([`serve::ClusterStats::metrics_json`]). Session events arriving
    /// in the meantime are stashed for later [`Client::recv`] calls.
    pub fn stats(&mut self) -> io::Result<String> {
        write_frame(&mut self.stream, &Frame::StatsReq)?;
        loop {
            match read_frame(&mut self.stream, self.max_frame)? {
                Frame::StatsJson { json } => return Ok(json),
                other => {
                    let ev = self.frame_to_event(other)?;
                    self.pending.push_back(ev);
                }
            }
        }
    }

    /// Next event, blocking. Events interleave across this
    /// connection's sessions; route by [`Event::id`].
    pub fn recv(&mut self) -> io::Result<Event> {
        if let Some(ev) = self.pending.pop_front() {
            return Ok(ev);
        }
        let frame = read_frame(&mut self.stream, self.max_frame)?;
        self.frame_to_event(frame)
    }

    /// [`Client::recv`] bounded by a timeout; `Ok(None)` when it
    /// elapses with nothing new.
    pub fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Event>> {
        if let Some(ev) = self.pending.pop_front() {
            return Ok(Some(ev));
        }
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let got = match read_frame(&mut self.stream, self.max_frame) {
            Ok(frame) => Some(self.frame_to_event(frame)?),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                None
            }
            Err(e) => {
                self.stream.set_read_timeout(None)?;
                return Err(e);
            }
        };
        self.stream.set_read_timeout(None)?;
        Ok(got)
    }

    /// Block until session `id` reaches its terminal event, discarding
    /// (but counting) its snapshots; other sessions' events are stashed.
    pub fn wait_outcome(&mut self, id: u64) -> io::Result<Outcome> {
        // Pending events for this id first.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].id() == id {
                let ev = self.pending.remove(i).unwrap();
                if let Some(outcome) = Self::terminal_outcome(ev) {
                    return Ok(outcome);
                }
            } else {
                i += 1;
            }
        }
        loop {
            let frame = read_frame(&mut self.stream, self.max_frame)?;
            let ev = self.frame_to_event(frame)?;
            if ev.id() != id {
                self.pending.push_back(ev);
                continue;
            }
            if let Some(outcome) = Self::terminal_outcome(ev) {
                return Ok(outcome);
            }
        }
    }

    /// Snapshots this client has received over its lifetime (all
    /// sessions).
    pub fn snapshots_seen(&self) -> u64 {
        self.snapshots_seen
    }

    fn terminal_outcome(ev: Event) -> Option<Outcome> {
        match ev {
            Event::Final {
                cancelled, result, ..
            } => Some(if cancelled {
                Outcome::Cancelled(result)
            } else {
                Outcome::Done(result)
            }),
            Event::Failed { kind, message, .. } => Some(Outcome::Failed { kind, message }),
            Event::Rejected {
                code, retry_after, ..
            } => Some(Outcome::Rejected { code, retry_after }),
            Event::Accepted { .. } | Event::Snapshot { .. } => None,
        }
    }

    fn frame_to_event(&mut self, frame: Frame) -> io::Result<Event> {
        Ok(match frame {
            Frame::Accepted { id, shard } => Event::Accepted { id, shard },
            Frame::Reject {
                id,
                code,
                retry_after_us,
            } => Event::Rejected {
                id,
                code,
                retry_after: us_to_duration(retry_after_us),
            },
            Frame::Snapshot { id, result } => {
                self.snapshots_seen += 1;
                Event::Snapshot { id, result }
            }
            Frame::Final {
                id,
                cancelled,
                result,
            } => Event::Final {
                id,
                cancelled,
                result,
            },
            Frame::Failed {
                id,
                kind,
                retry_after_us,
                message,
            } => Event::Failed {
                id,
                kind,
                retry_after: us_to_duration(retry_after_us),
                message,
            },
            Frame::Error { message } => {
                return Err(io::Error::other(format!("server error: {message}")))
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected frame from server: {other:?}"),
                ))
            }
        })
    }
}
