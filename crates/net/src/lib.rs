//! Network front end for the serving cluster: every capability the
//! in-process [`serve::ServeCluster`] API offers — budgeted sessions,
//! streamed anytime snapshots, cancellation, admission shedding with
//! honest `retry_after` hints, circuit-breaker state, metrics — made
//! reachable over TCP by remote, multi-tenant clients.
//!
//! Dependency-free by construction: `std::net` blocking sockets and
//! the vendored `bytes` cursor, no async runtime. The protocol is a
//! length-prefixed little-endian binary framing (see [`frame`] for the
//! grammar and the hardened decoder); the server ([`NetServer`]) is a
//! fixed acceptor plus two threads per connection with strictly
//! per-connection backpressure; the client ([`Client`]) is a small
//! blocking handle that multiplexes sessions by id; [`loadgen`] drives
//! hundreds of loopback clients to *prove* the overload story
//! end-to-end (offered vs admitted vs shed, p50/p99).
//!
//! ```no_run
//! use net::{Client, GameSpec, NetServer, Outcome, ServerConfig, WireRequest};
//! use serve::{ClusterConfig, ServeCluster};
//! use std::sync::Arc;
//!
//! let cluster = Arc::new(ServeCluster::new(ClusterConfig::default()));
//! let mut server =
//!     NetServer::bind("127.0.0.1:0", cluster, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.local_addr(), "").unwrap();
//! let id = client
//!     .submit(&WireRequest::new(GameSpec::Gomoku { size: 9, win: 5 }).playouts(512))
//!     .unwrap();
//! match client.wait_outcome(id).unwrap() {
//!     Outcome::Done(result) => println!("best move: {:?}", result.best_action()),
//!     other => println!("not admitted: {other:?}"),
//! }
//! server.shutdown(std::time::Duration::from_secs(5));
//! ```

pub mod client;
pub mod frame;
pub mod loadgen;
pub mod server;

pub use client::{Client, Event, Outcome, WireRequest};
pub use frame::{
    DecodeError, FailKind, Frame, FrameReader, GameSpec, ReadError, RejectCode, WireResult,
    MAX_FRAME, PROTOCOL_VERSION,
};
pub use loadgen::{LoadConfig, LoadReport};
pub use server::{EvalFactory, NetServer, NetStatsSnapshot, ServerConfig};
