//! The serving side: a TCP front door over one [`ServeCluster`].
//!
//! Thread model — **fixed acceptor, two threads per connection, zero
//! threads borrowed from search**:
//!
//! * one acceptor thread owns the listener (non-blocking, polls a
//!   shutdown flag);
//! * each connection gets a *reader* (handshake, frame decode, submit /
//!   cancel / stats dispatch) and a *writer* (drains the bounded
//!   control queue, then forwards every active session's
//!   [`serve::ResultStream`]). With exactly one live session the
//!   writer blocks on that stream — the snapshot/Final publication is
//!   the wakeup, so an idle connection costs no polling at all; with
//!   several it falls back to a short non-blocking poll loop.
//!
//! Backpressure is strictly per-connection: a slow reader fills its own
//! outbound queue and blocks its own reader thread; search workers
//! never wait on a socket. Snapshots are not queued at all — the
//! result stream has watch semantics, so a client that cannot keep up
//! receives the *latest* snapshot and the ones it missed are counted
//! shed ([`NetStatsSnapshot::snapshots_shed`]), never buffered.
//!
//! Admission is two gates deep: an optional per-connection quota
//! ([`ServerConfig::client_quota`]) sheds a greedy tenant with
//! [`RejectCode::QuotaExceeded`] before the cluster's per-model
//! admission ever sees the request; cluster-side shedding and breaker
//! state map onto [`Frame::Reject`] with the same honest `retry_after`
//! the in-process API gets.

use crate::frame::{
    duration_to_us, FailKind, Frame, FrameReader, GameSpec, ReadError, RejectCode, WireResult,
    MAX_FRAME, PROTOCOL_VERSION,
};
use games::gomoku::Gomoku;
use games::hex::Hex;
use games::othello::Othello;
use games::tictactoe::TicTacToe;
use games::{connect4::Connect4, Game};
use mcts::{BatchEvaluator, Budget, MctsConfig, SearchError, UniformEvaluator};
use parking_lot::{Condvar, Mutex};
use serve::{
    AdmissionConfig, AdmissionController, ClusterTicket, DrainReport, Priority, Rejection,
    ResultStream, SearchRequest, ServeCluster, StreamItem, TicketStatus,
};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Front-end knobs. `Default` is sized for tests and demos; a real
/// deployment mostly raises `max_conns` and sets an `auth_token`.
#[derive(Clone)]
pub struct ServerConfig {
    /// Shared secret a client must present in `Hello`. `None` accepts
    /// any token (loopback benchmarking).
    pub auth_token: Option<String>,
    /// Connection cap; the acceptor refuses (with an `Error` frame)
    /// past it, bounding the thread count at `2 × max_conns + 1`.
    pub max_conns: usize,
    /// Per-frame length cap checked before any allocation.
    pub max_frame: usize,
    /// Bound on each connection's control-frame queue
    /// (`Accepted`/`Reject`/`StatsJson`). A full queue blocks that
    /// connection's reader — backpressure on the one slow client.
    pub outbound_queue: usize,
    /// Per-connection admission quota layered *before* the cluster's
    /// per-model gate; `None` disables the tenant gate.
    pub client_quota: Option<AdmissionConfig>,
    /// How long a fresh connection may take to present a valid `Hello`.
    pub handshake_timeout: Duration,
    /// How long a peer may sit mid-frame (bytes promised, not sent)
    /// before the server declares it stalled and closes.
    pub stall_timeout: Duration,
    /// Largest per-request playout budget; above it the submit is
    /// bounced as [`RejectCode::TooLarge`] without touching admission.
    pub max_playouts: u64,
    /// Longest move prefix a `Submit` may carry.
    pub max_moves: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            auth_token: None,
            max_conns: 256,
            max_frame: MAX_FRAME,
            outbound_queue: 64,
            client_quota: None,
            handshake_timeout: Duration::from_secs(5),
            stall_timeout: Duration::from_secs(10),
            max_playouts: 10_000_000,
            max_moves: 1024,
        }
    }
}

impl ServerConfig {
    /// Defaults overlaid with the `NET_*` environment knobs
    /// (`NET_AUTH_TOKEN`, `NET_MAX_CONNS`, `NET_OUTBOUND_QUEUE`,
    /// `NET_MAX_FRAME`); unparsable values fall back silently. The
    /// listen address itself is passed to [`NetServer::bind`] — the
    /// `NET_LISTEN_ADDR` convention is the caller's to honor.
    pub fn from_env() -> Self {
        let mut cfg = ServerConfig::default();
        if let Ok(tok) = std::env::var("NET_AUTH_TOKEN") {
            if !tok.is_empty() {
                cfg.auth_token = Some(tok);
            }
        }
        let parse = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
        if let Some(v) = parse("NET_MAX_CONNS") {
            cfg.max_conns = v.max(1);
        }
        if let Some(v) = parse("NET_OUTBOUND_QUEUE") {
            cfg.outbound_queue = v.max(1);
        }
        if let Some(v) = parse("NET_MAX_FRAME") {
            cfg.max_frame = v.max(64);
        }
        cfg
    }
}

/// Counters of everything the front door did, mirrored from atomics by
/// [`NetServer::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections accepted (past the handshake or not).
    pub accepted: u64,
    /// Connections refused at the cap.
    pub refused: u64,
    /// Handshakes that failed (bad token, bad version, no `Hello`).
    pub auth_failures: u64,
    /// Frames that failed to decode (the connection is closed after).
    pub decode_errors: u64,
    /// Connections closed for stalling mid-frame.
    pub stalls: u64,
    /// `Submit` frames received.
    pub submits: u64,
    /// Submits admitted end-to-end (quota and cluster both said yes).
    pub admitted: u64,
    /// Submits bounced with a `Reject` frame (either gate).
    pub rejected: u64,
    /// `Cancel` frames honored.
    pub cancels: u64,
    /// Snapshot frames written to sockets.
    pub snapshots_sent: u64,
    /// Snapshots superseded before a slow client's writer could send
    /// them (watch semantics: dropped, never queued).
    pub snapshots_shed: u64,
}

#[derive(Default)]
struct NetStats {
    accepted: AtomicU64,
    refused: AtomicU64,
    auth_failures: AtomicU64,
    decode_errors: AtomicU64,
    stalls: AtomicU64,
    submits: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    cancels: AtomicU64,
    snapshots_sent: AtomicU64,
    snapshots_shed: AtomicU64,
}

impl NetStats {
    fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            auth_failures: self.auth_failures.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            submits: self.submits.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cancels: self.cancels.load(Ordering::Relaxed),
            snapshots_sent: self.snapshots_sent.load(Ordering::Relaxed),
            snapshots_shed: self.snapshots_shed.load(Ordering::Relaxed),
        }
    }
}

/// Builds (and implicitly keys) the evaluator for a game spec. The
/// server caches one evaluator per distinct spec, so every remote
/// session on the same game shares one backend `Arc` — cross-session
/// batch coalescing and per-model admission both key off that identity.
pub type EvalFactory = Box<dyn Fn(&GameSpec) -> Arc<dyn BatchEvaluator> + Send + Sync>;

fn uniform_factory(spec: &GameSpec) -> Arc<dyn BatchEvaluator> {
    match *spec {
        GameSpec::TicTacToe => Arc::new(UniformEvaluator::for_game(&TicTacToe::new())),
        GameSpec::Connect4 => Arc::new(UniformEvaluator::for_game(&Connect4::new())),
        GameSpec::Gomoku { size, win } => Arc::new(UniformEvaluator::for_game(&Gomoku::new(
            size as usize,
            win as usize,
        ))),
        GameSpec::Othello { size } => {
            Arc::new(UniformEvaluator::for_game(&Othello::new(size as usize)))
        }
        GameSpec::Hex { size } => Arc::new(UniformEvaluator::for_game(&Hex::new(size as usize))),
    }
}

/// One active remote session on a connection: the writer's half (the
/// stream it forwards). The cancel handle lives separately in
/// [`ConnShared::tickets`] so the reader can cancel without contending
/// on the writer's list — which lets the writer block on a lone
/// session's stream instead of polling it.
struct SessionEntry {
    id: u64,
    /// The `Accepted` frame, held here (not in the control queue) so
    /// the writer structurally cannot emit a snapshot before it.
    announce: Option<Frame>,
    stream: ResultStream,
    last_seq: u64,
}

/// State shared between one connection's reader and writer.
struct ConnShared {
    outbound: Mutex<VecDeque<Frame>>,
    /// Reader waits here when the control queue is full.
    space: Condvar,
    /// Writer waits here (with a short timeout — snapshots arrive out
    /// of band) when it has nothing to send.
    work: Condvar,
    sessions: Mutex<Vec<SessionEntry>>,
    /// Live cancel handles by session id (reader-side: Cancel frames,
    /// duplicate-id checks, teardown). Pruned by the writer when a
    /// session reaches its terminal frame.
    tickets: Mutex<Vec<(u64, ClusterTicket)>>,
    /// Hard stop: both threads exit as soon as they see it.
    closed: AtomicBool,
    /// Soft stop: the writer flushes the control queue, then shuts the
    /// socket down (protocol-error goodbyes).
    closing: AtomicBool,
    /// Per-connection tenant quota (key 0), if configured.
    quota: Option<AdmissionController>,
}

impl ConnShared {
    fn push_frame(&self, cap: usize, frame: Frame) {
        let mut q = self.outbound.lock();
        while q.len() >= cap && !self.closed.load(Ordering::Acquire) {
            let (guard, _) = self.space.wait_timeout(q, Duration::from_millis(50));
            q = guard;
        }
        q.push_back(frame);
        self.work.notify_all();
    }

    fn close_now(&self) {
        self.closed.store(true, Ordering::Release);
        self.work.notify_all();
        self.space.notify_all();
    }

    fn cancel_all_sessions(&self) {
        for (_, ticket) in self.tickets.lock().iter() {
            ticket.cancel();
        }
    }

    fn prune_ticket(&self, id: u64) {
        self.tickets.lock().retain(|(tid, _)| *tid != id);
    }
}

struct ConnHandle {
    shared: Arc<ConnShared>,
    stream: TcpStream,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

struct ServerInner {
    cluster: Arc<ServeCluster>,
    cfg: ServerConfig,
    factory: EvalFactory,
    evaluators: Mutex<Vec<(GameSpec, Arc<dyn BatchEvaluator>)>>,
    shutdown: AtomicBool,
    conns: Mutex<Vec<ConnHandle>>,
    stats: NetStats,
}

impl ServerInner {
    fn evaluator_for(&self, spec: &GameSpec) -> Arc<dyn BatchEvaluator> {
        let mut cache = self.evaluators.lock();
        if let Some((_, e)) = cache.iter().find(|(s, _)| s == spec) {
            return Arc::clone(e);
        }
        let e = (self.factory)(spec);
        cache.push((*spec, Arc::clone(&e)));
        e
    }
}

/// The TCP front end over one [`ServeCluster`] (see module docs).
/// Dropping the server shuts it down immediately (zero drain timeout).
pub struct NetServer {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (use port 0 to let the OS pick — see
    /// [`NetServer::local_addr`]) and start accepting. Remote sessions
    /// run uniform-rollout evaluators built per game spec; use
    /// [`NetServer::bind_with_factory`] to serve real models.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cluster: Arc<ServeCluster>,
        cfg: ServerConfig,
    ) -> io::Result<NetServer> {
        Self::bind_with_factory(addr, cluster, cfg, Box::new(uniform_factory))
    }

    /// [`NetServer::bind`] with a custom evaluator factory (one call
    /// per *distinct* game spec; the result is cached and shared).
    pub fn bind_with_factory(
        addr: impl ToSocketAddrs,
        cluster: Arc<ServeCluster>,
        cfg: ServerConfig,
        factory: EvalFactory,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(ServerInner {
            cluster,
            cfg,
            factory,
            evaluators: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            stats: NetStats::default(),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("net-acceptor".into())
                .spawn(move || accept_loop(listener, inner))
                .expect("spawn acceptor")
        };
        Ok(NetServer {
            inner,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Front-door counters so far.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// The cluster behind the front door.
    pub fn cluster(&self) -> &Arc<ServeCluster> {
        &self.inner.cluster
    }

    /// Graceful stop: stop accepting, [`ServeCluster::drain`] with
    /// `timeout` (in-flight remote sessions finish; stragglers are
    /// cancelled at the deadline), give writers a beat to flush final
    /// frames, then close every connection and join all threads.
    pub fn shutdown(&mut self, timeout: Duration) -> DrainReport {
        self.inner.shutdown.store(true, Ordering::Release);
        let report = self.inner.cluster.drain(timeout);
        // Let per-connection writers deliver the Final/Failed frames
        // the drain just produced before the sockets go away.
        std::thread::sleep(Duration::from_millis(50));
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let mut conns = std::mem::take(&mut *self.inner.conns.lock());
        for c in &mut conns {
            c.shared.close_now();
            let _ = c.stream.shutdown(Shutdown::Both);
        }
        for mut c in conns {
            if let Some(h) = c.reader.take() {
                let _ = h.join();
            }
            if let Some(h) = c.writer.take() {
                let _ = h.join();
            }
        }
        report
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if !self.inner.shutdown.load(Ordering::Acquire) {
            self.shutdown(Duration::ZERO);
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<ServerInner>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished connections so the cap counts live ones.
                let live = {
                    let mut conns = inner.conns.lock();
                    conns.retain(|c| {
                        !(c.reader.as_ref().is_none_or(|h| h.is_finished())
                            && c.writer.as_ref().is_none_or(|h| h.is_finished()))
                    });
                    conns.len()
                };
                if live >= inner.cfg.max_conns {
                    inner.stats.refused.fetch_add(1, Ordering::Relaxed);
                    let mut s = stream;
                    let _ = s.set_nonblocking(false);
                    let _ = crate::frame::write_frame(
                        &mut s,
                        &Frame::Error {
                            message: "connection limit reached".into(),
                        },
                    );
                    let _ = s.shutdown(Shutdown::Both);
                    continue;
                }
                inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
                spawn_connection(stream, Arc::clone(&inner));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn spawn_connection(stream: TcpStream, inner: Arc<ServerInner>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);
    let shared = Arc::new(ConnShared {
        outbound: Mutex::new(VecDeque::new()),
        space: Condvar::new(),
        work: Condvar::new(),
        sessions: Mutex::new(Vec::new()),
        tickets: Mutex::new(Vec::new()),
        closed: AtomicBool::new(false),
        closing: AtomicBool::new(false),
        quota: inner.cfg.client_quota.map(AdmissionController::new),
    });
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let reader = {
        let shared = Arc::clone(&shared);
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("net-conn-reader".into())
            .spawn(move || reader_loop(reader_stream, shared, inner))
            .expect("spawn reader")
    };
    let writer = {
        let shared = Arc::clone(&shared);
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("net-conn-writer".into())
            .spawn(move || writer_loop(writer_stream, shared, inner))
            .expect("spawn writer")
    };
    inner.conns.lock().push(ConnHandle {
        shared,
        stream,
        reader: Some(reader),
        writer: Some(writer),
    });
}

/// Cancel every session this connection owns (freeing cluster admission
/// slots via the finalization hook) and stop both threads.
fn teardown(shared: &ConnShared) {
    shared.cancel_all_sessions();
    shared.close_now();
}

fn reader_loop(mut stream: TcpStream, shared: Arc<ConnShared>, inner: Arc<ServerInner>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut frames = FrameReader::new(inner.cfg.max_frame);
    // Handshake: one valid Hello within the timeout, or goodbye.
    let deadline = Instant::now() + inner.cfg.handshake_timeout;
    let hello = loop {
        if shared.closed.load(Ordering::Acquire) {
            return;
        }
        match frames.poll(&mut stream) {
            Ok(Some(f)) => break Some(f),
            Ok(None) => {
                if Instant::now() >= deadline {
                    break None;
                }
            }
            Err(_) => break None,
        }
    };
    let ok = matches!(
        &hello,
        Some(Frame::Hello { proto, token })
            if *proto == PROTOCOL_VERSION
                && inner.cfg.auth_token.as_ref().is_none_or(|t| t == token)
    );
    if !ok {
        inner.stats.auth_failures.fetch_add(1, Ordering::Relaxed);
        shared.push_frame(
            inner.cfg.outbound_queue,
            Frame::Error {
                message: "handshake rejected".into(),
            },
        );
        shared.closing.store(true, Ordering::Release);
        shared.work.notify_all();
        return;
    }
    shared.push_frame(
        inner.cfg.outbound_queue,
        Frame::Welcome {
            proto: PROTOCOL_VERSION,
        },
    );

    let mut stall_since: Option<Instant> = None;
    let mut buffered = 0usize;
    loop {
        if shared.closed.load(Ordering::Acquire) || shared.closing.load(Ordering::Acquire) {
            return;
        }
        match frames.poll(&mut stream) {
            Ok(Some(frame)) => {
                stall_since = None;
                match frame {
                    Frame::Submit {
                        id,
                        spec,
                        moves,
                        playouts,
                        time_ms,
                        max_nodes,
                        priority,
                    } => handle_submit(
                        &inner, &shared, id, spec, &moves, playouts, time_ms, max_nodes, priority,
                    ),
                    Frame::Cancel { id } => {
                        inner.stats.cancels.fetch_add(1, Ordering::Relaxed);
                        if let Some((_, t)) =
                            shared.tickets.lock().iter().find(|(tid, _)| *tid == id)
                        {
                            t.cancel();
                        }
                    }
                    Frame::StatsReq => {
                        let json = inner.cluster.stats().metrics_json();
                        shared.push_frame(inner.cfg.outbound_queue, Frame::StatsJson { json });
                    }
                    Frame::Goodbye => {
                        teardown(&shared);
                        return;
                    }
                    _ => {
                        // Server-bound direction only: a client sending
                        // server frames (or a second Hello) is confused.
                        inner.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                        protocol_error(&inner, &shared, "unexpected frame direction");
                        return;
                    }
                }
            }
            Ok(None) => {
                // No complete frame. A peer that has promised bytes and
                // stopped sending them is stalled, not idle.
                if frames.mid_frame() {
                    let progressed = frames_buffered(&frames) != buffered;
                    buffered = frames_buffered(&frames);
                    let since = *stall_since.get_or_insert_with(Instant::now);
                    if progressed {
                        stall_since = Some(Instant::now());
                    } else if since.elapsed() >= inner.cfg.stall_timeout {
                        inner.stats.stalls.fetch_add(1, Ordering::Relaxed);
                        protocol_error(&inner, &shared, "stalled mid-frame");
                        return;
                    }
                } else {
                    stall_since = None;
                }
            }
            Err(ReadError::Decode(_)) => {
                inner.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                protocol_error(&inner, &shared, "malformed frame");
                return;
            }
            Err(ReadError::Eof) | Err(ReadError::Io(_)) => {
                teardown(&shared);
                return;
            }
        }
    }
}

fn frames_buffered(r: &FrameReader) -> usize {
    // mid_frame() only says "non-empty"; progress detection needs the
    // byte count, tracked via the reader's Debug-free accessor below.
    r.buffered()
}

/// Send a final `Error` frame, then let the writer flush and close.
fn protocol_error(inner: &ServerInner, shared: &ConnShared, message: &str) {
    shared.push_frame(
        inner.cfg.outbound_queue,
        Frame::Error {
            message: message.into(),
        },
    );
    shared.cancel_all_sessions();
    shared.closing.store(true, Ordering::Release);
    shared.work.notify_all();
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    inner: &Arc<ServerInner>,
    shared: &Arc<ConnShared>,
    id: u64,
    spec: GameSpec,
    moves: &[u16],
    playouts: u64,
    time_ms: u64,
    max_nodes: u64,
    priority: u8,
) {
    inner.stats.submits.fetch_add(1, Ordering::Relaxed);
    let reject = |code: RejectCode, retry: Duration| {
        inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
        shared.push_frame(
            inner.cfg.outbound_queue,
            Frame::Reject {
                id,
                code,
                retry_after_us: duration_to_us(retry),
            },
        );
    };
    if playouts == 0
        || moves.len() > inner.cfg.max_moves
        || priority > 2
        || spec.validate().is_err()
        || shared.tickets.lock().iter().any(|(tid, _)| *tid == id)
    {
        reject(RejectCode::BadRequest, Duration::ZERO);
        return;
    }
    if playouts > inner.cfg.max_playouts {
        reject(RejectCode::TooLarge, Duration::ZERO);
        return;
    }
    // Tenant gate first: one greedy connection exhausts its own quota,
    // not the model's budget for everyone.
    if let Some(q) = &shared.quota {
        if let Err(rej) = q.try_admit(0, playouts) {
            reject(RejectCode::QuotaExceeded, rej.retry_after);
            return;
        }
    }
    let evaluator = inner.evaluator_for(&spec);
    let priority = match priority {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    };
    let budget = Budget {
        playouts: Some(playouts),
        time: (time_ms > 0).then(|| Duration::from_millis(time_ms)),
        max_nodes: (max_nodes > 0).then_some(max_nodes as usize),
        max_bytes: None,
    };
    let submitted = match spec {
        GameSpec::TicTacToe => {
            submit_game(inner, TicTacToe::new(), moves, evaluator, budget, priority)
        }
        GameSpec::Connect4 => {
            submit_game(inner, Connect4::new(), moves, evaluator, budget, priority)
        }
        GameSpec::Gomoku { size, win } => submit_game(
            inner,
            Gomoku::new(size as usize, win as usize),
            moves,
            evaluator,
            budget,
            priority,
        ),
        GameSpec::Othello { size } => submit_game(
            inner,
            Othello::new(size as usize),
            moves,
            evaluator,
            budget,
            priority,
        ),
        GameSpec::Hex { size } => submit_game(
            inner,
            Hex::new(size as usize),
            moves,
            evaluator,
            budget,
            priority,
        ),
    };
    match submitted {
        Ok(ticket) => {
            inner.stats.admitted.fetch_add(1, Ordering::Relaxed);
            let entry = SessionEntry {
                id,
                announce: Some(Frame::Accepted {
                    id,
                    shard: ticket.shard() as u32,
                }),
                stream: ticket.subscribe(),
                last_seq: 0,
            };
            shared.tickets.lock().push((id, ticket));
            shared.sessions.lock().push(entry);
            shared.work.notify_all();
        }
        Err(SubmitError::Bad) => {
            if let Some(q) = &shared.quota {
                q.release(0);
            }
            reject(RejectCode::BadRequest, Duration::ZERO);
        }
        Err(SubmitError::Shed(rej)) => {
            if let Some(q) = &shared.quota {
                q.release(0);
            }
            reject(rej.reason.into(), rej.retry_after);
        }
    }
}

enum SubmitError {
    /// Illegal move prefix or terminal root.
    Bad,
    /// The cluster shed it.
    Shed(Rejection),
}

fn submit_game<G: Game>(
    inner: &ServerInner,
    mut game: G,
    moves: &[u16],
    evaluator: Arc<dyn BatchEvaluator>,
    budget: Budget,
    priority: Priority,
) -> Result<ClusterTicket, SubmitError> {
    for &m in moves {
        if game.status().is_terminal() || !game.is_legal(m) {
            return Err(SubmitError::Bad);
        }
        game.apply(m);
    }
    if game.status().is_terminal() {
        return Err(SubmitError::Bad);
    }
    let config = MctsConfig {
        playouts: budget.playouts.unwrap_or(1) as usize,
        ..Default::default()
    };
    inner
        .cluster
        .submit(
            SearchRequest::new(game, evaluator)
                .config(config)
                .budget(budget)
                .priority(priority),
        )
        .map_err(SubmitError::Shed)
}

fn terminal_frame(id: u64, result: &WireResult, status: &TicketStatus) -> Frame {
    match status {
        TicketStatus::Done | TicketStatus::Running => Frame::Final {
            id,
            cancelled: false,
            result: result.clone(),
        },
        TicketStatus::Cancelled => Frame::Final {
            id,
            cancelled: true,
            result: result.clone(),
        },
        TicketStatus::Failed(err) => {
            let (kind, retry, message) = match err {
                SearchError::Panicked { payload } => {
                    (FailKind::Panicked, Duration::ZERO, payload.clone())
                }
                SearchError::EvaluatorFailed { reason } => {
                    (FailKind::EvaluatorFailed, Duration::ZERO, reason.clone())
                }
                SearchError::DeadlineExceeded => {
                    (FailKind::DeadlineExceeded, Duration::ZERO, String::new())
                }
                SearchError::Cancelled => (FailKind::Cancelled, Duration::ZERO, String::new()),
                SearchError::BackendUnavailable { retry_after } => (
                    FailKind::BackendUnavailable,
                    retry_after.unwrap_or(Duration::ZERO),
                    String::new(),
                ),
            };
            let mut message = message;
            message.truncate(200);
            Frame::Failed {
                id,
                kind,
                retry_after_us: duration_to_us(retry),
                message,
            }
        }
    }
}

/// Forward everything `e`'s stream has ready right now into `pending`:
/// announce first (ordering!), then the latest unseen snapshot(s), then
/// at most one terminal frame. Returns true when the session finished.
fn drain_session(
    e: &mut SessionEntry,
    pending: &mut Vec<Frame>,
    shared: &ConnShared,
    inner: &ServerInner,
) -> bool {
    if let Some(a) = e.announce.take() {
        pending.push(a);
    }
    while let Some(item) = e.stream.recv_timeout(Duration::ZERO) {
        match item {
            StreamItem::Partial(snap) => {
                if e.last_seq > 0 && snap.stats.seq > e.last_seq + 1 {
                    inner
                        .stats
                        .snapshots_shed
                        .fetch_add(snap.stats.seq - e.last_seq - 1, Ordering::Relaxed);
                }
                e.last_seq = snap.stats.seq;
                inner.stats.snapshots_sent.fetch_add(1, Ordering::Relaxed);
                pending.push(Frame::Snapshot {
                    id: e.id,
                    result: WireResult::from(&snap),
                });
            }
            StreamItem::Final(result, status) => {
                pending.push(terminal_frame(e.id, &WireResult::from(&result), &status));
                if let Some(q) = &shared.quota {
                    q.release(0);
                }
                return true;
            }
        }
    }
    false
}

fn writer_loop(mut stream: TcpStream, shared: Arc<ConnShared>, inner: Arc<ServerInner>) {
    let mut pending: Vec<Frame> = Vec::new();
    loop {
        if shared.closed.load(Ordering::Acquire) {
            break;
        }
        pending.clear();
        {
            let mut q = shared.outbound.lock();
            if !q.is_empty() {
                pending.extend(q.drain(..));
                shared.space.notify_all();
            }
        }
        {
            let mut sessions = shared.sessions.lock();
            let mut i = 0;
            while i < sessions.len() {
                if drain_session(&mut sessions[i], &mut pending, &shared, &inner) {
                    let id = sessions.remove(i).id;
                    shared.prune_ticket(id);
                } else {
                    i += 1;
                }
            }
        }
        if pending.is_empty() {
            if shared.closing.load(Ordering::Acquire) {
                // Goodbye flushed: close for real.
                let _ = stream.flush();
                let _ = stream.shutdown(Shutdown::Both);
                shared.close_now();
                break;
            }
            // Exactly one live session and nothing queued: block on its
            // stream instead of polling. The wakeup is the snapshot or
            // Final publication itself — zero idle wakeups, and the
            // terminal frame goes out the moment it exists (this
            // matters on core-starved hosts, where 1 ms poll naps
            // across many connections steal real time from the search
            // workers). The entry is lifted out of the shared list so
            // the reader never waits on a blocked writer; cancels and
            // duplicate-id checks go through `tickets`, which keeps the
            // session visible while it is lifted.
            let lone = {
                let mut sessions = shared.sessions.lock();
                if sessions.len() == 1 {
                    sessions.pop()
                } else {
                    None
                }
            };
            if let Some(mut e) = lone {
                // The reader may have pushed this entry after the scan
                // above: its Accepted frame must still precede any
                // snapshot the blocking recv returns.
                if let Some(a) = e.announce.take() {
                    pending.push(a);
                }
                let finished = match e.stream.recv_timeout(Duration::from_millis(5)) {
                    Some(StreamItem::Partial(snap)) => {
                        if e.last_seq > 0 && snap.stats.seq > e.last_seq + 1 {
                            inner
                                .stats
                                .snapshots_shed
                                .fetch_add(snap.stats.seq - e.last_seq - 1, Ordering::Relaxed);
                        }
                        e.last_seq = snap.stats.seq;
                        inner.stats.snapshots_sent.fetch_add(1, Ordering::Relaxed);
                        pending.push(Frame::Snapshot {
                            id: e.id,
                            result: WireResult::from(&snap),
                        });
                        // Grab anything else that is already ready.
                        drain_session(&mut e, &mut pending, &shared, &inner)
                    }
                    Some(StreamItem::Final(result, status)) => {
                        pending.push(terminal_frame(e.id, &WireResult::from(&result), &status));
                        if let Some(q) = &shared.quota {
                            q.release(0);
                        }
                        true
                    }
                    None => false,
                };
                if finished {
                    shared.prune_ticket(e.id);
                } else {
                    shared.sessions.lock().push(e);
                }
                if pending.is_empty() {
                    continue;
                }
            } else {
                // No sessions (or several — fall back to polling): nap
                // until the reader queues a control frame, with a short
                // cap so fresh snapshots are picked up.
                let q = shared.outbound.lock();
                if q.is_empty() {
                    let _ = shared.work.wait_timeout(q, Duration::from_millis(1));
                }
                continue;
            }
        }
        for f in &pending {
            if crate::frame::write_frame(&mut stream, f).is_err() {
                // Peer gone: cancel its sessions and stop both threads.
                teardown(&shared);
                return;
            }
        }
    }
}
