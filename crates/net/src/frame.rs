//! The wire format: length-prefixed binary frames, little-endian
//! throughout.
//!
//! ```text
//! frame    := len:u32 | body
//! body     := type:u8 | payload          (len counts the body)
//! str      := n:u16 | utf8[n]
//! gamespec := tag:u8 | params            (see GameSpec)
//! result   := seq:u64 | playouts:u64 | nodes:u64 | value:f32
//!           | n:u16 | visits:u32[n] | probs:f32[n]
//! ```
//!
//! Decoding is hardened against hostile input: the declared length is
//! checked against [`MAX_FRAME`]/`max_frame` **before** any allocation,
//! every read goes through the checked `try_*` cursor (truncation yields
//! [`DecodeError::Truncated`], never a panic), element counts are
//! verified against the bytes actually present before a vector is
//! sized, and unknown type/enum bytes come back as typed errors.

use bytes::{Buf, BufMut};
use mcts::SearchResult;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Protocol version carried in `Hello`/`Welcome`. A server answers a
/// mismatched `Hello` with `Error` and closes.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on a frame's declared body length. Nothing legitimate
/// comes close (the largest frame is a `Snapshot` for a big board:
/// a few KiB); a hostile 4 GiB length dies here before any allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Typed decode failure. Every malformed input maps to one of these —
/// the decoder has no panicking path and allocates nothing it has not
/// already seen bytes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the field it promised.
    Truncated,
    /// The length prefix exceeds the frame cap (or is zero).
    Oversized { declared: usize, max: usize },
    /// Unrecognized frame-type byte.
    UnknownType(u8),
    /// A field holds an out-of-range or malformed value (enum byte,
    /// UTF-8, board size, element count); the message names the field.
    BadValue(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame payload truncated"),
            DecodeError::Oversized { declared, max } => {
                write!(f, "declared frame length {declared} outside 1..={max}")
            }
            DecodeError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            DecodeError::BadValue(what) => write!(f, "bad field value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for io::Error {
    fn from(e: DecodeError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Which game a `Submit` plays, with its board parameters. Decoding
/// validates the parameter ranges (they mirror the game constructors'
/// asserts), so the server's game factory never sees an unbuildable spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GameSpec {
    TicTacToe,
    Connect4,
    Gomoku { size: u8, win: u8 },
    Othello { size: u8 },
    Hex { size: u8 },
}

impl GameSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            GameSpec::TicTacToe => out.put_u8(0),
            GameSpec::Connect4 => out.put_u8(1),
            GameSpec::Gomoku { size, win } => {
                out.put_u8(2);
                out.put_u8(size);
                out.put_u8(win);
            }
            GameSpec::Othello { size } => {
                out.put_u8(3);
                out.put_u8(size);
            }
            GameSpec::Hex { size } => {
                out.put_u8(4);
                out.put_u8(size);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let spec = match buf.try_get_u8().ok_or(DecodeError::Truncated)? {
            0 => GameSpec::TicTacToe,
            1 => GameSpec::Connect4,
            2 => {
                let size = buf.try_get_u8().ok_or(DecodeError::Truncated)?;
                let win = buf.try_get_u8().ok_or(DecodeError::Truncated)?;
                GameSpec::Gomoku { size, win }
            }
            3 => {
                let size = buf.try_get_u8().ok_or(DecodeError::Truncated)?;
                GameSpec::Othello { size }
            }
            4 => {
                let size = buf.try_get_u8().ok_or(DecodeError::Truncated)?;
                GameSpec::Hex { size }
            }
            _ => return Err(DecodeError::BadValue("game tag")),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Range-check the board parameters against what the constructors
    /// accept, so instantiating a validated spec cannot hit an assert.
    pub fn validate(&self) -> Result<(), DecodeError> {
        let ok = match *self {
            GameSpec::TicTacToe | GameSpec::Connect4 => true,
            GameSpec::Gomoku { size, win } => (2..=32).contains(&size) && win >= 2 && win <= size,
            GameSpec::Othello { size } => (4..=16).contains(&size) && size % 2 == 0,
            GameSpec::Hex { size } => (2..=19).contains(&size),
        };
        if ok {
            Ok(())
        } else {
            Err(DecodeError::BadValue("board parameters"))
        }
    }
}

/// Why the server bounced a `Submit` (the wire image of
/// [`serve::RejectReason`] plus the two front-end-only reasons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    RateLimited,
    QueueFull,
    TooLarge,
    Unhealthy,
    Draining,
    /// The *client's* per-connection quota, not the model's budget.
    QuotaExceeded,
    /// Malformed request (illegal move, terminal root, zero budget).
    BadRequest,
    /// A byte quota on arena memory: the session's arena would exceed
    /// its per-session quota (terminal — zero `retry_after_us`) or the
    /// model's aggregate byte budget is full (transient — bytes return
    /// as sessions finalize).
    OverMemory,
}

impl RejectCode {
    fn to_u8(self) -> u8 {
        match self {
            RejectCode::RateLimited => 0,
            RejectCode::QueueFull => 1,
            RejectCode::TooLarge => 2,
            RejectCode::Unhealthy => 3,
            RejectCode::Draining => 4,
            RejectCode::QuotaExceeded => 5,
            RejectCode::BadRequest => 6,
            RejectCode::OverMemory => 7,
        }
    }

    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        Ok(match v {
            0 => RejectCode::RateLimited,
            1 => RejectCode::QueueFull,
            2 => RejectCode::TooLarge,
            3 => RejectCode::Unhealthy,
            4 => RejectCode::Draining,
            5 => RejectCode::QuotaExceeded,
            6 => RejectCode::BadRequest,
            7 => RejectCode::OverMemory,
            _ => return Err(DecodeError::BadValue("reject code")),
        })
    }

    /// True for rejections worth retrying on this server after the
    /// carried hint (vs failing over or fixing the request).
    /// `OverMemory` is listed even though the per-session-quota flavor
    /// is terminal: the carried `retry_after_us` disambiguates (zero ⇒
    /// shrink the request instead of waiting), matching the serve
    /// layer's convention for `TooLarge`.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            RejectCode::RateLimited
                | RejectCode::QueueFull
                | RejectCode::Unhealthy
                | RejectCode::QuotaExceeded
                | RejectCode::OverMemory
        )
    }
}

impl From<serve::RejectReason> for RejectCode {
    fn from(r: serve::RejectReason) -> Self {
        match r {
            serve::RejectReason::RateLimited => RejectCode::RateLimited,
            serve::RejectReason::QueueFull => RejectCode::QueueFull,
            serve::RejectReason::TooLarge => RejectCode::TooLarge,
            serve::RejectReason::Unhealthy => RejectCode::Unhealthy,
            serve::RejectReason::Draining => RejectCode::Draining,
            serve::RejectReason::OverMemory => RejectCode::OverMemory,
        }
    }
}

/// How a session died (the wire image of [`mcts::SearchError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    Panicked,
    EvaluatorFailed,
    DeadlineExceeded,
    Cancelled,
    BackendUnavailable,
}

impl FailKind {
    fn to_u8(self) -> u8 {
        match self {
            FailKind::Panicked => 0,
            FailKind::EvaluatorFailed => 1,
            FailKind::DeadlineExceeded => 2,
            FailKind::Cancelled => 3,
            FailKind::BackendUnavailable => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        Ok(match v {
            0 => FailKind::Panicked,
            1 => FailKind::EvaluatorFailed,
            2 => FailKind::DeadlineExceeded,
            3 => FailKind::Cancelled,
            4 => FailKind::BackendUnavailable,
            _ => return Err(DecodeError::BadValue("failure kind")),
        })
    }
}

/// The searchable part of a [`SearchResult`] as it crosses the wire:
/// the snapshot sequence number, headline counters, root value, and the
/// per-action visit/probability vectors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireResult {
    pub seq: u64,
    pub playouts: u64,
    pub nodes: u64,
    pub value: f32,
    pub visits: Vec<u32>,
    pub probs: Vec<f32>,
}

impl From<&SearchResult> for WireResult {
    fn from(r: &SearchResult) -> Self {
        WireResult {
            seq: r.stats.seq,
            playouts: r.stats.playouts,
            nodes: r.stats.nodes,
            value: r.value,
            visits: r.visits.clone(),
            probs: r.probs.clone(),
        }
    }
}

impl WireResult {
    /// Action with the most visits (ties to the lowest index); `None`
    /// for an empty (pre-first-slice) result.
    pub fn best_action(&self) -> Option<u16> {
        self.visits
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .filter(|(_, &v)| v > 0)
            .map(|(a, _)| a as u16)
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64_le(self.seq);
        out.put_u64_le(self.playouts);
        out.put_u64_le(self.nodes);
        out.put_f32_le(self.value);
        let n = self.visits.len().min(u16::MAX as usize);
        out.put_u16_le(n as u16);
        for &v in &self.visits[..n] {
            out.put_u32_le(v);
        }
        for &p in &self.probs[..n.min(self.probs.len())] {
            out.put_f32_le(p);
        }
        for _ in self.probs.len()..n {
            out.put_f32_le(0.0);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let seq = buf.try_get_u64_le().ok_or(DecodeError::Truncated)?;
        let playouts = buf.try_get_u64_le().ok_or(DecodeError::Truncated)?;
        let nodes = buf.try_get_u64_le().ok_or(DecodeError::Truncated)?;
        let value = buf.try_get_f32_le().ok_or(DecodeError::Truncated)?;
        let n = buf.try_get_u16_le().ok_or(DecodeError::Truncated)? as usize;
        // The vectors claim 8n bytes: refuse before allocating if the
        // payload cannot possibly hold them.
        if buf.remaining() < n * 8 {
            return Err(DecodeError::Truncated);
        }
        let mut visits = Vec::with_capacity(n);
        for _ in 0..n {
            visits.push(buf.try_get_u32_le().ok_or(DecodeError::Truncated)?);
        }
        let mut probs = Vec::with_capacity(n);
        for _ in 0..n {
            probs.push(buf.try_get_f32_le().ok_or(DecodeError::Truncated)?);
        }
        Ok(WireResult {
            seq,
            playouts,
            nodes,
            value,
            visits,
            probs,
        })
    }
}

/// One protocol message, either direction. Client→server: `Hello`,
/// `Submit`, `Cancel`, `StatsReq`, `Goodbye`. Server→client: `Welcome`,
/// `Accepted`, `Reject`, `Snapshot`, `Final`, `Failed`, `StatsJson`,
/// `Error`.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Handshake opener; `token` authenticates the connection.
    Hello { proto: u32, token: String },
    /// Start a search. `id` is client-chosen and scopes every later
    /// frame about this session. `time_ms`/`max_nodes` of 0 mean
    /// "unbounded"/"inherit"; `priority` is 0 Low / 1 Normal / 2 High.
    Submit {
        id: u64,
        spec: GameSpec,
        moves: Vec<u16>,
        playouts: u64,
        time_ms: u64,
        max_nodes: u64,
        priority: u8,
    },
    /// Cancel a previously submitted session.
    Cancel { id: u64 },
    /// Ask for the cluster metrics dump.
    StatsReq,
    /// Clean close: the server tears the connection down without
    /// counting it as a fault.
    Goodbye,
    /// Handshake accepted.
    Welcome { proto: u32 },
    /// The submit was admitted and placed on `shard`; snapshots follow.
    Accepted { id: u64, shard: u32 },
    /// The submit was shed. `retry_after_us` is the back-off hint
    /// (zero for the terminal codes).
    Reject {
        id: u64,
        code: RejectCode,
        retry_after_us: u64,
    },
    /// A fresh anytime snapshot (`result.seq` strictly increases per
    /// session; superseded snapshots a slow link missed are shed,
    /// not queued).
    Snapshot { id: u64, result: WireResult },
    /// Terminal: the session ran its budget (`cancelled == false`) or
    /// honored a cancel (`true`). Exactly one terminal frame per
    /// accepted session.
    Final {
        id: u64,
        cancelled: bool,
        result: WireResult,
    },
    /// Terminal: the session died; carries the last good snapshot.
    Failed {
        id: u64,
        kind: FailKind,
        retry_after_us: u64,
        message: String,
    },
    /// The [`serve::ClusterStats::metrics_json`] dump.
    StatsJson { json: String },
    /// Protocol-level fault (bad handshake, malformed frame); the
    /// server closes after sending it.
    Error { message: String },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    let n = b.len().min(u16::MAX as usize);
    out.put_u16_le(n as u16);
    out.put_slice(&b[..n]);
}

fn get_str(buf: &mut &[u8]) -> Result<String, DecodeError> {
    let n = buf.try_get_u16_le().ok_or(DecodeError::Truncated)? as usize;
    let bytes = buf.try_take_bytes(n).ok_or(DecodeError::Truncated)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadValue("utf-8 string"))
}

impl Frame {
    /// Append the frame body (type byte + payload) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { proto, token } => {
                out.put_u8(0x01);
                out.put_u32_le(*proto);
                put_str(out, token);
            }
            Frame::Submit {
                id,
                spec,
                moves,
                playouts,
                time_ms,
                max_nodes,
                priority,
            } => {
                out.put_u8(0x02);
                out.put_u64_le(*id);
                spec.encode(out);
                let n = moves.len().min(u16::MAX as usize);
                out.put_u16_le(n as u16);
                for &m in &moves[..n] {
                    out.put_u16_le(m);
                }
                out.put_u64_le(*playouts);
                out.put_u64_le(*time_ms);
                out.put_u64_le(*max_nodes);
                out.put_u8(*priority);
            }
            Frame::Cancel { id } => {
                out.put_u8(0x03);
                out.put_u64_le(*id);
            }
            Frame::StatsReq => out.put_u8(0x04),
            Frame::Goodbye => out.put_u8(0x05),
            Frame::Welcome { proto } => {
                out.put_u8(0x81);
                out.put_u32_le(*proto);
            }
            Frame::Accepted { id, shard } => {
                out.put_u8(0x82);
                out.put_u64_le(*id);
                out.put_u32_le(*shard);
            }
            Frame::Reject {
                id,
                code,
                retry_after_us,
            } => {
                out.put_u8(0x83);
                out.put_u64_le(*id);
                out.put_u8(code.to_u8());
                out.put_u64_le(*retry_after_us);
            }
            Frame::Snapshot { id, result } => {
                out.put_u8(0x84);
                out.put_u64_le(*id);
                result.encode(out);
            }
            Frame::Final {
                id,
                cancelled,
                result,
            } => {
                out.put_u8(0x85);
                out.put_u64_le(*id);
                out.put_u8(u8::from(*cancelled));
                result.encode(out);
            }
            Frame::Failed {
                id,
                kind,
                retry_after_us,
                message,
            } => {
                out.put_u8(0x86);
                out.put_u64_le(*id);
                out.put_u8(kind.to_u8());
                out.put_u64_le(*retry_after_us);
                put_str(out, message);
            }
            Frame::StatsJson { json } => {
                out.put_u8(0x87);
                let b = json.as_bytes();
                let n = b.len().min(u32::MAX as usize);
                out.put_u32_le(n as u32);
                out.put_slice(&b[..n]);
            }
            Frame::Error { message } => {
                out.put_u8(0x88);
                put_str(out, message);
            }
        }
    }

    /// Decode a frame body (as framed by [`write_frame`]: type byte +
    /// payload, the length prefix already stripped and validated).
    /// Trailing bytes after the payload are a [`DecodeError::BadValue`]
    /// — a frame says exactly what it means.
    pub fn decode(body: &[u8]) -> Result<Frame, DecodeError> {
        let mut buf = body;
        let ty = buf.try_get_u8().ok_or(DecodeError::Truncated)?;
        let frame = match ty {
            0x01 => Frame::Hello {
                proto: buf.try_get_u32_le().ok_or(DecodeError::Truncated)?,
                token: get_str(&mut buf)?,
            },
            0x02 => {
                let id = buf.try_get_u64_le().ok_or(DecodeError::Truncated)?;
                let spec = GameSpec::decode(&mut buf)?;
                let n = buf.try_get_u16_le().ok_or(DecodeError::Truncated)? as usize;
                if buf.remaining() < n * 2 {
                    return Err(DecodeError::Truncated);
                }
                let mut moves = Vec::with_capacity(n);
                for _ in 0..n {
                    moves.push(buf.try_get_u16_le().ok_or(DecodeError::Truncated)?);
                }
                Frame::Submit {
                    id,
                    spec,
                    moves,
                    playouts: buf.try_get_u64_le().ok_or(DecodeError::Truncated)?,
                    time_ms: buf.try_get_u64_le().ok_or(DecodeError::Truncated)?,
                    max_nodes: buf.try_get_u64_le().ok_or(DecodeError::Truncated)?,
                    priority: buf.try_get_u8().ok_or(DecodeError::Truncated)?,
                }
            }
            0x03 => Frame::Cancel {
                id: buf.try_get_u64_le().ok_or(DecodeError::Truncated)?,
            },
            0x04 => Frame::StatsReq,
            0x05 => Frame::Goodbye,
            0x81 => Frame::Welcome {
                proto: buf.try_get_u32_le().ok_or(DecodeError::Truncated)?,
            },
            0x82 => Frame::Accepted {
                id: buf.try_get_u64_le().ok_or(DecodeError::Truncated)?,
                shard: buf.try_get_u32_le().ok_or(DecodeError::Truncated)?,
            },
            0x83 => Frame::Reject {
                id: buf.try_get_u64_le().ok_or(DecodeError::Truncated)?,
                code: RejectCode::from_u8(buf.try_get_u8().ok_or(DecodeError::Truncated)?)?,
                retry_after_us: buf.try_get_u64_le().ok_or(DecodeError::Truncated)?,
            },
            0x84 => Frame::Snapshot {
                id: buf.try_get_u64_le().ok_or(DecodeError::Truncated)?,
                result: WireResult::decode(&mut buf)?,
            },
            0x85 => Frame::Final {
                id: buf.try_get_u64_le().ok_or(DecodeError::Truncated)?,
                cancelled: match buf.try_get_u8().ok_or(DecodeError::Truncated)? {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError::BadValue("cancelled flag")),
                },
                result: WireResult::decode(&mut buf)?,
            },
            0x86 => Frame::Failed {
                id: buf.try_get_u64_le().ok_or(DecodeError::Truncated)?,
                kind: FailKind::from_u8(buf.try_get_u8().ok_or(DecodeError::Truncated)?)?,
                retry_after_us: buf.try_get_u64_le().ok_or(DecodeError::Truncated)?,
                message: get_str(&mut buf)?,
            },
            0x87 => {
                let n = buf.try_get_u32_le().ok_or(DecodeError::Truncated)? as usize;
                let bytes = buf.try_take_bytes(n).ok_or(DecodeError::Truncated)?;
                Frame::StatsJson {
                    json: String::from_utf8(bytes.to_vec())
                        .map_err(|_| DecodeError::BadValue("utf-8 string"))?,
                }
            }
            0x88 => Frame::Error {
                message: get_str(&mut buf)?,
            },
            other => return Err(DecodeError::UnknownType(other)),
        };
        if buf.remaining() != 0 {
            return Err(DecodeError::BadValue("trailing bytes"));
        }
        Ok(frame)
    }
}

/// The retry hint as it crosses the wire (µs, saturating).
pub fn duration_to_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Inverse of [`duration_to_us`].
pub fn us_to_duration(us: u64) -> Duration {
    Duration::from_micros(us)
}

/// Serialize one frame onto a stream: `len:u32` prefix then the body.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let mut body = Vec::with_capacity(64);
    frame.encode(&mut body);
    let mut msg = Vec::with_capacity(body.len() + 4);
    msg.put_u32_le(body.len() as u32);
    msg.put_slice(&body);
    w.write_all(&msg)
}

/// Blocking read of one complete frame (the client side, where waiting
/// is the point). Protocol violations surface as
/// `io::ErrorKind::InvalidData` wrapping the [`DecodeError`].
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> io::Result<Frame> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > max_frame {
        return Err(DecodeError::Oversized {
            declared: len,
            max: max_frame,
        }
        .into());
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Frame::decode(&body).map_err(Into::into)
}

/// What [`FrameReader::poll`] can fail with.
#[derive(Debug)]
pub enum ReadError {
    /// Peer closed the connection (EOF at any point).
    Eof,
    /// Transport fault (not `WouldBlock`/`TimedOut` — those are the
    /// reader's "nothing yet" and come back as `Ok(None)`).
    Io(io::Error),
    /// Well-framed garbage: typed decode failure.
    Decode(DecodeError),
}

/// Incremental frame reader for the server side: feed it a socket with
/// a read timeout and it accumulates bytes across timeouts, yielding a
/// frame only when one is complete. Between polls,
/// [`FrameReader::mid_frame`] says whether the peer has left a frame
/// half-written (the stall-detection signal).
pub struct FrameReader {
    max_frame: usize,
    buf: Vec<u8>,
    /// Total bytes wanted before the next decode step: 4 while the
    /// length prefix is incomplete, then 4 + body length.
    need: usize,
}

impl FrameReader {
    pub fn new(max_frame: usize) -> Self {
        FrameReader {
            max_frame,
            buf: Vec::with_capacity(256),
            need: 4,
        }
    }

    /// True when a frame is partially received (some bytes of the
    /// prefix or body have arrived but not all).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Bytes buffered toward the incomplete frame (stall detection
    /// compares this across polls to distinguish slow from dead).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pull bytes from `r` until a full frame is assembled, the read
    /// would block, or the stream errors. `Ok(None)` means "no complete
    /// frame yet" (timeout expired); call again later.
    pub fn poll(&mut self, r: &mut impl Read) -> Result<Option<Frame>, ReadError> {
        let mut chunk = [0u8; 4096];
        loop {
            if self.buf.len() >= self.need {
                if self.need == 4 {
                    let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
                    if len == 0 || len > self.max_frame {
                        return Err(ReadError::Decode(DecodeError::Oversized {
                            declared: len,
                            max: self.max_frame,
                        }));
                    }
                    self.need = 4 + len;
                    continue; // the body may already be buffered
                }
                let frame = Frame::decode(&self.buf[4..self.need]).map_err(ReadError::Decode)?;
                self.buf.drain(..self.need);
                self.need = 4;
                return Ok(Some(frame));
            }
            match r.read(&mut chunk) {
                Ok(0) => return Err(ReadError::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
    }
}
