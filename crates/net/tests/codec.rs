//! Frame-codec robustness: every frame type round-trips bit-exactly,
//! and truncated / corrupt / oversized input yields a typed
//! [`DecodeError`] — never a panic, never an allocation the bytes on
//! hand can't justify.

use net::frame::{read_frame, write_frame, FrameReader, ReadError};
use net::{DecodeError, FailKind, Frame, GameSpec, RejectCode, WireResult};
use proptest::collection;
use proptest::prelude::*;
use std::io::Cursor;

fn roundtrip(frame: Frame) -> Result<(), String> {
    let mut body = Vec::new();
    frame.encode(&mut body);
    let back = Frame::decode(&body).map_err(|e| format!("decode failed: {e}"))?;
    if back != frame {
        return Err(format!("roundtrip mismatch: {frame:?} vs {back:?}"));
    }
    // The framed path must agree with the raw-body path.
    let mut wire = Vec::new();
    write_frame(&mut wire, &frame).map_err(|e| format!("write: {e}"))?;
    let back = read_frame(&mut Cursor::new(wire), net::MAX_FRAME)
        .map_err(|e| format!("framed read failed: {e}"))?;
    if back != frame {
        return Err("framed roundtrip mismatch".into());
    }
    Ok(())
}

/// Every strict prefix of a valid body must decode to a typed error.
fn prefixes_fail(frame: &Frame) -> Result<(), String> {
    let mut body = Vec::new();
    frame.encode(&mut body);
    for k in 0..body.len() {
        if Frame::decode(&body[..k]).is_ok() {
            return Err(format!("prefix {k}/{} decoded: {frame:?}", body.len()));
        }
    }
    Ok(())
}

fn ascii(bytes: Vec<u8>) -> String {
    bytes.into_iter().map(|b| (32 + b % 95) as char).collect()
}

fn spec_from(tag: u8, a: u8, b: u8) -> GameSpec {
    match tag % 5 {
        0 => GameSpec::TicTacToe,
        1 => GameSpec::Connect4,
        2 => {
            let size = 2 + a % 31; // 2..=32
            GameSpec::Gomoku {
                size,
                win: 2 + b % (size - 1),
            }
        }
        3 => GameSpec::Othello {
            size: 4 + 2 * (a % 7),
        },
        _ => GameSpec::Hex { size: 2 + a % 18 },
    }
}

fn result_from(seq: u64, playouts: u64, value: f32, visits: Vec<u32>) -> WireResult {
    let probs = visits.iter().map(|&v| v as f32 / 100.0).collect();
    WireResult {
        seq,
        playouts,
        nodes: playouts / 2,
        value,
        visits,
        probs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn hello_roundtrips(proto in 0u32..u32::MAX, raw in collection::vec(0u8..255, 0..48)) {
        let f = Frame::Hello { proto, token: ascii(raw) };
        roundtrip(f.clone())?;
        prefixes_fail(&f)?;
    }

    #[test]
    fn submit_roundtrips(
        id in 0u64..u64::MAX,
        tag in 0u8..255,
        a in 0u8..255,
        b in 0u8..255,
        moves in collection::vec(0u16..512, 0..64),
        playouts in 1u64..10_000_000,
        time_ms in 0u64..100_000,
        max_nodes in 0u64..1_000_000,
        priority in 0u8..3,
    ) {
        let f = Frame::Submit {
            id,
            spec: spec_from(tag, a, b),
            moves,
            playouts,
            time_ms,
            max_nodes,
            priority,
        };
        roundtrip(f.clone())?;
        prefixes_fail(&f)?;
    }

    #[test]
    fn snapshot_and_final_roundtrip(
        id in 0u64..u64::MAX,
        seq in 0u64..1_000_000,
        playouts in 0u64..1_000_000,
        value in -1f32..1.0,
        visits in collection::vec(0u32..100_000, 0..128),
        cancelled in 0u8..2,
    ) {
        let result = result_from(seq, playouts, value, visits);
        let f = Frame::Snapshot { id, result: result.clone() };
        roundtrip(f.clone())?;
        prefixes_fail(&f)?;
        let f = Frame::Final { id, cancelled: cancelled == 1, result };
        roundtrip(f.clone())?;
        prefixes_fail(&f)?;
    }

    #[test]
    fn reject_and_failed_roundtrip(
        id in 0u64..u64::MAX,
        code in 0u8..8,
        kind in 0u8..5,
        retry in 0u64..u64::MAX,
        raw in collection::vec(0u8..255, 0..64),
    ) {
        let codes = [
            RejectCode::RateLimited, RejectCode::QueueFull, RejectCode::TooLarge,
            RejectCode::Unhealthy, RejectCode::Draining, RejectCode::QuotaExceeded,
            RejectCode::BadRequest, RejectCode::OverMemory,
        ];
        let kinds = [
            FailKind::Panicked, FailKind::EvaluatorFailed, FailKind::DeadlineExceeded,
            FailKind::Cancelled, FailKind::BackendUnavailable,
        ];
        let f = Frame::Reject { id, code: codes[code as usize], retry_after_us: retry };
        roundtrip(f.clone())?;
        prefixes_fail(&f)?;
        let f = Frame::Failed {
            id,
            kind: kinds[kind as usize],
            retry_after_us: retry,
            message: ascii(raw),
        };
        roundtrip(f.clone())?;
        prefixes_fail(&f)?;
    }

    #[test]
    fn control_frames_roundtrip(proto in 0u32..u32::MAX, id in 0u64..u64::MAX, shard in 0u32..64, raw in collection::vec(0u8..255, 0..96)) {
        for f in [
            Frame::Cancel { id },
            Frame::StatsReq,
            Frame::Goodbye,
            Frame::Welcome { proto },
            Frame::Accepted { id, shard },
            Frame::StatsJson { json: ascii(raw.clone()) },
            Frame::Error { message: ascii(raw) },
        ] {
            roundtrip(f.clone())?;
            prefixes_fail(&f)?;
        }
    }

    #[test]
    fn random_bytes_never_panic(bytes in collection::vec(0u8..255, 0..256)) {
        // Typed error or (rarely) a valid frame; never a panic.
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn corrupt_type_byte_is_typed(bytes in collection::vec(0u8..255, 1..64), ty in 0u8..255) {
        let mut body = bytes;
        body[0] = ty;
        let known = matches!(ty, 0x01..=0x05 | 0x81..=0x88);
        let decoded = Frame::decode(&body);
        if !known {
            prop_assert_eq!(decoded, Err(DecodeError::UnknownType(ty)));
        }
        // Known types with garbage payloads may decode or err — either
        // way the property is "no panic", which reaching here proves.
    }
}

#[test]
fn oversized_declared_length_is_refused_before_allocation() {
    // 4 GiB declared, 0 bytes delivered: both read paths must refuse
    // from the prefix alone.
    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    match read_frame(&mut Cursor::new(wire.clone()), net::MAX_FRAME) {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        Ok(f) => panic!("oversized frame decoded: {f:?}"),
    }
    let mut reader = FrameReader::new(net::MAX_FRAME);
    match reader.poll(&mut Cursor::new(wire)) {
        Err(ReadError::Decode(DecodeError::Oversized { declared, max })) => {
            assert_eq!(declared, u32::MAX as usize);
            assert_eq!(max, net::MAX_FRAME);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn zero_length_frame_is_refused() {
    let wire = 0u32.to_le_bytes().to_vec();
    assert!(read_frame(&mut Cursor::new(wire), net::MAX_FRAME).is_err());
}

#[test]
fn hostile_element_count_fails_without_huge_allocation() {
    // A Snapshot claiming 65535 visit entries backed by 2 bytes: the
    // count-vs-remaining check must fail before any vector is sized.
    let mut body = vec![0x84u8];
    body.extend_from_slice(&7u64.to_le_bytes()); // id
    body.extend_from_slice(&1u64.to_le_bytes()); // seq
    body.extend_from_slice(&1u64.to_le_bytes()); // playouts
    body.extend_from_slice(&1u64.to_le_bytes()); // nodes
    body.extend_from_slice(&0f32.to_le_bytes()); // value
    body.extend_from_slice(&u16::MAX.to_le_bytes()); // n = 65535
    body.extend_from_slice(&[0xAB, 0xCD]); // ...but only 2 bytes follow
    assert_eq!(Frame::decode(&body), Err(DecodeError::Truncated));
}

#[test]
fn trailing_garbage_is_refused() {
    let mut body = Vec::new();
    Frame::Goodbye.encode(&mut body);
    body.push(0x00);
    assert_eq!(
        Frame::decode(&body),
        Err(DecodeError::BadValue("trailing bytes"))
    );
}

#[test]
fn invalid_board_parameters_are_refused() {
    for body in [
        vec![0x02u8, 0, 0, 0, 0, 0, 0, 0, 0, 2, 40, 5], // gomoku size 40
        vec![0x02u8, 0, 0, 0, 0, 0, 0, 0, 0, 2, 9, 1],  // win length 1
        vec![0x02u8, 0, 0, 0, 0, 0, 0, 0, 0, 3, 7],     // odd othello board
        vec![0x02u8, 0, 0, 0, 0, 0, 0, 0, 0, 4, 25],    // hex size 25
        vec![0x02u8, 0, 0, 0, 0, 0, 0, 0, 0, 9],        // unknown game tag
    ] {
        match Frame::decode(&body) {
            Err(DecodeError::BadValue(_)) => {}
            other => panic!("spec {body:?} must be refused, got {other:?}"),
        }
    }
}

#[test]
fn frame_reader_reassembles_byte_dribble() {
    // Feed a valid frame one byte at a time through a reader whose
    // source yields a single byte per call: every intermediate poll is
    // Ok(None) with mid_frame() true, and the last yields the frame.
    let frame = Frame::Accepted { id: 42, shard: 3 };
    let mut wire = Vec::new();
    write_frame(&mut wire, &frame).unwrap();
    let mut reader = FrameReader::new(net::MAX_FRAME);
    for (i, &b) in wire.iter().enumerate() {
        let mut one = OneByte(Some(b));
        match reader.poll(&mut one) {
            Ok(Some(f)) => {
                assert_eq!(i, wire.len() - 1, "frame complete only at the last byte");
                assert_eq!(f, frame);
                return;
            }
            Ok(None) => assert!(reader.mid_frame(), "partial after byte {i}"),
            Err(e) => panic!("byte {i}: {e:?}"),
        }
    }
    panic!("frame never completed");
}

/// Reader yielding one byte then WouldBlock.
struct OneByte(Option<u8>);

impl std::io::Read for OneByte {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.0.take() {
            Some(b) => {
                buf[0] = b;
                Ok(1)
            }
            None => Err(std::io::ErrorKind::WouldBlock.into()),
        }
    }
}
