//! End-to-end protocol tests over real loopback sockets: submit /
//! ordered streaming / cancel / stats / multi-client interleaving /
//! graceful drain.

use net::{Client, Event, GameSpec, NetServer, Outcome, RejectCode, ServerConfig, WireRequest};
use serve::{AdmissionConfig, ClusterConfig, ServeCluster, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

fn cluster(shards: usize, admission: Option<AdmissionConfig>) -> Arc<ServeCluster> {
    Arc::new(ServeCluster::new(ClusterConfig {
        shards,
        shard: ServeConfig {
            workers: 2,
            step_quota: 64,
            ..Default::default()
        },
        admission,
    }))
}

fn open_admission() -> Option<AdmissionConfig> {
    Some(AdmissionConfig {
        playouts_per_sec: 1e9,
        burst_playouts: 1_000_000_000,
        max_pending: 1024,
        ..Default::default()
    })
}

fn request(playouts: u64) -> WireRequest {
    WireRequest::new(GameSpec::Gomoku { size: 9, win: 5 }).playouts(playouts)
}

#[test]
fn submit_streams_ordered_snapshots_then_exactly_one_final() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(2, open_admission()),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), "").unwrap();
    let id = client.submit(&request(2_000)).unwrap();

    let mut accepted = false;
    let mut terminals = 0;
    let mut last_seq = 0u64;
    let mut snapshots = 0;
    loop {
        let ev = client.recv().unwrap();
        assert_eq!(ev.id(), id);
        match ev {
            Event::Accepted { shard, .. } => {
                assert!(!accepted, "exactly one Accepted");
                assert!((shard as usize) < 2);
                accepted = true;
            }
            Event::Snapshot { result, .. } => {
                assert!(accepted, "Accepted precedes any snapshot");
                assert!(
                    result.seq > last_seq,
                    "monotonic seq: {} then {}",
                    last_seq,
                    result.seq
                );
                last_seq = result.seq;
                snapshots += 1;
            }
            Event::Final {
                cancelled, result, ..
            } => {
                assert!(accepted);
                assert!(!cancelled);
                assert_eq!(result.playouts, 2_000);
                assert!(result.seq >= last_seq);
                assert!(result.best_action().is_some());
                let probs_sum: f32 = result.probs.iter().sum();
                assert!(
                    (probs_sum - 1.0).abs() < 1e-3,
                    "probs normalized: {probs_sum}"
                );
                terminals += 1;
                break;
            }
            other => panic!("unexpected event: {other:?}"),
        }
    }
    assert_eq!(terminals, 1);
    assert!(snapshots >= 1, "a 2k-playout session publishes snapshots");
    let stats = server.stats();
    assert_eq!(stats.submits, 1);
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.rejected, 0);
    assert!(stats.snapshots_sent >= 1);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn cancel_mid_run_yields_cancelled_final() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(1, open_admission()),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), "").unwrap();
    // A budget far too large to finish quickly, so the cancel wins.
    let id = client.submit(&request(5_000_000)).unwrap();
    // Wait for admission, then one snapshot, then cancel.
    loop {
        match client.recv().unwrap() {
            Event::Accepted { .. } => {}
            Event::Snapshot { .. } => break,
            other => panic!("unexpected: {other:?}"),
        }
    }
    client.cancel(id).unwrap();
    match client.wait_outcome(id).unwrap() {
        Outcome::Cancelled(partial) => {
            assert!(partial.playouts < 5_000_000, "stopped early");
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_eq!(server.stats().cancels, 1);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn stats_roundtrip_returns_cluster_metrics() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(1, open_admission()),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), "").unwrap();
    let id = client.submit(&request(300)).unwrap();
    assert!(matches!(client.wait_outcome(id).unwrap(), Outcome::Done(_)));
    let json = client.stats().unwrap();
    for key in [
        "\"admitted\":",
        "\"shed\":",
        "\"draining\":",
        "\"sessions\":",
    ] {
        assert!(json.contains(key), "metrics dump missing {key}: {json}");
    }
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn sessions_multiplex_on_one_connection() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(2, open_admission()),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), "").unwrap();
    let ids: Vec<u64> = (0..4)
        .map(|_| client.submit(&request(800)).unwrap())
        .collect();
    for &id in &ids {
        match client.wait_outcome(id).unwrap() {
            Outcome::Done(result) => assert_eq!(result.playouts, 800),
            other => panic!("session {id}: {other:?}"),
        }
    }
    assert_eq!(server.stats().admitted, 4);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn concurrent_clients_each_get_their_own_stream() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(2, open_admission()),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(move || {
                let mut client = Client::connect(addr, "").unwrap();
                let id = client.submit(&request(600)).unwrap();
                match client.wait_outcome(id).unwrap() {
                    Outcome::Done(result) => assert_eq!(result.playouts, 600),
                    other => panic!("{other:?}"),
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.accepted, 8);
    assert_eq!(stats.admitted, 8);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn cluster_shedding_maps_to_reject_with_retry_hint() {
    // Tiny token bucket: the first oversized-ish submit drains it, the
    // second is shed with RateLimited and an honest nonzero hint.
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(
            1,
            Some(AdmissionConfig {
                playouts_per_sec: 10.0,
                burst_playouts: 1_000,
                max_pending: 64,
                ..Default::default()
            }),
        ),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), "").unwrap();
    let a = client.submit(&request(1_000)).unwrap();
    let b = client.submit(&request(1_000)).unwrap();
    match client.wait_outcome(b).unwrap() {
        Outcome::Rejected { code, retry_after } => {
            assert_eq!(code, RejectCode::RateLimited);
            assert!(
                retry_after > Duration::ZERO,
                "transient shed carries a hint"
            );
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert!(matches!(client.wait_outcome(a).unwrap(), Outcome::Done(_)));
    let stats = server.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.admitted, 1);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn oversized_budget_is_too_large() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(1, open_admission()),
        ServerConfig {
            max_playouts: 10_000,
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), "").unwrap();
    let id = client.submit(&request(10_001)).unwrap();
    match client.wait_outcome(id).unwrap() {
        Outcome::Rejected { code, retry_after } => {
            assert_eq!(code, RejectCode::TooLarge);
            assert_eq!(retry_after, Duration::ZERO, "no wait helps");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn bad_requests_are_rejected_not_fatal() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(1, open_admission()),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), "").unwrap();
    // Illegal move prefix: square 0 played twice.
    let bad = WireRequest::new(GameSpec::TicTacToe)
        .moves(vec![0, 0])
        .playouts(100);
    let id = client.submit(&bad).unwrap();
    match client.wait_outcome(id).unwrap() {
        Outcome::Rejected { code, .. } => assert_eq!(code, RejectCode::BadRequest),
        other => panic!("{other:?}"),
    }
    // The connection survives: a good request still works.
    let id = client.submit(&request(200)).unwrap();
    assert!(matches!(client.wait_outcome(id).unwrap(), Outcome::Done(_)));
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn shutdown_drains_then_rejects_as_draining() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(1, open_admission()),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr, "").unwrap();
    let id = client.submit(&request(1_500)).unwrap();
    // Don't race the drain gate: wait until the session is admitted.
    match client.recv().unwrap() {
        Event::Accepted { .. } | Event::Snapshot { .. } => {}
        other => panic!("{other:?}"),
    }
    // Drain with a generous timeout: the in-flight session finishes and
    // its Final frame is delivered before the socket closes.
    let report = server.shutdown(Duration::from_secs(30));
    assert!(report.drained, "{report:?}");
    assert_eq!(report.cancelled, 0);
    match client.wait_outcome(id).unwrap() {
        Outcome::Done(result) => assert_eq!(result.playouts, 1_500),
        other => panic!("{other:?}"),
    }
    // The cluster no longer admits; accounting is back to zero.
    assert_eq!(server.cluster().pending_sessions(), 0);
    assert!(server.cluster().is_draining());
}
