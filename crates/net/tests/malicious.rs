//! Hostile and broken clients: half-written frames, bad credentials,
//! quota abuse, mid-stream disconnects. The server must contain each
//! one — close the offending connection, refuse the request, free the
//! admission slot — without disturbing well-behaved neighbours.

use net::frame::{read_frame, write_frame};
use net::{
    Client, Frame, GameSpec, NetServer, Outcome, RejectCode, ServerConfig, WireRequest,
    PROTOCOL_VERSION,
};
use serve::{AdmissionConfig, ClusterConfig, ServeCluster, ServeConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cluster() -> Arc<ServeCluster> {
    Arc::new(ServeCluster::new(ClusterConfig {
        shards: 1,
        shard: ServeConfig {
            workers: 2,
            step_quota: 64,
            ..Default::default()
        },
        admission: Some(AdmissionConfig {
            playouts_per_sec: 1e9,
            burst_playouts: 1_000_000_000,
            max_pending: 1024,
            ..Default::default()
        }),
    }))
}

fn request(playouts: u64) -> WireRequest {
    WireRequest::new(GameSpec::Gomoku { size: 9, win: 5 }).playouts(playouts)
}

#[test]
fn half_frame_then_hang_is_stalled_out_without_collateral() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(),
        ServerConfig {
            stall_timeout: Duration::from_millis(200),
            handshake_timeout: Duration::from_secs(5),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Raw socket: complete the handshake, then write a frame header
    // promising 100 bytes, deliver 3, and go silent.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut raw,
        &Frame::Hello {
            proto: PROTOCOL_VERSION,
            token: String::new(),
        },
    )
    .unwrap();
    let welcome = read_frame(&mut raw, net::MAX_FRAME).unwrap();
    assert!(matches!(welcome, Frame::Welcome { .. }));
    raw.write_all(&100u32.to_le_bytes()).unwrap();
    raw.write_all(&[0x02, 0xAA, 0xBB]).unwrap();
    raw.flush().unwrap();

    // A well-behaved neighbour is unaffected while the stall clock runs.
    let mut good = Client::connect(addr, "").unwrap();
    let id = good.submit(&request(400)).unwrap();
    assert!(matches!(good.wait_outcome(id).unwrap(), Outcome::Done(_)));

    // The stalled connection gets closed and counted.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().stalls == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stats();
    assert_eq!(stats.stalls, 1, "{stats:?}");
    assert_eq!(stats.admitted, 1);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn wrong_auth_token_is_refused_at_handshake() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(),
        ServerConfig {
            auth_token: Some("sesame".into()),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let err = match Client::connect(addr, "not-sesame") {
        Err(e) => e,
        Ok(_) => panic!("wrong token must not connect"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);

    // The right token still gets in on the same server.
    let mut good = Client::connect(addr, "sesame").unwrap();
    let id = good.submit(&request(300)).unwrap();
    assert!(matches!(good.wait_outcome(id).unwrap(), Outcome::Done(_)));

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().auth_failures == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().auth_failures, 1);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn malformed_frame_after_handshake_closes_the_connection() {
    let mut server = NetServer::bind("127.0.0.1:0", cluster(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut raw,
        &Frame::Hello {
            proto: PROTOCOL_VERSION,
            token: String::new(),
        },
    )
    .unwrap();
    read_frame(&mut raw, net::MAX_FRAME).unwrap();
    // Valid length prefix, unknown frame type.
    raw.write_all(&1u32.to_le_bytes()).unwrap();
    raw.write_all(&[0xEE]).unwrap();
    raw.flush().unwrap();

    // The server answers with an Error frame and then closes.
    let reply = read_frame(&mut raw, net::MAX_FRAME).unwrap();
    assert!(matches!(reply, Frame::Error { .. }), "{reply:?}");
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().decode_errors == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.stats().decode_errors >= 1);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn quota_exceeded_client_sees_reject_with_nonzero_retry_hint() {
    // Per-connection quota far below the cluster's: the second in-flight
    // session from one client trips it while the cluster stays open.
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster(),
        ServerConfig {
            client_quota: Some(AdmissionConfig {
                playouts_per_sec: 100.0,
                burst_playouts: 1_000,
                max_pending: 8,
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), "").unwrap();
    let a = client.submit(&request(1_000)).unwrap();
    let b = client.submit(&request(1_000)).unwrap();
    match client.wait_outcome(b).unwrap() {
        Outcome::Rejected { code, retry_after } => {
            assert_eq!(code, RejectCode::QuotaExceeded);
            assert!(
                retry_after > Duration::ZERO,
                "quota shed must carry an honest nonzero hint"
            );
        }
        other => panic!("expected quota Reject, got {other:?}"),
    }
    assert!(matches!(client.wait_outcome(a).unwrap(), Outcome::Done(_)));

    // A second connection has its own bucket and is not penalised.
    let mut other = Client::connect(server.local_addr(), "").unwrap();
    let id = other.submit(&request(1_000)).unwrap();
    assert!(matches!(other.wait_outcome(id).unwrap(), Outcome::Done(_)));

    let stats = server.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.admitted, 2);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn disconnect_mid_stream_frees_session_and_admission_slot() {
    let mut server = NetServer::bind("127.0.0.1:0", cluster(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    {
        let mut client = Client::connect(addr, "").unwrap();
        // Big enough to still be running when the socket drops (but
        // under the server's max_playouts cap).
        let _ = client.submit(&request(9_000_000)).unwrap();
        // Wait until it is actually in flight.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.cluster().in_flight() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.cluster().in_flight(), 1);
        assert_eq!(server.cluster().pending_sessions(), 1);
        // Drop without Goodbye: simulates a crashed client.
    }

    // The server notices the dead socket, cancels the orphan session,
    // and the admission accounting unwinds to zero — no slot leak.
    let deadline = Instant::now() + Duration::from_secs(10);
    while (server.cluster().pending_sessions() > 0 || server.cluster().in_flight() > 0)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        server.cluster().pending_sessions(),
        0,
        "admission slot leaked: in_flight={} stats={:?}",
        server.cluster().in_flight(),
        server.stats()
    );
    assert_eq!(server.cluster().in_flight(), 0, "session leaked");

    // The freed capacity is immediately reusable.
    let mut next = Client::connect(addr, "").unwrap();
    let id = next.submit(&request(300)).unwrap();
    assert!(matches!(next.wait_outcome(id).unwrap(), Outcome::Done(_)));
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn submit_before_hello_is_refused() {
    let mut server = NetServer::bind("127.0.0.1:0", cluster(), ServerConfig::default()).unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    // Skip the handshake entirely and try to submit.
    write_frame(
        &mut raw,
        &Frame::Submit {
            id: 1,
            spec: GameSpec::TicTacToe,
            moves: vec![],
            playouts: 100,
            time_ms: 0,
            max_nodes: 0,
            priority: 1,
        },
    )
    .unwrap();
    let reply = read_frame(&mut raw, net::MAX_FRAME).unwrap();
    assert!(matches!(reply, Frame::Error { .. }), "{reply:?}");
    assert_eq!(server.stats().admitted, 0);
    server.shutdown(Duration::from_secs(5));
}
