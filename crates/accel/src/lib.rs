//! Simulated DNN-inference accelerator ("GPU") for the adaptive-parallel
//! DNN-MCTS reproduction.
//!
//! The paper offloads batched node evaluations to an NVIDIA A6000 over
//! PCIe 4.0 (§3.3). This environment has no GPU, so this crate implements a
//! behavioural substitute that preserves the two properties the paper's
//! design exploration depends on:
//!
//! 1. **Batching amortizes a fixed per-submission cost.** Every batch
//!    submission pays a modeled kernel-launch latency plus a PCIe transfer
//!    latency `bytes / bandwidth`, then the batch is computed at a modeled
//!    per-sample compute rate that improves with batch size (up to a
//!    saturation point), exactly the monotone pieces of the paper's Eq. 6.
//! 2. **Requests are decoupled from completion.** Clients submit
//!    evaluation requests into a queue ([`Device::submit`]) and block on a
//!    completion handle, so a master thread (local-tree scheme) can keep
//!    producing in-tree work while inference is "on the device", and
//!    worker threads (shared-tree scheme) naturally form full batches.
//!
//! The *numerical* results are exact: the device executes the real
//! [`nn::PolicyValueNet`] on the submitted inputs; only the *timing* is
//! simulated (optionally — zero latency parameters make it a plain batched
//! CPU evaluator).

pub mod device;
pub mod latency;

pub use device::{
    BatchModel, Device, DeviceClient, DeviceConfig, DeviceStats, EvalRequest, EvalResponse,
    ReplyTo, TaggedResponse,
};
pub use latency::LatencyModel;
