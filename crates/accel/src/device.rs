//! The accelerator device: a background thread that consumes evaluation
//! requests from a queue, assembles batches, and runs the policy-value
//! network on them.
//!
//! This is the executable form of the paper's §3.3: "a dedicated
//! accelerator queue for accumulating DNN inference task requests … when
//! the queue size reaches a predetermined threshold, all tasks are
//! submitted together to the GPU". A flush timeout guarantees liveness at
//! the end of a move when fewer than `batch_size` requests remain.

use crate::latency::LatencyModel;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use nn::resnet::ResNetPolicyValueNet;
use nn::PolicyValueNet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tensor::Tensor;

/// A policy-value model the device can serve: anything that maps a batch
/// of encoded states to (softmax policies, values). Implemented for both
/// network architectures in `nn`; custom models can plug in too.
pub trait BatchModel: Send + Sync + 'static {
    /// Input sample shape `(channels, h, w)`.
    fn input_shape(&self) -> (usize, usize, usize);

    /// Policy output width.
    fn actions(&self) -> usize;

    /// Batched inference: `x` is `[b, c, h, w]`; returns softmax policies
    /// `[b, actions]` and values `[b, 1]`. Must be pure and thread-safe.
    fn predict_batch(&self, x: &Tensor) -> (Tensor, Tensor);
}

impl BatchModel for PolicyValueNet {
    fn input_shape(&self) -> (usize, usize, usize) {
        (self.config.in_c, self.config.h, self.config.w)
    }
    fn actions(&self) -> usize {
        self.config.actions
    }
    fn predict_batch(&self, x: &Tensor) -> (Tensor, Tensor) {
        self.predict(x)
    }
}

impl BatchModel for ResNetPolicyValueNet {
    fn input_shape(&self) -> (usize, usize, usize) {
        (self.config.in_c, self.config.h, self.config.w)
    }
    fn actions(&self) -> usize {
        self.config.actions
    }
    fn predict_batch(&self, x: &Tensor) -> (Tensor, Tensor) {
        self.predict(x)
    }
}

/// Where the device delivers a finished evaluation.
pub enum ReplyTo {
    /// Dedicated single-use channel (the blocking [`Device::evaluate`] /
    /// [`Device::submit`] path).
    Single(Sender<EvalResponse>),
    /// Shared completion queue: many in-flight requests from one client
    /// funnel into one channel, distinguished by their tag. This is the
    /// native async path ([`Device::submit_tagged`], [`DeviceClient`]).
    Shared(Sender<TaggedResponse>),
}

/// One inference request: an encoded state and a reply route.
pub struct EvalRequest {
    /// Flattened `[c, h, w]` network input.
    pub input: Vec<f32>,
    /// Caller-chosen identifier echoed back with the result.
    pub tag: u64,
    /// Where the device sends the result.
    pub reply: ReplyTo,
    /// When the request entered the queue (drives wait-time statistics).
    pub enqueued: Instant,
}

/// The result of evaluating one state.
#[derive(Debug, Clone)]
pub struct EvalResponse {
    /// Softmax policy over the full action space.
    pub priors: Vec<f32>,
    /// Value estimate in `[-1, 1]` for the player to move.
    pub value: f32,
}

/// A completion flowing back through a shared reply queue.
#[derive(Debug, Clone)]
pub struct TaggedResponse {
    /// The tag passed to [`Device::submit_tagged`].
    pub tag: u64,
    /// The evaluation result.
    pub response: EvalResponse,
}

/// Device configuration.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Batch-assembly threshold `B`. Submissions are grouped until this
    /// many requests are queued (or the flush timeout fires).
    pub batch_size: usize,
    /// Maximum time to wait for a batch to fill before flushing a partial
    /// batch. Guarantees liveness when producers stall.
    pub flush_timeout: Duration,
    /// Link/compute latency model.
    pub latency: LatencyModel,
    /// If true, the device thread sleeps for the modeled transfer time of
    /// each batch before computing, emulating PCIe + kernel-launch cost in
    /// real time. (Compute itself is the real network forward pass.)
    pub inject_transfer_latency: bool,
    /// Number of concurrent device execution streams (the paper's `N/B`
    /// CUDA streams, §3.3): each stream assembles and executes batches
    /// independently, so transfers of one batch overlap compute of
    /// another.
    pub streams: usize,
}

impl DeviceConfig {
    /// Zero-latency config with the given threshold (tests, CPU baseline).
    pub fn instant(batch_size: usize) -> Self {
        DeviceConfig {
            batch_size,
            flush_timeout: Duration::from_micros(200),
            latency: LatencyModel::zero(),
            inject_transfer_latency: false,
            streams: 1,
        }
    }
}

/// Counters exported by the device (all monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStats {
    /// Number of batches executed.
    pub batches: u64,
    /// Number of samples evaluated.
    pub samples: u64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// Total busy time of the device thread, nanoseconds.
    pub busy_ns: u64,
    /// Batches released by the flush timeout rather than reaching the
    /// threshold — a high ratio signals the producer is too slow for the
    /// configured `B` (§3.3's "GPU waits for the CPU" regime).
    pub timeout_flushes: u64,
    /// Total time requests spent queued before their batch launched, ns.
    pub wait_ns_total: u64,
}

impl DeviceStats {
    /// Mean executed batch size.
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.samples as f64 / self.batches as f64
        }
    }

    /// Mean per-request queue wait, nanoseconds.
    pub fn avg_wait_ns(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.wait_ns_total as f64 / self.samples as f64
        }
    }
}

#[derive(Default)]
struct StatsInner {
    batches: AtomicU64,
    samples: AtomicU64,
    max_batch: AtomicU64,
    busy_ns: AtomicU64,
    timeout_flushes: AtomicU64,
    wait_ns_total: AtomicU64,
}

/// A handle to the background accelerator. Cloneable; the device thread
/// stops when the last handle is dropped.
pub struct Device {
    tx: Sender<EvalRequest>,
    batch_size: Arc<AtomicUsize>,
    stats: Arc<StatsInner>,
    handles: Vec<JoinHandle<()>>,
    input_len: usize,
    action_space: usize,
}

impl Device {
    /// Spawn the device stream thread(s) serving `net` (the paper's
    /// 5-conv/3-FC network).
    pub fn new(net: Arc<PolicyValueNet>, config: DeviceConfig) -> Self {
        Self::with_model(net as Arc<dyn BatchModel>, config)
    }

    /// Spawn the device serving any [`BatchModel`] (e.g. the residual
    /// tower, or a custom user model).
    pub fn with_model(net: Arc<dyn BatchModel>, config: DeviceConfig) -> Self {
        assert!(config.batch_size >= 1, "batch size must be >= 1");
        assert!(config.streams >= 1, "need at least one stream");
        let (tx, rx) = unbounded::<EvalRequest>();
        let batch_size = Arc::new(AtomicUsize::new(config.batch_size));
        let stats = Arc::new(StatsInner::default());
        let (in_c, h, w) = net.input_shape();
        let input_len = in_c * h * w;
        let action_space = net.actions();

        let handles = (0..config.streams)
            .map(|i| {
                let net = Arc::clone(&net);
                let rx = rx.clone();
                let config = config.clone();
                let thread_batch = Arc::clone(&batch_size);
                let thread_stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("accel-stream-{i}"))
                    .spawn(move || device_loop(net, rx, config, thread_batch, thread_stats))
                    .expect("spawn device stream")
            })
            .collect();

        Device {
            tx,
            batch_size,
            stats,
            handles,
            input_len,
            action_space,
        }
    }

    /// Enqueue a request; returns the completion channel.
    pub fn submit(&self, input: Vec<f32>) -> Receiver<EvalResponse> {
        assert_eq!(input.len(), self.input_len, "input length mismatch");
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(EvalRequest {
                input,
                tag: 0,
                reply: ReplyTo::Single(reply_tx),
                enqueued: Instant::now(),
            })
            .expect("device thread alive");
        reply_rx
    }

    /// Enqueue a request without blocking and without a dedicated reply
    /// channel: the completion is delivered as a [`TaggedResponse`] on
    /// `reply`. One submitting thread can keep arbitrarily many requests
    /// in flight and drain completions in arrival order — the paper's
    /// §3.3 queue discipline without a blocked OS thread per request.
    pub fn submit_tagged(&self, tag: u64, input: Vec<f32>, reply: &Sender<TaggedResponse>) {
        assert_eq!(input.len(), self.input_len, "input length mismatch");
        self.tx
            .send(EvalRequest {
                input,
                tag,
                reply: ReplyTo::Shared(reply.clone()),
                enqueued: Instant::now(),
            })
            .expect("device thread alive");
    }

    /// Submit and block for the result (convenience for worker threads).
    pub fn evaluate(&self, input: Vec<f32>) -> EvalResponse {
        self.submit(input).recv().expect("device reply")
    }

    /// Open an async submit/poll handle on this device.
    pub fn client(self: &Arc<Self>) -> DeviceClient {
        DeviceClient::new(Arc::clone(self))
    }

    /// Current batch-assembly threshold.
    pub fn batch_size(&self) -> usize {
        self.batch_size.load(Ordering::Relaxed)
    }

    /// Retune the batch threshold at runtime (used by Algorithm 4 search).
    pub fn set_batch_size(&self, b: usize) {
        assert!(b >= 1);
        self.batch_size.store(b, Ordering::Relaxed);
    }

    /// Snapshot of device counters.
    pub fn stats(&self) -> DeviceStats {
        DeviceStats {
            batches: self.stats.batches.load(Ordering::Relaxed),
            samples: self.stats.samples.load(Ordering::Relaxed),
            max_batch: self.stats.max_batch.load(Ordering::Relaxed),
            busy_ns: self.stats.busy_ns.load(Ordering::Relaxed),
            timeout_flushes: self.stats.timeout_flushes.load(Ordering::Relaxed),
            wait_ns_total: self.stats.wait_ns_total.load(Ordering::Relaxed),
        }
    }

    /// Length of a flattened input sample.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Size of the policy output.
    pub fn action_space(&self) -> usize {
        self.action_space
    }
}

/// Async submit/poll handle over a [`Device`]: one owner thread keeps
/// many evaluations in flight through the shared device queue and drains
/// completions in arrival order, instead of parking one OS thread per
/// outstanding request. The device batches across *all* clients and
/// blocking submitters, so a single client still benefits from
/// cross-request batching.
pub struct DeviceClient {
    device: Arc<Device>,
    reply_tx: Sender<TaggedResponse>,
    reply_rx: Receiver<TaggedResponse>,
    outstanding: usize,
}

impl DeviceClient {
    /// Open a handle (usually via [`Device::client`]).
    pub fn new(device: Arc<Device>) -> Self {
        let (reply_tx, reply_rx) = unbounded();
        DeviceClient {
            device,
            reply_tx,
            reply_rx,
            outstanding: 0,
        }
    }

    /// Fire-and-forget submission; the result arrives via `try_poll`/
    /// `poll` carrying `tag`.
    pub fn submit(&mut self, tag: u64, input: Vec<f32>) {
        self.device.submit_tagged(tag, input, &self.reply_tx);
        self.outstanding += 1;
    }

    /// Non-blocking completion check.
    pub fn try_poll(&mut self) -> Option<TaggedResponse> {
        match self.reply_rx.try_recv() {
            Ok(t) => {
                self.outstanding -= 1;
                Some(t)
            }
            Err(_) => None,
        }
    }

    /// Block until the next completion. Panics if nothing is in flight
    /// (that wait could never end).
    pub fn poll(&mut self) -> TaggedResponse {
        assert!(self.outstanding > 0, "poll with nothing in flight");
        let t = self.reply_rx.recv().expect("device streams alive");
        self.outstanding -= 1;
        t
    }

    /// Requests submitted but not yet polled.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }
}

impl Drop for Device {
    fn drop(&mut self) {
        // Closing the channel makes the device loop exit after draining.
        let (closed_tx, _) = unbounded();
        drop(std::mem::replace(&mut self.tx, closed_tx));
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn device_loop(
    net: Arc<dyn BatchModel>,
    rx: Receiver<EvalRequest>,
    config: DeviceConfig,
    batch_size: Arc<AtomicUsize>,
    stats: Arc<StatsInner>,
) {
    let (in_c, h, w) = net.input_shape();
    let sample_len = in_c * h * w;
    let mut batch: Vec<EvalRequest> = Vec::new();

    loop {
        // Block for the first request of the next batch.
        match rx.recv() {
            Ok(req) => batch.push(req),
            Err(_) => return, // all handles dropped
        }
        // Assemble up to the (dynamic) threshold, bounded by the flush
        // timeout so stalled producers can't deadlock consumers.
        let threshold = batch_size.load(Ordering::Relaxed).max(1);
        let deadline = Instant::now() + config.flush_timeout;
        while batch.len() < threshold {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(req) => batch.push(req),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if batch.len() < threshold {
            stats.timeout_flushes.fetch_add(1, Ordering::Relaxed);
        }

        let started = Instant::now();
        for req in &batch {
            let waited = started.duration_since(req.enqueued).as_nanos() as u64;
            stats.wait_ns_total.fetch_add(waited, Ordering::Relaxed);
        }
        if config.inject_transfer_latency {
            let ns = config.latency.transfer_ns(batch.len());
            std::thread::sleep(LatencyModel::to_duration(ns));
        }

        // Pack the batch and run the real network.
        let b = batch.len();
        let mut flat = Vec::with_capacity(b * sample_len);
        for req in &batch {
            flat.extend_from_slice(&req.input);
        }
        let x = Tensor::from_vec(flat, &[b, in_c, h, w]);
        let (pi, v) = net.predict_batch(&x);

        // Update counters BEFORE delivering replies: a client that
        // returns from recv() must observe its own request in the stats.
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.samples.fetch_add(b as u64, Ordering::Relaxed);
        stats.max_batch.fetch_max(b as u64, Ordering::Relaxed);
        stats
            .busy_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);

        for (i, req) in batch.drain(..).enumerate() {
            let priors = pi.row(i).to_vec();
            let value = v.data()[i];
            let response = EvalResponse { priors, value };
            // A dropped receiver just means the client gave up; ignore.
            match req.reply {
                ReplyTo::Single(tx) => {
                    let _ = tx.send(response);
                }
                ReplyTo::Shared(tx) => {
                    let _ = tx.send(TaggedResponse {
                        tag: req.tag,
                        response,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::NetConfig;

    fn tiny_device(batch: usize) -> (Device, Arc<PolicyValueNet>) {
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 3));
        let dev = Device::new(Arc::clone(&net), DeviceConfig::instant(batch));
        (dev, net)
    }

    #[test]
    fn single_request_roundtrip() {
        let (dev, net) = tiny_device(1);
        let input = vec![0.5f32; dev.input_len()];
        let resp = dev.evaluate(input.clone());
        assert_eq!(resp.priors.len(), 9);
        assert!((resp.priors.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        // Must match a direct forward pass exactly.
        let x = Tensor::from_vec(input, &[1, 4, 3, 3]);
        let (pi, v) = net.predict(&x);
        for (a, b) in resp.priors.iter().zip(pi.row(0)) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!((resp.value - v.data()[0]).abs() < 1e-6);
    }

    #[test]
    fn batched_results_match_individual() {
        let (dev, net) = tiny_device(4);
        let inputs: Vec<Vec<f32>> = (0..4)
            .map(|i| {
                (0..dev.input_len())
                    .map(|j| ((i * 31 + j) % 7) as f32 / 7.0)
                    .collect()
            })
            .collect();
        let rxs: Vec<_> = inputs.iter().map(|inp| dev.submit(inp.clone())).collect();
        for (inp, rx) in inputs.iter().zip(rxs) {
            let resp = rx.recv().unwrap();
            let x = Tensor::from_vec(inp.clone(), &[1, 4, 3, 3]);
            let (pi, v) = net.predict(&x);
            for (a, b) in resp.priors.iter().zip(pi.row(0)) {
                assert!((a - b).abs() < 1e-4, "batched vs single priors differ");
            }
            assert!((resp.value - v.data()[0]).abs() < 1e-4);
        }
    }

    #[test]
    fn batches_are_actually_formed() {
        let (dev, _) = tiny_device(8);
        let rxs: Vec<_> = (0..8)
            .map(|_| dev.submit(vec![0.0; dev.input_len()]))
            .collect();
        for rx in rxs {
            rx.recv().unwrap();
        }
        let s = dev.stats();
        assert_eq!(s.samples, 8);
        assert!(
            s.batches <= 4,
            "expected batching, got {} batches",
            s.batches
        );
        assert!(s.max_batch >= 2);
    }

    #[test]
    fn flush_timeout_preserves_liveness() {
        // Threshold 64 but only one request: the flush must release it.
        let (dev, _) = tiny_device(64);
        let t0 = Instant::now();
        let _ = dev.evaluate(vec![0.0; dev.input_len()]);
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn runtime_batch_retune() {
        let (dev, _) = tiny_device(2);
        assert_eq!(dev.batch_size(), 2);
        dev.set_batch_size(16);
        assert_eq!(dev.batch_size(), 16);
        let _ = dev.evaluate(vec![0.0; dev.input_len()]); // still live
    }

    #[test]
    fn transfer_latency_injection_slows_batches() {
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 3));
        let mut lat = LatencyModel::zero();
        lat.launch_ns = 20_000_000.0; // 20 ms per submission
        let dev = Device::new(
            net,
            DeviceConfig {
                batch_size: 1,
                flush_timeout: Duration::from_micros(50),
                latency: lat,
                inject_transfer_latency: true,
                streams: 1,
            },
        );
        let t0 = Instant::now();
        let _ = dev.evaluate(vec![0.0; dev.input_len()]);
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn multi_stream_device_overlaps_transfer_latency() {
        // 4 batches with 20 ms injected transfer each: one stream needs
        // >= 80 ms; four streams overlap the sleeps.
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 3));
        let mut lat = LatencyModel::zero();
        lat.launch_ns = 20_000_000.0;
        let run = |streams: usize| {
            let dev = Device::new(
                Arc::clone(&net),
                DeviceConfig {
                    batch_size: 1,
                    flush_timeout: Duration::from_micros(50),
                    latency: lat,
                    inject_transfer_latency: true,
                    streams,
                },
            );
            let t0 = Instant::now();
            let rxs: Vec<_> = (0..4)
                .map(|_| dev.submit(vec![0.0; dev.input_len()]))
                .collect();
            for rx in rxs {
                rx.recv().unwrap();
            }
            t0.elapsed()
        };
        let serial = run(1);
        let parallel = run(4);
        assert!(serial >= Duration::from_millis(70), "serial {serial:?}");
        assert!(
            parallel < serial / 2,
            "streams failed to overlap: {parallel:?} vs {serial:?}"
        );
    }

    #[test]
    fn multi_stream_results_still_correct() {
        let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 3, 3, 9), 3));
        let dev = Device::new(
            Arc::clone(&net),
            DeviceConfig {
                streams: 3,
                ..DeviceConfig::instant(2)
            },
        );
        let input: Vec<f32> = (0..dev.input_len()).map(|i| (i % 4) as f32 * 0.3).collect();
        let resp = dev.evaluate(input.clone());
        let x = Tensor::from_vec(input, &[1, 4, 3, 3]);
        let (pi, v) = net.predict(&x);
        for (a, b) in resp.priors.iter().zip(pi.row(0)) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!((resp.value - v.data()[0]).abs() < 1e-5);
    }

    #[test]
    fn resnet_model_served_identically() {
        use nn::resnet::{ResNetConfig, ResNetPolicyValueNet};
        let net = Arc::new(ResNetPolicyValueNet::new(
            ResNetConfig::tiny(3, 4, 4, 16),
            7,
        ));
        let dev = Device::with_model(
            Arc::clone(&net) as Arc<dyn BatchModel>,
            DeviceConfig::instant(2),
        );
        assert_eq!(dev.input_len(), 3 * 4 * 4);
        assert_eq!(dev.action_space(), 16);
        let input: Vec<f32> = (0..dev.input_len()).map(|i| (i % 5) as f32 * 0.2).collect();
        let resp = dev.evaluate(input.clone());
        let x = Tensor::from_vec(input, &[1, 3, 4, 4]);
        let (pi, v) = net.predict(&x);
        for (a, b) in resp.priors.iter().zip(pi.row(0)) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!((resp.value - v.data()[0]).abs() < 1e-5);
    }

    #[test]
    fn timeout_flush_counter_tracks_partial_batches() {
        // Threshold 64 with a single request: must register one timeout
        // flush and a queue wait at least as long as the flush window.
        let (dev, _) = tiny_device(64);
        let _ = dev.evaluate(vec![0.0; dev.input_len()]);
        let s = dev.stats();
        assert_eq!(s.timeout_flushes, 1);
        assert!(s.avg_wait_ns() > 0.0);
        assert!((s.avg_batch() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_batches_do_not_count_as_timeouts() {
        let (dev, _) = tiny_device(1);
        for _ in 0..5 {
            let _ = dev.evaluate(vec![0.0; dev.input_len()]);
        }
        let s = dev.stats();
        assert_eq!(s.timeout_flushes, 0, "threshold-1 batches fill instantly");
        assert_eq!(s.batches, 5);
    }

    #[test]
    fn stats_avg_helpers_handle_empty() {
        let s = DeviceStats::default();
        assert_eq!(s.avg_batch(), 0.0);
        assert_eq!(s.avg_wait_ns(), 0.0);
    }

    #[test]
    fn client_keeps_many_requests_in_flight_from_one_thread() {
        let (dev, net) = tiny_device(4);
        let dev = Arc::new(dev);
        let mut client = dev.client();
        let inputs: Vec<Vec<f32>> = (0..12)
            .map(|i| {
                (0..dev.input_len())
                    .map(|j| ((i * 13 + j) % 9) as f32 / 9.0)
                    .collect()
            })
            .collect();
        for (i, inp) in inputs.iter().enumerate() {
            client.submit(i as u64, inp.clone());
        }
        assert_eq!(client.outstanding(), 12);
        let mut got = [false; 12];
        while client.outstanding() > 0 {
            let t = client.poll();
            let i = t.tag as usize;
            assert!(!got[i], "duplicate completion for tag {i}");
            got[i] = true;
            // Must match a direct forward pass.
            let x = Tensor::from_vec(inputs[i].clone(), &[1, 4, 3, 3]);
            let (pi, v) = net.predict(&x);
            for (a, b) in t.response.priors.iter().zip(pi.row(0)) {
                assert!((a - b).abs() < 1e-5);
            }
            assert!((t.response.value - v.data()[0]).abs() < 1e-5);
        }
        assert!(got.iter().all(|&g| g));
        // One submitting thread, threshold 4: real batches must form.
        let s = dev.stats();
        assert!(s.max_batch >= 2, "async submission failed to batch");
    }

    #[test]
    fn client_try_poll_is_nonblocking() {
        let (dev, _) = tiny_device(1);
        let dev = Arc::new(dev);
        let mut client = dev.client();
        assert!(client.try_poll().is_none(), "nothing in flight yet");
        client.submit(7, vec![0.0; dev.input_len()]);
        let deadline = Instant::now() + Duration::from_secs(5);
        let t = loop {
            if let Some(t) = client.try_poll() {
                break t;
            }
            assert!(Instant::now() < deadline, "completion never arrived");
            std::thread::yield_now();
        };
        assert_eq!(t.tag, 7);
        assert_eq!(client.outstanding(), 0);
    }

    #[test]
    fn concurrent_submitters() {
        let (dev, _) = tiny_device(4);
        let dev = Arc::new(dev);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let d = Arc::clone(&dev);
                s.spawn(move || {
                    for _ in 0..5 {
                        let r = d.evaluate(vec![0.1; d.input_len()]);
                        assert_eq!(r.priors.len(), 9);
                    }
                });
            }
        });
        assert_eq!(dev.stats().samples, 40);
    }
}
