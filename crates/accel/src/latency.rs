//! Analytic latency model of a PCIe-attached accelerator.
//!
//! Mirrors the decomposition in the paper's §4.1:
//!
//! * `T_PCIe(B) = L + B·bytes_per_sample / bandwidth` — each submission pays
//!   a fixed launch/communication latency `L` plus a bandwidth term;
//! * `T_compute(B) = base + B·per_sample·(serial fraction)` — per-sample
//!   compute cost shrinks with batch size until device parallelism
//!   saturates at `parallel_lanes`, after which it grows linearly; this
//!   makes `T_compute` monotonically increasing in `B` (the paper's third
//!   observation) while per-sample cost decreases.
//!
//! All times are in nanoseconds, carried as `f64` so the same model feeds
//! both the real-time device simulation (rounded to `Duration`) and the
//! discrete-event simulator in `perfmodel`.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Latency parameters of the modeled accelerator link + device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed cost per batch submission (kernel launch + driver), ns.
    pub launch_ns: f64,
    /// Bytes transferred per sample (input + output).
    pub bytes_per_sample: f64,
    /// Interconnect bandwidth, bytes per nanosecond (1 B/ns = 1 GB/s).
    pub pcie_bytes_per_ns: f64,
    /// Device compute time for a batch of 1, ns.
    pub compute_base_ns: f64,
    /// Additional compute time per sample once lanes saturate, ns.
    pub compute_per_sample_ns: f64,
    /// Number of samples the device can process at full overlap.
    pub parallel_lanes: usize,
}

impl LatencyModel {
    /// A model loosely calibrated to the paper's platform (RTX A6000 over
    /// PCIe 4.0 ×16, small 5-conv CNN): ~20 µs launch overhead, ~25 GB/s
    /// effective bandwidth, sub-millisecond batched inference whose
    /// per-sample cost falls steeply with batch size.
    pub fn a6000_like(bytes_per_sample: usize) -> Self {
        LatencyModel {
            launch_ns: 20_000.0,
            bytes_per_sample: bytes_per_sample as f64,
            pcie_bytes_per_ns: 25.0,
            compute_base_ns: 48_000.0,
            compute_per_sample_ns: 9_000.0,
            parallel_lanes: 4,
        }
    }

    /// A zero-latency model: the device behaves as a plain batched CPU
    /// evaluator (useful for unit tests and CPU-only baselines).
    pub fn zero() -> Self {
        LatencyModel {
            launch_ns: 0.0,
            bytes_per_sample: 0.0,
            pcie_bytes_per_ns: 1.0,
            compute_base_ns: 0.0,
            compute_per_sample_ns: 0.0,
            parallel_lanes: 1,
        }
    }

    /// Transfer time for a batch of `b` samples, ns (paper: `T_PCIe`).
    pub fn transfer_ns(&self, b: usize) -> f64 {
        self.launch_ns + b as f64 * self.bytes_per_sample / self.pcie_bytes_per_ns
    }

    /// Device compute time for a batch of `b` samples, ns
    /// (paper: `T^GPU_DNN-compute(batch=B)`), monotone increasing in `b`.
    pub fn compute_ns(&self, b: usize) -> f64 {
        if b == 0 {
            return 0.0;
        }
        let overflow = b.saturating_sub(self.parallel_lanes) as f64;
        self.compute_base_ns
            + (b.min(self.parallel_lanes) as f64).ln_1p() * self.compute_per_sample_ns
            + overflow * self.compute_per_sample_ns
    }

    /// Total modeled latency of one batch submission, ns.
    pub fn batch_ns(&self, b: usize) -> f64 {
        if b == 0 {
            0.0
        } else {
            self.transfer_ns(b) + self.compute_ns(b)
        }
    }

    /// Total modeled time to evaluate `n` samples in `ceil(n/b)` batches of
    /// size `b` with no overlap (upper bound used by the performance model).
    pub fn total_ns(&self, n: usize, b: usize) -> f64 {
        assert!(b > 0, "batch size must be positive");
        let full = n / b;
        let rem = n % b;
        full as f64 * self.batch_ns(b) + if rem > 0 { self.batch_ns(rem) } else { 0.0 }
    }

    /// Convert a model time to a `Duration` (for real-time injection).
    pub fn to_duration(ns: f64) -> Duration {
        Duration::from_nanos(ns.max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free() {
        let m = LatencyModel::zero();
        assert_eq!(m.batch_ns(16), 0.0);
        assert_eq!(m.total_ns(100, 8), 0.0);
    }

    #[test]
    fn transfer_is_affine_in_batch() {
        let m = LatencyModel::a6000_like(900 * 4);
        let t1 = m.transfer_ns(1);
        let t2 = m.transfer_ns(2);
        let t3 = m.transfer_ns(3);
        assert!((t3 - t2 - (t2 - t1)).abs() < 1e-6, "affine increments");
        assert!(t1 > m.launch_ns, "includes launch cost");
    }

    #[test]
    fn compute_monotone_increasing() {
        let m = LatencyModel::a6000_like(900 * 4);
        let mut prev = 0.0;
        for b in 1..=128 {
            let c = m.compute_ns(b);
            assert!(c >= prev, "compute must be monotone at b={b}");
            prev = c;
        }
    }

    #[test]
    fn per_sample_compute_decreases_then_flattens() {
        // Batching must help per-sample cost below the lane count.
        let m = LatencyModel::a6000_like(900 * 4);
        let per = |b: usize| m.compute_ns(b) / b as f64;
        assert!(per(8) < per(1));
        assert!(per(32) < per(8));
    }

    #[test]
    fn fewer_batches_amortize_launch() {
        let m = LatencyModel::a6000_like(900 * 4);
        // Same 64 samples: one batch of 64 beats 64 batches of 1 on
        // transfer (launch amortization).
        let many = (0..64).map(|_| m.transfer_ns(1)).sum::<f64>();
        let one = m.transfer_ns(64);
        assert!(one < many);
    }

    #[test]
    fn total_handles_remainders() {
        let m = LatencyModel::a6000_like(128);
        let t = m.total_ns(10, 4); // 4+4+2
        let expect = 2.0 * m.batch_ns(4) + m.batch_ns(2);
        assert!((t - expect).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        let _ = LatencyModel::a6000_like(1).total_ns(10, 0);
    }

    #[test]
    fn duration_conversion_clamps_negative() {
        assert_eq!(LatencyModel::to_duration(-5.0), Duration::ZERO);
        assert_eq!(
            LatencyModel::to_duration(1500.0),
            Duration::from_nanos(1500)
        );
    }
}
