//! Self-play training (Algorithm 1): run the full DNN-MCTS pipeline on a
//! small Gomoku board and watch the loss fall.
//!
//! Run: `cargo run --release --example selfplay_train`

use adaptive_dnn_mcts::prelude::*;

fn main() {
    let game = Gomoku::new(6, 4);
    let net = PolicyValueNet::new(NetConfig::tiny(4, 6, 6, 36), 7);
    println!(
        "training a {}-parameter policy-value net on 6x6 Gomoku (4 in a row)\n",
        net.param_count()
    );

    let cfg = PipelineConfig {
        episodes: 10,
        sgd_iters: 12,
        batch_size: 32,
        lr: 3e-3,
        momentum: 0.9,
        weight_decay: 1e-4,
        replay_capacity: 4096,
        temperature_moves: 6,
        max_moves: 36,
        scheme: Scheme::LocalTree,
        mcts: MctsConfig {
            playouts: 64,
            workers: 2,
            ..Default::default()
        },
        seed: 99,
        lr_schedule: None,
        overlapped_training: false,
        augment_symmetries: false,
    };

    let mut pipeline = Pipeline::new(game, net, cfg);
    for episode in 0..cfg.episodes {
        pipeline.run_episode();
        let report = pipeline.report();
        println!(
            "episode {:>2}: {:>4} samples, loss {}",
            episode + 1,
            report.samples,
            report
                .final_loss
                .map(|l| format!("{l:.4}"))
                .unwrap_or_else(|| "n/a (buffer filling)".into()),
        );
    }

    let report = pipeline.report();
    println!(
        "\nthroughput: {:.2} samples/s  (search {:.2}s, training {:.2}s)",
        report.samples_per_sec,
        report.search_ns as f64 * 1e-9,
        report.train_ns as f64 * 1e-9
    );
    let first = report.loss_curve.first().map(|p| p.total).unwrap_or(0.0);
    let last = report.final_loss.unwrap_or(0.0);
    println!(
        "loss: {first:.4} -> {last:.4} over {} SGD updates",
        report.loss_curve.len()
    );
}
