//! A full Gomoku match between two DNN-MCTS agents using different
//! parallel schemes — demonstrating that the schemes are algorithmically
//! interchangeable (they differ in speed, not in the search they define).
//!
//! Run: `cargo run --release --example gomoku_match`

use adaptive_dnn_mcts::prelude::*;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut game = Gomoku::new(7, 4);
    let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 7, 7, 49), 31));
    let cfg = MctsConfig {
        playouts: 128,
        workers: 2,
        ..Default::default()
    };

    // Black: shared-tree agent.  White: local-tree agent.
    let mut black = AdaptiveSearch::<Gomoku>::new(
        Scheme::SharedTree,
        cfg,
        Arc::new(NnEvaluator::new(Arc::clone(&net))),
    );
    let mut white =
        AdaptiveSearch::<Gomoku>::new(Scheme::LocalTree, cfg, Arc::new(NnEvaluator::new(net)));
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);

    println!("shared-tree (X) vs local-tree (O) on 7x7 Gomoku, 4 in a row\n");
    let mut ply = 0;
    while game.status() == Status::Ongoing {
        let result = match game.to_move() {
            Player::Black => black.search(&game),
            Player::White => white.search(&game),
        };
        // Mild exploration for the first few plies, then greedy.
        let action = result.sample_action(if ply < 4 { 0.8 } else { 0.0 }, &mut rng);
        let (r, c) = game.action_to_rc(action);
        println!(
            "ply {:>2}: {} plays ({r},{c})  [value {:+.2}, {} playouts]",
            ply + 1,
            if game.to_move() == Player::Black {
                "X"
            } else {
                "O"
            },
            result.value,
            result.stats.playouts
        );
        game.apply(action);
        ply += 1;
    }

    println!("\n{game:?}");
    match game.status() {
        Status::Won(Player::Black) => println!("shared-tree agent (X) wins"),
        Status::Won(Player::White) => println!("local-tree agent (O) wins"),
        Status::Draw => println!("draw"),
        Status::Ongoing => unreachable!(),
    }
}
