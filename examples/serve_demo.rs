//! Multi-session serving demo: one [`serve::SearchService`] absorbing a
//! burst of mixed-game requests (Gomoku, Othello, Connect-4) with
//! different budgets and priorities, all multiplexed over a fixed
//! worker pool and sharing inference batches where they share a model.
//!
//! Run: `cargo run --release --example serve_demo`

use games::{connect4::Connect4, gomoku::Gomoku, othello::Othello, Game};
use mcts::{BatchEvaluator, Budget, MctsConfig, NnEvaluator, UniformEvaluator};
use nn::{NetConfig, PolicyValueNet};
use serve::{
    Priority, SearchRequest, SearchService, SearchTicket, ServeConfig, TicketStatus, WaitOutcome,
};
use std::sync::Arc;
use std::time::Duration;

fn cfg(playouts: usize) -> MctsConfig {
    MctsConfig {
        playouts,
        max_nodes: Some(100_000), // bounded per-session tree memory
        ..Default::default()
    }
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2)
        .max(2);
    let service = SearchService::new(ServeConfig {
        workers,
        step_quota: 32,
        max_pooled: 2 * workers,
        coalesce_window: Duration::from_millis(2),
        // Measurement-driven batching: calibrate each backend's
        // forward-time curve at registration and let the tuner pick the
        // coalescing window and target batch from it.
        coalesce_auto: true,
        calibrate_on_register: true,
        ..Default::default()
    });
    println!("service up: {workers} workers, 32-playout slices, auto-tuned batching\n");

    // One *shared* network evaluator for all Gomoku sessions — their
    // leaf evaluations coalesce into common batches — plus cheap
    // uniform evaluators for the other games.
    let gomoku_net = Arc::new(PolicyValueNet::new(NetConfig::for_board(4, 9, 9, 81), 2));
    let gomoku_eval: Arc<dyn BatchEvaluator> =
        Arc::new(NnEvaluator::with_batch_hint(gomoku_net, workers));
    let othello_eval: Arc<dyn BatchEvaluator> =
        Arc::new(UniformEvaluator::for_game(&Othello::new(8)));
    let c4_eval: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::for_game(&Connect4::new()));

    let mut gomoku_root = Gomoku::new(9, 5);
    for a in [40u16, 41, 31] {
        gomoku_root.apply(a);
    }

    // The burst: mixed games, budgets and priorities, submitted at once.
    let mut tickets: Vec<(String, SearchTicket)> = Vec::new();
    for i in 0..4 {
        tickets.push((
            format!("gomoku/nn #{i} (256 playouts, normal)"),
            service.submit(
                SearchRequest::new(gomoku_root.clone(), Arc::clone(&gomoku_eval))
                    .config(cfg(256))
                    .priority(Priority::Normal),
            ),
        ));
    }
    tickets.push((
        "othello #0 (512 playouts, low)".into(),
        service.submit(
            SearchRequest::new(Othello::new(8), Arc::clone(&othello_eval))
                .config(cfg(512))
                .priority(Priority::Low),
        ),
    ));
    tickets.push((
        "connect4 #0 (high priority)".into(),
        service.submit(
            SearchRequest::new(Connect4::new(), Arc::clone(&c4_eval))
                .config(cfg(400))
                .priority(Priority::High),
        ),
    ));
    tickets.push((
        "connect4 #1 (20 ms deadline)".into(),
        service.submit(
            SearchRequest::new(Connect4::new(), Arc::clone(&c4_eval))
                .config(cfg(5_000_000))
                .budget(Budget::time(Duration::from_millis(20))),
        ),
    ));

    // An anytime peek while the burst is in flight: a timed-out wait
    // still hands back the newest snapshot (with its sequence number),
    // never an empty error.
    if let Some((name, t)) = tickets.first() {
        match t.wait_timeout(Duration::from_millis(10)) {
            WaitOutcome::TimedOut(p) if p.stats.seq > 0 => println!(
                "anytime peek at {name}: snapshot #{}, {} playouts so far, best action {}\n",
                p.stats.seq,
                p.stats.playouts,
                p.best_action()
            ),
            WaitOutcome::TimedOut(_) => println!("anytime peek at {name}: no slice finished yet\n"),
            WaitOutcome::Finished(r, _) => println!(
                "{name} already finished: {} playouts, best action {}\n",
                r.stats.playouts,
                r.best_action()
            ),
        }
    }

    println!(
        "{:<38} {:>9} {:>10} {:>10}",
        "request", "status", "playouts", "latency"
    );
    for (name, t) in &tickets {
        let r = t.wait();
        let status = match t.status() {
            TicketStatus::Done => "done",
            TicketStatus::Cancelled => "cancelled",
            TicketStatus::Failed(_) => "failed",
            TicketStatus::Running => "running",
        };
        println!(
            "{name:<38} {status:>9} {:>10} {:>8.1}ms",
            r.stats.playouts,
            t.latency().unwrap_or_default().as_secs_f64() * 1e3,
        );
    }

    let st = service.stats();
    println!(
        "\nservice totals: {} sessions done, {} slices, {} playouts",
        st.sessions_completed, st.steps, st.playouts
    );
    println!(
        "cross-session batch fill: {} eval rounds, {} samples, mean batch {:.2}",
        st.eval_batches,
        st.eval_samples,
        st.mean_eval_batch()
    );

    // What the batch auto-tuner learned about each batching backend:
    // the measured forward-time curve and the operating point it chose.
    for r in service.autotune_reports() {
        println!(
            "\nauto-tuner (calibrated: {}): chose batch {} / window {} µs (~{:.0} positions/s)",
            r.calibrated, r.batch, r.window_us, r.positions_per_sec
        );
        println!("  measured forward-time curve:");
        for (batch, ns) in &r.curve {
            println!(
                "    batch {batch:>3}: {:>8.1} µs/forward  ({:>7.0} positions/s)",
                *ns as f64 / 1e3,
                *batch as f64 / (*ns as f64 / 1e9)
            );
        }
    }
}
