//! Network front-end demo: a [`net::NetServer`] on a loopback port
//! with three concurrent clients exercising the three ways a remote
//! session can end —
//!
//! * **streamer**: submits a mid-size search, prints every anytime
//!   snapshot as it arrives, and receives the `Final` frame;
//! * **canceller**: submits a huge budget, watches one snapshot, then
//!   cancels — the server answers with `Final{cancelled}` carrying the
//!   best-so-far result;
//! * **glutton**: runs against a tight per-connection quota and has its
//!   second in-flight request shed with `Reject{QuotaExceeded}` and an
//!   honest nonzero `retry_after` hint.
//!
//! Afterwards the demo dumps the server's frame counters and the
//! cluster metrics JSON, then drains gracefully.
//!
//! Run: `cargo run --release --example net_demo`

use net::{Client, Event, GameSpec, NetServer, Outcome, ServerConfig, WireRequest};
use serve::{AdmissionConfig, ClusterConfig, ServeCluster, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let cluster = Arc::new(ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: ServeConfig {
            workers: 2,
            step_quota: 128,
            ..Default::default()
        },
        admission: Some(AdmissionConfig {
            playouts_per_sec: 1e8,
            burst_playouts: 100_000_000,
            max_pending: 256,
            ..Default::default()
        }),
    }));
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        cluster,
        ServerConfig {
            // One in-flight session per connection: the glutton's
            // second concurrent request trips the quota while the
            // streamer and canceller (one session each) sail through.
            client_quota: Some(AdmissionConfig {
                playouts_per_sec: 1e8,
                burst_playouts: 100_000_000,
                max_pending: 1,
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("serving on {addr}\n");

    std::thread::scope(|scope| {
        scope.spawn(move || streamer(addr));
        scope.spawn(move || canceller(addr));
        scope.spawn(move || glutton(addr));
    });

    let stats = server.stats();
    println!("\n-- server frame counters --");
    println!(
        "connections accepted {}   submits {}   admitted {}   rejected {}   cancels {}",
        stats.accepted, stats.submits, stats.admitted, stats.rejected, stats.cancels
    );
    println!(
        "snapshots sent {}   shed to slow readers {}",
        stats.snapshots_sent, stats.snapshots_shed
    );
    println!("\n-- cluster metrics --");
    let mut client = Client::connect(addr, "").expect("stats connection");
    println!("{}", client.stats().expect("metrics dump"));

    let report = server.shutdown(Duration::from_secs(10));
    println!("\ndrained cleanly: {report:?}");
}

fn streamer(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr, "").expect("streamer connect");
    let req = WireRequest::new(GameSpec::Gomoku { size: 9, win: 5 }).playouts(40_000);
    let id = client.submit(&req).expect("submit");
    loop {
        match client.recv().expect("stream") {
            Event::Accepted { shard, .. } => {
                println!("[streamer] session {id} accepted on shard {shard}")
            }
            Event::Snapshot { result, .. } => println!(
                "[streamer]   snapshot seq {:>3}: {:>6} playouts, best {:?}, value {:+.3}",
                result.seq,
                result.playouts,
                result.best_action(),
                result.value
            ),
            Event::Final { result, .. } => {
                println!(
                    "[streamer] final: {} playouts, best move {:?}",
                    result.playouts,
                    result.best_action()
                );
                break;
            }
            other => {
                println!("[streamer] unexpected: {other:?}");
                break;
            }
        }
    }
}

fn canceller(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr, "").expect("canceller connect");
    // A budget that would take far longer than our patience.
    let req = WireRequest::new(GameSpec::Othello { size: 8 }).playouts(9_000_000);
    let id = client.submit(&req).expect("submit");
    // Wait for the first snapshot, then pull the plug.
    loop {
        match client.recv().expect("stream") {
            Event::Accepted { shard, .. } => {
                println!("[canceller] session {id} accepted on shard {shard}")
            }
            Event::Snapshot { result, .. } => {
                println!(
                    "[canceller]  saw progress ({} playouts) — cancelling",
                    result.playouts
                );
                client.cancel(id).expect("cancel");
                break;
            }
            other => {
                println!("[canceller] unexpected: {other:?}");
                return;
            }
        }
    }
    match client.wait_outcome(id).expect("outcome") {
        Outcome::Cancelled(partial) => println!(
            "[canceller] cancelled cleanly with best-so-far {:?} after {} playouts",
            partial.best_action(),
            partial.playouts
        ),
        other => println!("[canceller] unexpected outcome: {other:?}"),
    }
}

fn glutton(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr, "").expect("glutton connect");
    let req = WireRequest::new(GameSpec::Connect4).playouts(60_000);
    let a = client.submit(&req).expect("submit a");
    let b = client.submit(&req).expect("submit b");
    println!("[glutton]  submitted sessions {a} and {b} against a one-session quota");
    match client.wait_outcome(b).expect("outcome b") {
        Outcome::Rejected { code, retry_after } => println!(
            "[glutton]  session {b} shed: {code:?}, retry after {:.1}s",
            retry_after.as_secs_f64()
        ),
        other => println!("[glutton]  unexpected outcome for {b}: {other:?}"),
    }
    match client.wait_outcome(a).expect("outcome a") {
        Outcome::Done(result) => println!(
            "[glutton]  session {a} (within quota) finished: best {:?}",
            result.best_action()
        ),
        other => println!("[glutton]  unexpected outcome for {a}: {other:?}"),
    }
}
