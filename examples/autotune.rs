//! The design-configuration workflow end to end (§4.2): profile the host,
//! pick a scheme per worker count, and tune the accelerator batch size
//! with Algorithm 4 — then verify the tuned batch against a real device.
//!
//! Run: `cargo run --release --example autotune`

use adaptive_dnn_mcts::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let game = Gomoku::new(7, 4);
    let net = Arc::new(PolicyValueNet::new(NetConfig::tiny(4, 7, 7, 49), 5));

    // 1. Design-time profiling on this host.
    println!("profiling host (synthetic tree + random-weight DNN)...");
    let accel_model = LatencyModel::a6000_like(4 * 7 * 7 * 4);
    let configurator =
        DesignConfigurator::profile(&net, game.action_space(), 8, 3_000, Some(accel_model));
    let c = &configurator.costs;
    println!(
        "  T_select {:.2} µs   T_backup {:.2} µs   T_ddr {:.0} ns   T_dnn {:.1} µs\n",
        c.t_select_ns / 1000.0,
        c.t_backup_ns / 1000.0,
        c.t_shared_access_ns,
        c.t_dnn_cpu_ns / 1000.0
    );

    // 2. Scheme choice per worker count, CPU-only and CPU-GPU.
    println!("scheme selection across worker counts:");
    println!("{:>6} {:>16} {:>22}", "N", "CPU-only", "CPU-GPU (batch B*)");
    for n in [2usize, 4, 8, 16, 32, 64] {
        let cpu = configurator.configure(Platform::CpuOnly, n);
        let gpu = configurator.configure(Platform::CpuGpu, n);
        println!(
            "{n:>6} {:>16} {:>18} B*={}",
            cpu.scheme.name(),
            gpu.scheme.name(),
            gpu.batch.unwrap_or(n)
        );
    }

    // 3. Live batch-size tuning against a real (simulated-latency) device:
    //    the oracle is an actual timed `get_action_prior` run, exactly the
    //    paper's "Test Run" in Algorithm 4.
    let workers = 4;
    println!("\nlive Algorithm-4 tuning at N={workers} against a real device:");
    let (bstar, evals) = configurator.tune_batch_live(workers, |b| {
        let device = Arc::new(Device::new(
            Arc::clone(&net),
            DeviceConfig {
                batch_size: b,
                flush_timeout: std::time::Duration::from_micros(500),
                latency: accel_model,
                inject_transfer_latency: true,
                streams: 1,
            },
        ));
        // The local scheme feeds the device queue natively: builder
        // route, no AccelEvaluator indirection, no thread per leaf.
        let mut search = SearchBuilder::new(Scheme::LocalTree)
            .playouts(96)
            .workers(workers)
            .device(device)
            .build::<Gomoku>();
        let t0 = Instant::now();
        let _ = search.search(&game);
        t0.elapsed().as_nanos() as f64
    });
    println!("  tuned B* = {bstar} using {evals} test runs (exhaustive would need {workers})");
}
