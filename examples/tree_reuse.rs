//! Tree reuse across moves: compare a fresh-tree searcher against one that
//! re-roots **in place** at the played child, on the same Gomoku game,
//! and report the arena accounting (`Tree::stats`): nodes inherited per
//! move, nodes reclaimed onto the free-list, and the memory high-water
//! mark the whole game ran under.
//!
//! Run: `cargo run --release --example tree_reuse`

use adaptive_dnn_mcts::prelude::*;
use mcts::reuse::ReusableSearch;
use mcts::serial::SerialSearch;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let initial = Gomoku::new(9, 5);
    let net = Arc::new(PolicyValueNet::new(NetConfig::for_board(4, 9, 9, 81), 3));
    let cfg = MctsConfig {
        playouts: 200,
        ..Default::default()
    };

    // Fresh tree every move (the paper's Algorithm 2 baseline).
    let mut fresh = SerialSearch::new(cfg, Arc::new(NnEvaluator::new(Arc::clone(&net))));
    // Re-rooted tree (production AlphaZero behavior).
    let mut warm = ReusableSearch::new(cfg, Arc::new(NnEvaluator::new(net)));

    let moves = 6;
    println!("playing {moves} self-play moves with each searcher:\n");

    let mut game = initial.clone();
    let t0 = Instant::now();
    for _ in 0..moves {
        let r = fresh.search(&game);
        game.apply(r.best_action());
    }
    let fresh_time = t0.elapsed();

    let mut game = initial.clone();
    let t0 = Instant::now();
    let mut inherited = Vec::new();
    let mut reclaimed = Vec::new();
    for _ in 0..moves {
        let r = warm.search(&game);
        inherited.push(warm.inherited_nodes);
        reclaimed.push(r.stats.reclaimed);
        let a = r.best_action();
        warm.advance(a);
        game.apply(a);
    }
    let warm_time = t0.elapsed();
    let stats = warm.tree_stats().expect("searched at least once");

    println!("fresh tree : {fresh_time:?} total");
    println!("reused tree: {warm_time:?} total");
    println!("nodes inherited per move : {inherited:?}");
    println!("nodes reclaimed per move : {reclaimed:?}");
    println!(
        "arena after {moves} moves    : {} live / {} free / {} high-water \
         ({} reclaimed in total, {} pruned)",
        stats.live, stats.free, stats.high_water, stats.reclaimed_total, stats.pruned
    );
    println!(
        "\nwith in-place reuse, every move after the first starts with a warm\n\
         subtree, the discarded siblings are recycled through the arena\n\
         free-list (zero allocation in steady state), and the whole game\n\
         searches inside one arena whose high-water mark stays near a\n\
         single move's tree."
    );
}
