//! Tree reuse across moves: compare a fresh-tree searcher against one that
//! re-roots at the played child, on the same Gomoku game.
//!
//! Run: `cargo run --release --example tree_reuse`

use adaptive_dnn_mcts::prelude::*;
use mcts::reuse::ReusableSearch;
use mcts::serial::SerialSearch;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let initial = Gomoku::new(9, 5);
    let net = Arc::new(PolicyValueNet::new(NetConfig::for_board(4, 9, 9, 81), 3));
    let cfg = MctsConfig {
        playouts: 200,
        ..Default::default()
    };

    // Fresh tree every move (the paper's Algorithm 2 baseline).
    let mut fresh = SerialSearch::new(cfg, Arc::new(NnEvaluator::new(Arc::clone(&net))));
    // Re-rooted tree (production AlphaZero behavior).
    let mut warm = ReusableSearch::new(cfg, Arc::new(NnEvaluator::new(net)));

    let moves = 6;
    println!("playing {moves} self-play moves with each searcher:\n");

    let mut game = initial.clone();
    let t0 = Instant::now();
    for _ in 0..moves {
        let r = fresh.search(&game);
        game.apply(r.best_action());
    }
    let fresh_time = t0.elapsed();

    let mut game = initial.clone();
    let t0 = Instant::now();
    let mut inherited = Vec::new();
    for _ in 0..moves {
        let r = warm.search(&game);
        inherited.push(warm.inherited_nodes);
        let a = r.best_action();
        warm.advance(a);
        game.apply(a);
    }
    let warm_time = t0.elapsed();

    println!("fresh tree : {fresh_time:?} total");
    println!("reused tree: {warm_time:?} total");
    println!("nodes inherited per move: {inherited:?}");
    println!(
        "\nwith reuse, every move after the first starts with a warm subtree,\n\
         so the same playout budget explores deeper lines."
    );
}
