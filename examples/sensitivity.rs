//! Sensitivity analysis of the scheme choice (Eqs. 3–6): how far can each
//! profiled parameter drift before the model flips between the local and
//! shared tree?
//!
//! Run: `cargo run --release --example sensitivity`

use adaptive_dnn_mcts::prelude::*;
use perfmodel::sensitivity::format_table;

fn main() {
    // Paper-like profiled costs: microsecond-scale in-tree work, a
    // millisecond-scale CPU inference, an A6000-like accelerator.
    let base = PerfParams {
        workers: 32,
        t_select_ns: 20_000.0,
        t_backup_ns: 10_000.0,
        t_shared_access_ns: 1_500.0,
        t_dnn_cpu_ns: 1_200_000.0,
        accel: Some(LatencyModel::a6000_like(4 * 15 * 15 * 4)),
    };
    let factors = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

    for (platform, label) in [
        (Platform::CpuOnly, "CPU-only"),
        (Platform::CpuGpu, "CPU-GPU"),
    ] {
        println!("=== {label} platform, N = {} workers ===\n", base.workers);
        for param in [
            SweepParam::DnnCpu,
            SweepParam::InTree,
            SweepParam::SharedAccess,
        ] {
            let pts = sweep(platform, &base, param, &factors);
            println!("{}", format_table(param, &pts));
        }
    }

    println!("=== worker-count crossover (CPU-only) ===\n");
    for dnn_scale in [0.5, 1.0, 2.0, 4.0] {
        let p = SweepParam::DnnCpu.scaled(&base, dnn_scale);
        match crossover_workers(Platform::CpuOnly, &p, 512) {
            Some(n) => println!("T_dnn x{dnn_scale:<4}: shared tree first wins at N = {n}"),
            None => println!("T_dnn x{dnn_scale:<4}: local tree wins for all N <= 512"),
        }
    }
}
