//! Othello: pit a network-guided agent against a uniform-prior agent and
//! report the match score as an Elo difference.
//!
//! Demonstrates three extension features together: the Othello environment
//! (pass actions, stone flips), the residual-tower network served through
//! the simulated accelerator, and the arena's Elo utilities.
//!
//! Run: `cargo run --release --example othello_match`

use adaptive_dnn_mcts::prelude::*;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let game = Othello::new(6); // 6×6 board keeps the demo fast
    let (c, h, w) = game.encoded_shape();

    // Agent A: residual tower (random weights — in a real setting these
    // come from training) evaluated through the batching accelerator.
    let resnet = Arc::new(ResNetPolicyValueNet::new(
        ResNetConfig {
            in_c: c,
            h,
            w,
            actions: game.action_space(),
            filters: 16,
            blocks: 2,
            value_hidden: 16,
        },
        7,
    ));
    let device = Arc::new(Device::with_model(
        resnet as Arc<dyn BatchModel>,
        DeviceConfig::instant(4),
    ));
    let cfg = MctsConfig {
        playouts: 96,
        ..Default::default()
    };
    let mut agent_a = mcts::serial::SerialSearch::new(cfg, Arc::new(AccelEvaluator::new(device)));

    // Agent B: uniform priors (pure-MCTS strength floor).
    let mut agent_b =
        mcts::serial::SerialSearch::new(cfg, Arc::new(UniformEvaluator::for_game(&game)));

    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    println!("playing 6 Othello games (6x6), alternating colors...");
    let result = play_match(&game, &mut agent_a, &mut agent_b, 6, 0.6, 4, 80, &mut rng);

    println!(
        "network agent: {} wins / {} losses / {} draws  (score {:.2})",
        result.wins_a,
        result.wins_b,
        result.draws,
        result.score_a()
    );
    println!("implied Elo difference: {:+.0}", elo_diff(result.score_a()));

    // League bookkeeping across checkpoints works the same way:
    let mut league = EloTracker::new(2, 32.0);
    league.record(0, 1, result.score_a());
    println!(
        "league ratings after one match: A {:.0}, B {:.0}",
        league.rating(0),
        league.rating(1)
    );
}
