//! Sharded serving demo: a [`serve::ServeCluster`] front door with
//! admission control absorbing an overload burst — part of the traffic
//! is served across shards (backend affinity keeps same-model sessions
//! together), the overflow is shed with explicit `retry_after` hints,
//! and one session's progress is consumed as a push-style stream.
//! A second, identical burst then replays against the warm evaluation
//! cache shared by every shard, showing the hit rate and latency drop.
//! A final fault act takes one backend through an outage: its circuit
//! breaker walks Closed → Open (requests shed with retry hints) →
//! HalfOpen (recovery probe) → Closed, while a healthy co-resident
//! backend keeps serving throughout.
//!
//! Run: `cargo run --release --example cluster_demo`

use games::{connect4::Connect4, gomoku::Gomoku, Game};
use mcts::{
    BatchEvaluator, Budget, EvalError, EvalOutput, MctsConfig, NnEvaluator, UniformEvaluator,
};
use nn::{NetConfig, PolicyValueNet};
use serve::{
    AdmissionConfig, BreakerState, ClusterConfig, ClusterTicket, Priority, SearchRequest,
    ServeCluster, ServeConfig, StreamItem, TicketStatus,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A uniform-prior backend with an outage switch: while `failing` is
/// set every batch call returns a transient error, so the cluster's
/// retry + circuit-breaker machinery takes over. The small delay on
/// healthy calls keeps the recovery probe observable in `HalfOpen`.
struct FlakyBackend {
    input_len: usize,
    priors: usize,
    failing: AtomicBool,
}

impl BatchEvaluator for FlakyBackend {
    fn input_len(&self) -> usize {
        self.input_len
    }

    fn action_space(&self) -> usize {
        self.priors
    }

    fn evaluate_batch(&self, inputs: &[&[f32]], out: &mut [EvalOutput]) {
        self.try_evaluate_batch(inputs, out).unwrap();
    }

    fn try_evaluate_batch(
        &self,
        _inputs: &[&[f32]],
        out: &mut [EvalOutput],
    ) -> Result<(), EvalError> {
        if self.failing.load(Ordering::Acquire) {
            return Err(EvalError::transient("injected backend outage"));
        }
        std::thread::sleep(Duration::from_millis(2));
        let p = 1.0 / self.priors as f32;
        for o in out.iter_mut() {
            o.priors.clear();
            o.priors.resize(self.priors, p);
            o.value = 0.0;
        }
        Ok(())
    }
}

fn cfg(playouts: usize) -> MctsConfig {
    MctsConfig {
        playouts,
        max_nodes: Some(100_000),
        ..Default::default()
    }
}

fn main() {
    // The fault act below makes worker threads unwind on purpose (that
    // is the mechanism being demonstrated); keep the default panic
    // hook's noise out of the demo narration.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let in_worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("serve-worker"));
        if !in_worker {
            default_hook(info);
        }
    }));

    // Two shards, two workers each; every model may hold at most 1200
    // playouts' worth of admitted work in flight and 6 pending sessions.
    let cluster = ServeCluster::new(ClusterConfig {
        shards: 2,
        shard: ServeConfig {
            workers: 2,
            step_quota: 32,
            coalesce_window: Duration::from_millis(2),
            eval_cache_bytes: Some(64 << 20),
            ..Default::default()
        },
        admission: Some(AdmissionConfig {
            playouts_per_sec: 2_000.0,
            burst_playouts: 1_200,
            max_pending: 6,
            ..Default::default()
        }),
    });
    println!("cluster up: 2 shards × 2 workers, 1200-playout admission burst\n");

    let gomoku_net = Arc::new(PolicyValueNet::new(NetConfig::for_board(4, 9, 9, 81), 2));
    let gomoku_eval: Arc<dyn BatchEvaluator> =
        Arc::new(NnEvaluator::with_batch_hint(gomoku_net, 2));
    let c4_eval: Arc<dyn BatchEvaluator> = Arc::new(UniformEvaluator::for_game(&Connect4::new()));

    let mut gomoku_root = Gomoku::new(9, 5);
    for a in [40u16, 41, 31] {
        gomoku_root.apply(a);
    }

    // Offer more than the admission budget allows: the overflow is shed
    // immediately with a back-off hint instead of growing a queue.
    let mut placed: Vec<(String, ClusterTicket)> = Vec::new();
    for i in 0..8 {
        let req = SearchRequest::new(gomoku_root.clone(), Arc::clone(&gomoku_eval))
            .config(cfg(256))
            .budget(Budget::playouts(256))
            .priority(Priority::Normal);
        match cluster.submit(req) {
            Ok(t) => {
                println!("gomoku #{i}: admitted → shard {}", t.shard());
                placed.push((format!("gomoku #{i}"), t));
            }
            Err(rej) => println!("gomoku #{i}: SHED ({rej})"),
        }
    }
    // A different model has its own bucket: still admitted.
    match cluster.submit(
        SearchRequest::new(Connect4::new(), Arc::clone(&c4_eval))
            .config(cfg(300))
            .budget(Budget::playouts(300))
            .priority(Priority::High),
    ) {
        Ok(t) => {
            println!(
                "connect4  : admitted → shard {} (separate model bucket)",
                t.shard()
            );
            placed.push(("connect4".into(), t));
        }
        Err(rej) => println!("connect4  : SHED ({rej})"),
    }

    // Stream one session's progress instead of polling.
    if let Some((name, ticket)) = placed.first() {
        println!("\nstreaming {name}:");
        for item in ticket.subscribe() {
            match item {
                StreamItem::Partial(snap) => println!(
                    "  snapshot #{:<3} {:>5} playouts, best action {}",
                    snap.stats.seq,
                    snap.stats.playouts,
                    snap.best_action()
                ),
                StreamItem::Final(result, status) => println!(
                    "  final ({status:?}): {} playouts, best action {}",
                    result.stats.playouts,
                    result.best_action()
                ),
            }
        }
    }

    println!(
        "\n{:<12} {:>6} {:>10} {:>10}",
        "request", "shard", "playouts", "latency"
    );
    let mut cold_lat = Vec::new();
    for (name, t) in &placed {
        let r = t.wait();
        let lat = t.latency().unwrap_or_default();
        if name.starts_with("gomoku") {
            cold_lat.push(lat);
        }
        println!(
            "{name:<12} {:>6} {:>10} {:>8.1}ms",
            t.shard(),
            r.stats.playouts,
            lat.as_secs_f64() * 1e3,
        );
    }

    // Replay the same gomoku burst: every shard shares one evaluation
    // cache per backend, so the warm pass answers most NN evaluations
    // from memory regardless of which shard the session lands on.
    let cold_hits = cluster.stats().cache.hits;
    // Honor the rate limiter's back-off before re-offering the burst.
    std::thread::sleep(Duration::from_millis(600));
    let mut warm_lat = Vec::new();
    for _ in 0..cold_lat.len() {
        let req = SearchRequest::new(gomoku_root.clone(), Arc::clone(&gomoku_eval))
            .config(cfg(256))
            .budget(Budget::playouts(256))
            .priority(Priority::Normal);
        if let Ok(t) = cluster.submit(req) {
            t.wait();
            warm_lat.push(t.latency().unwrap_or_default());
        }
    }
    let mean_ms = |v: &[Duration]| {
        v.iter().map(|d| d.as_secs_f64()).sum::<f64>() / v.len().max(1) as f64 * 1e3
    };
    let cache = cluster.stats().cache;
    println!(
        "\nwarm replay: {} sessions, cache hit rate {:.1}% ({} new hits), \
         mean latency {:.1}ms → {:.1}ms",
        warm_lat.len(),
        cache.hit_rate() * 100.0,
        cache.hits - cold_hits,
        mean_ms(&cold_lat),
        mean_ms(&warm_lat),
    );

    // --- fault act: outage, breaker trip, shed, recovery ------------------
    // A flaky backend goes down mid-service. Its failures trip a
    // cluster-wide circuit breaker; further requests for THAT backend
    // are shed with honest retry hints while the healthy connect4
    // backend keeps being admitted and served. After the outage ends,
    // the cooldown expires and a single recovery probe walks the
    // breaker HalfOpen → Closed.
    println!("\nfault act: injected outage on one backend");
    let flaky = Arc::new(FlakyBackend {
        input_len: Connect4::new().encoded_len(),
        priors: Connect4::new().action_space(),
        failing: AtomicBool::new(false),
    });
    let flaky_eval: Arc<dyn BatchEvaluator> = flaky.clone();
    let submit_flaky = |playouts: usize| {
        cluster.submit(
            SearchRequest::new(Connect4::new(), Arc::clone(&flaky_eval))
                .config(cfg(playouts))
                .budget(Budget::playouts(playouts as u64)),
        )
    };
    println!(
        "  breaker before outage: {:?}",
        cluster.backend_health(&flaky_eval)
    );

    flaky.failing.store(true, Ordering::Release);
    // Each doomed session burns its retry budget and fails typed; a few
    // of them push the backend's consecutive-failure streak past the
    // breaker threshold.
    let mut failed_sessions = 0;
    while cluster.backend_health(&flaky_eval) != BreakerState::Open && failed_sessions < 8 {
        let doomed = match submit_flaky(64) {
            Ok(t) => t,
            Err(_) => break, // breaker already shedding at the front door
        };
        if !doomed.wait_timeout(Duration::from_secs(30)).is_finished() {
            println!("  outage session still running (unexpected)");
            break;
        }
        if let TicketStatus::Failed(err) = doomed.status() {
            failed_sessions += 1;
            if failed_sessions == 1 {
                println!("  outage session failed (typed): {err}");
            }
        }
    }
    println!(
        "  breaker after {failed_sessions} failed sessions: {:?}",
        cluster.backend_health(&flaky_eval)
    );
    match submit_flaky(64) {
        Err(rej) => println!("  next request for that backend: SHED ({rej})"),
        Ok(t) => {
            t.cancel();
            println!("  next request unexpectedly admitted");
        }
    }
    // The healthy backend is unaffected: same cluster, own breaker.
    let healthy = cluster
        .submit(
            SearchRequest::new(Connect4::new(), Arc::clone(&c4_eval))
                .config(cfg(200))
                .budget(Budget::playouts(200)),
        )
        .expect("healthy backend admitted during the outage");
    healthy.wait();
    println!("  healthy backend during outage: admitted and completed");

    // Outage over: wait out the cooldown, then watch the recovery
    // probe's breaker states while it runs.
    flaky.failing.store(false, Ordering::Release);
    let probe = loop {
        match submit_flaky(48) {
            Ok(t) => break t,
            Err(rej) => std::thread::sleep(rej.retry_after.min(Duration::from_millis(50))),
        }
    };
    let mut seen: Vec<BreakerState> = Vec::new();
    let poll_deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < poll_deadline {
        let st = cluster.backend_health(&flaky_eval);
        if seen.last() != Some(&st) {
            seen.push(st);
        }
        let settled = matches!(
            probe.status(),
            TicketStatus::Done | TicketStatus::Cancelled | TicketStatus::Failed(_)
        );
        if settled && st == BreakerState::Closed {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    probe.wait();
    let walk: Vec<String> = seen.iter().map(|s| format!("{s:?}")).collect();
    println!("  recovery probe observed breaker: {}", walk.join(" → "));
    println!(
        "  breaker after recovery: {:?}",
        cluster.backend_health(&flaky_eval)
    );

    let stats = cluster.stats();
    let total = stats.total();
    println!(
        "\ncluster totals: {} admitted, {} shed ({} rate-limited, {} queue-full, {} breaker-open)",
        stats.admitted,
        stats.shed(),
        stats.shed_rate_limited,
        stats.shed_queue_full,
        stats.shed_unhealthy
    );
    for (i, s) in stats.per_shard.iter().enumerate() {
        println!(
            "  shard {i}: {} sessions, {} slices, {} playouts, mean eval batch {:.2}",
            s.sessions_completed + s.sessions_cancelled + s.sessions_failed,
            s.steps,
            s.playouts,
            s.mean_eval_batch()
        );
    }
    println!(
        "  all    : {} playouts, mean eval batch {:.2}",
        total.playouts,
        total.mean_eval_batch()
    );
}
