//! Quickstart: search one Gomoku move with each parallel scheme and with
//! the adaptive choice from the performance model.
//!
//! Run: `cargo run --release --example quickstart`

use adaptive_dnn_mcts::prelude::*;
use std::sync::Arc;

fn main() {
    // The paper's benchmark game at a laptop-friendly scale.
    let mut game = Gomoku::new(9, 5);
    // A random-weights policy-value network of the right shape (in real
    // training the weights come from the self-play pipeline).
    let net = Arc::new(PolicyValueNet::new(NetConfig::for_board(4, 9, 9, 81), 2024));
    // Put two stones down so the position isn't empty.
    game.apply(game.rc_to_action(4, 4));
    game.apply(game.rc_to_action(4, 5));

    let workers = 4;
    let cfg = MctsConfig {
        playouts: 256,
        workers,
        ..Default::default()
    };

    println!(
        "searching one move with each scheme ({workers} workers, {} playouts):\n",
        cfg.playouts
    );
    for scheme in [Scheme::Serial, Scheme::SharedTree, Scheme::LocalTree] {
        // One construction path for every scheme: the SearchBuilder.
        let mut search = SearchBuilder::new(scheme)
            .config(cfg)
            .evaluator(Arc::new(NnEvaluator::new(Arc::clone(&net))))
            .build::<Gomoku>();
        let result = search.search(&game);
        let (r, c) = game.action_to_rc(result.best_action());
        println!(
            "{:>12}: best move ({r},{c})  value {:+.3}  {:.1} µs/iteration  {} tree nodes",
            scheme.name(),
            result.value,
            result.stats.amortized_iteration_ns() / 1000.0,
            result.stats.nodes,
        );
    }

    // Let the design-configuration workflow choose (profiling this host).
    println!("\nrunning the design-configuration workflow (profiles this host)...");
    let configurator = DesignConfigurator::profile(&net, game.action_space(), 8, 2_000, None);
    let choice = configurator.configure(Platform::CpuOnly, workers);
    println!(
        "model chose {} (predicted local {:.1} µs vs shared {:.1} µs per iteration)",
        choice.scheme,
        choice.predicted_local_ns / 1000.0,
        choice.predicted_shared_ns / 1000.0
    );

    let mut adaptive = SearchBuilder::new(choice.scheme)
        .config(cfg)
        .evaluator(Arc::new(NnEvaluator::new(net)))
        .build::<Gomoku>();
    let result = adaptive.search(&game);
    let (r, c) = game.action_to_rc(result.best_action());
    println!(
        "adaptive search proposes ({r},{c}) with root value {:+.3}",
        result.value
    );
}
